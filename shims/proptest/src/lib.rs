//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a deterministic, dependency-free subset of the proptest API that the
//! workspace's property tests actually use:
//!
//! * the [`proptest!`] macro (each test body runs for a fixed number of
//!   cases with inputs drawn from a splitmix64 stream seeded by the test
//!   name — fully deterministic across runs and machines),
//! * [`Strategy`] with `prop_map`, integer range strategies, tuple
//!   strategies, [`any`] for primitives,
//! * [`collection::vec`], [`collection::btree_set`],
//! * [`string::string_regex`] for the simple character-class regexes the
//!   tests generate names from,
//! * [`sample::Index`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Shrinking is intentionally not implemented: on failure the macro panics
//! with the failing case number, which is reproducible as-is.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An rng for one named test case, derived only from the test's
    /// identifier and the case number.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`; `hi` must exceed `lo`.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }
}

/// A generator of values for one test input.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.below(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                if hi == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    rng.below(lo, hi + 1) as $t
                }
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> FullRange<$t> {
                FullRange(std::marker::PhantomData)
            }
        }
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let frac = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + frac * (self.end - self.start)
            }
        }
    )*};
}

float_strategies!(f32, f64);

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("string literal strategy: {e}"))
            .generate(rng)
    }
}

/// Strategy over a primitive type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> FullRange<bool> {
        FullRange(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! tuple_strategies {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8);
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `len`.
    ///
    /// Duplicates are redrawn; if the element domain is too small to reach
    /// the requested minimum the set is returned as large as it got.
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = rng.below(self.len.start as u64, self.len.end as u64) as usize;
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 20 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// String strategies.
pub mod string {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Error from [`string_regex`] on an unsupported pattern.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One parsed regex atom with its repetition bounds.
    #[derive(Debug, Clone)]
    enum Node {
        /// A set of candidate characters.
        Class(Vec<char>),
        /// A nested group.
        Group(Vec<(Node, u32, u32)>),
    }

    /// Strategy generating strings matched by a simple regex.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        nodes: Vec<(Node, u32, u32)>,
    }

    /// Builds a generator for the character-class subset of regex syntax:
    /// literals, escaped literals, `[...]` classes with ranges, `(...)`
    /// groups, and the `{m}`, `{m,n}`, `?`, `*`, `+` quantifiers.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on syntax outside that subset (alternation,
    /// anchors, etc.).
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let nodes = parse_sequence(&chars, &mut pos, pattern)?;
        if pos != chars.len() {
            return Err(Error(pattern.to_string()));
        }
        Ok(RegexStrategy { nodes })
    }

    fn parse_sequence(
        chars: &[char],
        pos: &mut usize,
        pattern: &str,
    ) -> Result<Vec<(Node, u32, u32)>, Error> {
        let mut out = Vec::new();
        while *pos < chars.len() && chars[*pos] != ')' {
            let node = match chars[*pos] {
                '[' => {
                    *pos += 1;
                    let mut set = Vec::new();
                    while *pos < chars.len() && chars[*pos] != ']' {
                        let lo = chars[*pos];
                        if lo == '\\' {
                            *pos += 1;
                            set.push(chars[*pos]);
                            *pos += 1;
                            continue;
                        }
                        if *pos + 2 < chars.len()
                            && chars[*pos + 1] == '-'
                            && chars[*pos + 2] != ']'
                        {
                            let hi = chars[*pos + 2];
                            for c in lo..=hi {
                                set.push(c);
                            }
                            *pos += 3;
                        } else {
                            set.push(lo);
                            *pos += 1;
                        }
                    }
                    if *pos >= chars.len() || set.is_empty() {
                        return Err(Error(pattern.to_string()));
                    }
                    *pos += 1; // ']'
                    Node::Class(set)
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_sequence(chars, pos, pattern)?;
                    if *pos >= chars.len() || chars[*pos] != ')' {
                        return Err(Error(pattern.to_string()));
                    }
                    *pos += 1; // ')'
                    Node::Group(inner)
                }
                '\\' => {
                    *pos += 1;
                    if *pos >= chars.len() {
                        return Err(Error(pattern.to_string()));
                    }
                    let c = chars[*pos];
                    *pos += 1;
                    Node::Class(vec![c])
                }
                '|' | '^' | '$' | '.' | '{' | '}' | '?' | '*' | '+' => {
                    return Err(Error(pattern.to_string()))
                }
                c => {
                    *pos += 1;
                    Node::Class(vec![c])
                }
            };
            let (min, max) = parse_quantifier(chars, pos, pattern)?;
            out.push((node, min, max));
        }
        Ok(out)
    }

    fn parse_quantifier(
        chars: &[char],
        pos: &mut usize,
        pattern: &str,
    ) -> Result<(u32, u32), Error> {
        if *pos >= chars.len() {
            return Ok((1, 1));
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                Ok((0, 1))
            }
            '*' => {
                *pos += 1;
                Ok((0, 8))
            }
            '+' => {
                *pos += 1;
                Ok((1, 8))
            }
            '{' => {
                *pos += 1;
                let mut min = 0u32;
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    min = min * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                let max = if *pos < chars.len() && chars[*pos] == ',' {
                    *pos += 1;
                    let mut m = 0u32;
                    while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                        m = m * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                    }
                    m
                } else {
                    min
                };
                if *pos >= chars.len() || chars[*pos] != '}' || max < min {
                    return Err(Error(pattern.to_string()));
                }
                *pos += 1;
                Ok((min, max))
            }
            _ => Ok((1, 1)),
        }
    }

    fn emit(nodes: &[(Node, u32, u32)], rng: &mut TestRng, out: &mut String) {
        for (node, min, max) in nodes {
            let reps = if max > min {
                rng.below(u64::from(*min), u64::from(*max) + 1) as u32
            } else {
                *min
            };
            for _ in 0..reps {
                match node {
                    Node::Class(set) => {
                        let i = rng.below(0, set.len() as u64) as usize;
                        out.push(set[i]);
                    }
                    Node::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            emit(&self.nodes, rng, &mut out);
            out
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, FullRange, Strategy, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub struct Index(u64);

    impl Index {
        /// Projects this sample onto `0..len` (`len` of 0 maps to 0).
        pub fn index(&self, len: usize) -> usize {
            if len == 0 {
                0
            } else {
                (self.0 % len as u64) as usize
            }
        }
    }

    impl Arbitrary for Index {
        type Strategy = FullRange<Index>;

        fn arbitrary() -> FullRange<Index> {
            FullRange(std::marker::PhantomData)
        }
    }

    impl Strategy for FullRange<Index> {
        type Value = Index;

        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The common imports property tests start from.
pub mod prelude {
    /// Alias letting tests write `prop::sample::Index` etc.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        Strategy,
    };
}

/// Runs each enclosed test function over a deterministic stream of cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            const CASES: u64 = 48;
            for case in 0..CASES {
                let mut __proptest_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let __proptest_run = || $body;
                __proptest_run();
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..9, y in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn regex_subset_generates_matching_shapes(
            s in crate::string::string_regex("[a-z]{2,4}(\\.[a-z]{2,4}){0,2}").unwrap()
        ) {
            for part in s.split('.') {
                prop_assert!((2..=4).contains(&part.len()));
                prop_assert!(part.bytes().all(|b| b.is_ascii_lowercase()));
            }
        }
    }
}
