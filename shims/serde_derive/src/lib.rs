//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on data types but never
//! actually serializes anything (no `serde_json`/`bincode` dependency), so
//! the derives only need to parse — they can expand to nothing. This keeps
//! the workspace building in environments with no access to crates.io.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and any `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and any `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
