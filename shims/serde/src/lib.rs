//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, and the workspace only
//! uses serde for `#[derive(Serialize, Deserialize)]` annotations on data
//! types — nothing is ever serialized (there is no format crate in the
//! dependency graph). This shim re-exports no-op derive macros so those
//! annotations keep compiling unchanged.

/// No-op derive macros standing in for the real serde derives.
pub use serde_derive::{Deserialize, Serialize};
