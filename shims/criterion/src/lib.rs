//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io. This shim keeps the
//! workspace's Criterion benches compiling and runnable: every registered
//! routine executes its body a handful of times and reports wall-clock
//! timings to stdout. There is no statistical analysis — the benches act
//! as smoke tests plus a rough timing signal.

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement context handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_run: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over a few iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters_run += ITERS;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_with_setup<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        const ITERS: u64 = 3;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
        }
        self.iters_run += ITERS;
    }

    fn report(&self, name: &str) {
        if self.iters_run > 0 {
            let per_iter = self.elapsed_ns / u128::from(self.iters_run);
            println!("bench {name}: {per_iter} ns/iter ({} iters)", self.iters_run);
        }
    }
}

/// Throughput annotation (accepted, not analysed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new<D: fmt::Display>(name: &str, parameter: D) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of the parameter alone.
    pub fn from_parameter<D: fmt::Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Top-level bench registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; sampling is fixed in this shim.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named bench routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }

    /// No-op; summaries print as benches run.
    pub fn final_summary(&self) {}
}

/// A group of related benches sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotates the group's throughput (accepted, not analysed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one bench routine inside the group.
    pub fn bench_function<D, F>(&mut self, id: D, mut f: F) -> &mut Self
    where
        D: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one bench routine with a borrowed input.
    pub fn bench_with_input<D, I, F>(&mut self, id: D, input: &I, mut f: F) -> &mut Self
    where
        D: fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a bench group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Bench binaries are also built (and run) under `cargo test
            // --benches`; the test harness passes flags this shim ignores.
            $($group();)+
        }
    };
}
