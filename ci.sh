#!/usr/bin/env bash
# Full CI gate: build, tests, lints, formatting, and the parallel-engine
# determinism check. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release

# Tier-1 tests must pass at both worker-pool extremes: the engine's
# contract is that LOOKASIDE_JOBS changes wall-clock time only, never
# results.
LOOKASIDE_JOBS=1 cargo test -q
LOOKASIDE_JOBS=4 cargo test -q

cargo clippy --workspace -- -D warnings
cargo fmt --check

# Byte-identity gate: `repro fig9` must print the same bytes at --jobs 1
# and --jobs 4.
mkdir -p target/ci
./target/release/repro fig9 --jobs 1 > target/ci/fig9.jobs1.txt
./target/release/repro fig9 --jobs 4 > target/ci/fig9.jobs4.txt
if ! diff -u target/ci/fig9.jobs1.txt target/ci/fig9.jobs4.txt; then
    echo "ci: FAIL — repro fig9 output diverges between --jobs 1 and --jobs 4" >&2
    exit 1
fi

echo "ci: all green"
