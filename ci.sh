#!/usr/bin/env bash
# Full CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --check

echo "ci: all green"
