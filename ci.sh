#!/usr/bin/env bash
# Full CI gate: build, tests, lints, formatting, and the parallel-engine
# determinism check. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
mkdir -p target/ci

# Tier-1 tests must pass at both worker-pool extremes: the engine's
# contract is that LOOKASIDE_JOBS changes wall-clock time only, never
# results. The suite includes the wire-layer proptests (compact-Name
# codec round-trips, canonical-order reference model) and the capture
# interning A/B determinism test.
LOOKASIDE_JOBS=1 cargo test -q
LOOKASIDE_JOBS=4 cargo test -q

# `redundant_clone` is denied on top of the default set: the PR-3 memory
# model makes clones cheap but the hot path is supposed to not need them
# at all.
cargo clippy --workspace -- -D warnings -D clippy::redundant_clone
cargo fmt --check

# Allocation-regression gate: the alloc_sweep bench counts every heap
# allocation of a deterministic fig8_9 run, so allocations/query is an
# exact number, not a timing. Fail if it creeps >10% above the recorded
# baseline (PR-3 set 619, see BENCH_pr3.json; PR-9's `resolve_into` +
# RRset scratch pool lowered the batch path to 453).
ALLOC_BASELINE=453
cargo bench --bench alloc_sweep | tee target/ci/alloc_sweep.txt
ALLOCS_PER_QUERY=$(awk '/allocs\/query/ { print $3; exit }' target/ci/alloc_sweep.txt)
if [ -z "${ALLOCS_PER_QUERY}" ]; then
    echo "ci: FAIL — alloc_sweep did not report allocs/query" >&2
    exit 1
fi
if awk -v got="${ALLOCS_PER_QUERY}" -v base="${ALLOC_BASELINE}" \
    'BEGIN { exit !(got > base * 1.10) }'; then
    echo "ci: FAIL — ${ALLOCS_PER_QUERY} allocs/query exceeds baseline ${ALLOC_BASELINE} by >10%" >&2
    exit 1
fi

# Streaming-regression gate: the stream_sweep bench measures the
# steady-state allocations/query of the capture-less observer path (hard
# ceiling, see BENCH_pr8.json) and the streamed Fig. 12 replay rate
# (floor set ~10x under the recorded 4-worker figure, so it only trips
# on order-of-magnitude regressions, not machine noise). The warm query
# path is allocation-free since `resolve_into` + the resolver's RRset
# scratch pool (PR 9); the ceiling of 2 leaves headroom for residual
# cold-path traffic without letting a per-query allocation back in.
STREAM_ALLOC_CEILING=2
STREAM_QPS_FLOOR=150000
cargo bench --bench stream_sweep | tee target/ci/stream_sweep.txt
STREAM_ALLOCS=$(awk '/steady_state:.*allocs\/query/ { print $3; exit }' target/ci/stream_sweep.txt)
STREAM_QPS=$(awk '/sampled queries\/sec/ { print $3; exit }' target/ci/stream_sweep.txt)
if [ -z "${STREAM_ALLOCS}" ] || [ -z "${STREAM_QPS}" ]; then
    echo "ci: FAIL — stream_sweep did not report allocs/query and queries/sec" >&2
    exit 1
fi
if [ "${STREAM_ALLOCS}" -ge "${STREAM_ALLOC_CEILING}" ]; then
    echo "ci: FAIL — ${STREAM_ALLOCS} steady-state allocs/query breaches the <${STREAM_ALLOC_CEILING} ceiling" >&2
    exit 1
fi
if [ "${STREAM_QPS}" -lt "${STREAM_QPS_FLOOR}" ]; then
    echo "ci: FAIL — ${STREAM_QPS} sampled queries/sec is under the ${STREAM_QPS_FLOOR} floor" >&2
    exit 1
fi

# Byte-identity gate: `repro fig9` must print the same bytes at --jobs 1
# and --jobs 4. Since PR 9 the default execution mode is streaming, so
# this exercises the streamed path.
./target/release/repro fig9 --jobs 1 > target/ci/fig9.jobs1.txt
./target/release/repro fig9 --jobs 4 > target/ci/fig9.jobs4.txt
if ! diff -u target/ci/fig9.jobs1.txt target/ci/fig9.jobs4.txt; then
    echo "ci: FAIL — repro fig9 output diverges between --jobs 1 and --jobs 4" >&2
    exit 1
fi

# Streaming-vs-batch byte-diff gate: streaming (the default) swaps the
# whole execution substrate (per-packet LeakSink, fold-based reduction,
# capture-less network) and must still print the same bytes as the batch
# oracle behind `--batch`; fig9, fig12, and the farm cover the three
# reduction shapes (ranked merge, ordered prefix-sum fold, set union).
./target/release/repro fig9 --batch --jobs 4 > target/ci/fig9.batch.txt
if ! diff -u target/ci/fig9.batch.txt target/ci/fig9.jobs1.txt; then
    echo "ci: FAIL — repro fig9 (stream default) diverges from the --batch oracle" >&2
    exit 1
fi
./target/release/repro fig12 --batch --jobs 1 > target/ci/fig12.batch.txt
./target/release/repro fig12 --jobs 4 > target/ci/fig12.stream.txt
if ! diff -u target/ci/fig12.batch.txt target/ci/fig12.stream.txt; then
    echo "ci: FAIL — repro fig12 (stream default) diverges from the --batch oracle" >&2
    exit 1
fi

# Supervised checkpoint/resume gate: SIGKILL a mid-flight full-scale
# fig12 run that is journalling to --checkpoint, resume it from the same
# journal, and demand the resumed output byte-match an uninterrupted
# run. The kill lands wherever the machine happens to be — mid-journal
# (the interesting case), before the first record, or after the run
# finished (an all-from-journal replay); every outcome must survive the
# same hard byte-diff.
CKPT=target/ci/fig12.ckpt
rm -f "${CKPT}"
./target/release/repro fig12 --full --jobs 4 > target/ci/fig12.full.clean.txt
./target/release/repro fig12 --full --jobs 4 --checkpoint "${CKPT}" \
    > target/ci/fig12.full.killed.txt 2>/dev/null &
REPRO_PID=$!
sleep 15
kill -9 "${REPRO_PID}" 2>/dev/null || echo "ci: note — fig12 finished before the kill"
wait "${REPRO_PID}" 2>/dev/null || true
echo "ci: journal after SIGKILL: $(wc -c < "${CKPT}" 2>/dev/null || echo 0) bytes"
./target/release/repro fig12 --full --jobs 4 --resume "${CKPT}" \
    > target/ci/fig12.full.resumed.txt
if ! diff -u target/ci/fig12.full.clean.txt target/ci/fig12.full.resumed.txt; then
    echo "ci: FAIL — resumed fig12 --full diverges from the uninterrupted run" >&2
    exit 1
fi

# Deterministic variant of the same gate, independent of machine speed:
# the resumed run above left a complete journal; shear it to 60% (tearing
# whatever record straddles the cut) and resume again. The torn record
# must be dropped, the journalled prefix folded from disk, the sheared
# suffix recomputed — and the bytes must still match.
FULL_BYTES=$(wc -c < "${CKPT}")
KEEP=$((FULL_BYTES * 60 / 100))
head -c "${KEEP}" "${CKPT}" > "${CKPT}.sheared" && mv "${CKPT}.sheared" "${CKPT}"
./target/release/repro fig12 --full --jobs 4 --resume "${CKPT}" \
    > target/ci/fig12.full.sheared.txt
if ! diff -u target/ci/fig12.full.clean.txt target/ci/fig12.full.sheared.txt; then
    echo "ci: FAIL — fig12 resumed from a sheared journal diverges from the clean run" >&2
    exit 1
fi
rm -f "${CKPT}"

# Same contract for the Byzantine sweep: seeded faults (bit-flips,
# truncation, forged payloads) must not perturb worker-count
# determinism.
./target/release/repro byzantine --jobs 1 > target/ci/byzantine.jobs1.txt
./target/release/repro byzantine --jobs 4 > target/ci/byzantine.jobs4.txt
if ! diff -u target/ci/byzantine.jobs1.txt target/ci/byzantine.jobs4.txt; then
    echo "ci: FAIL — repro byzantine output diverges between --jobs 1 and --jobs 4" >&2
    exit 1
fi

# And for the key-lifecycle sweep: simulated-time rollovers, expiry
# storms, and RFC 5011 tracking shard scenario-per-worker, so the event
# tables must be byte-identical at every worker count.
./target/release/repro lifecycle --jobs 1 > target/ci/lifecycle.jobs1.txt
./target/release/repro lifecycle --jobs 4 > target/ci/lifecycle.jobs4.txt
if ! diff -u target/ci/lifecycle.jobs1.txt target/ci/lifecycle.jobs4.txt; then
    echo "ci: FAIL — repro lifecycle output diverges between --jobs 1 and --jobs 4" >&2
    exit 1
fi

# And for the resolver farm: one million hashed-cohort stub clients
# against every cache topology. The reduction is a set union plus a
# min-merge, so worker count (and cohort count — the farm proptests pin
# that one) must never show up in the bytes.
./target/release/repro farm --jobs 1 > target/ci/farm.jobs1.txt
./target/release/repro farm --jobs 4 > target/ci/farm.jobs4.txt
if ! diff -u target/ci/farm.jobs1.txt target/ci/farm.jobs4.txt; then
    echo "ci: FAIL — repro farm output diverges between --jobs 1 and --jobs 4" >&2
    exit 1
fi
./target/release/repro farm --batch --jobs 4 > target/ci/farm.batch.txt
if ! diff -u target/ci/farm.batch.txt target/ci/farm.jobs1.txt; then
    echo "ci: FAIL — repro farm (stream default) diverges from the --batch oracle" >&2
    exit 1
fi

# Corruption robustness gate: 10k fixed-seed mutated packets through the
# wire decoder — typed WireError or success, never a panic. Backed by a
# panic/unwrap lint wall on the wire crate, extended in PR-5 to the
# engine and resolver hot paths (typed errors replaced the old expects).
cargo test -q -p lookaside-wire --release --test properties corruption_fuzz_fixed_seed_10k
cargo clippy -p lookaside-wire -- -D warnings -D clippy::panic -D clippy::unwrap_used
cargo clippy -p lookaside-engine -- -D warnings -D clippy::panic -D clippy::unwrap_used
cargo clippy -p lookaside-resolver -- -D warnings -D clippy::panic -D clippy::unwrap_used

# Static-invariant gate: the workspace lint (crates/lint) walks every .rs
# file, runs the lexical rules (hash-ordered collections, wall-clock
# reads, ambient entropy, env reads outside the sanctioned seed path,
# panics on hot paths, unsafe code), then builds the workspace call graph
# and runs the three semantic dataflow passes: panic-reachability from
# tagged hot-path entries, determinism taint into tagged sinks, and the
# std::{fs,io,net} purity wall. Zero unsuppressed findings and zero stale
# allows required; the byte-stable JSON report and the call-graph DOT are
# archived with the other CI artifacts. The run is also held to a
# wall-time budget so the semantic passes can't quietly turn into the
# slowest stage of CI.
LINT_BUDGET_SECS=30
LINT_START=$(date +%s)
./target/release/lookaside-lint \
    --json target/ci/lint_report.json --dot target/ci/call_graph.dot
LINT_ELAPSED=$(( $(date +%s) - LINT_START ))
if [ "${LINT_ELAPSED}" -gt "${LINT_BUDGET_SECS}" ]; then
    echo "ci: FAIL — lint took ${LINT_ELAPSED}s (budget ${LINT_BUDGET_SECS}s)" >&2
    exit 1
fi

# Canaries: prove each gate actually bites. Drop a known-bad fixture into
# a scanned crate, expect the lint to fail *on the expected rule*, then
# remove it. One canary per semantic pass (the panic one places its
# unwrap two calls below the tagged entry, so only a transitive pass can
# see it) plus the original lexical one. The trap guarantees cleanup even
# if an expectation itself fails.
CANARIES="crates/core/src/__lint_canary.rs \
    crates/workload/src/__lint_canary_panic.rs \
    crates/wire/src/__lint_canary_taint.rs \
    crates/netsim/src/__lint_canary_purity.rs"
# shellcheck disable=SC2064
trap "rm -f ${CANARIES}" EXIT
lint_canary() {
    fixture="crates/lint/tests/fixtures/$1"
    dest=$2
    rule=$3
    cp "${fixture}" "${dest}"
    out=""
    if out=$(./target/release/lookaside-lint --no-json --no-dot 2>&1); then
        echo "ci: FAIL — canary $1 not detected; the ${rule} gate is toothless" >&2
        exit 1
    fi
    if ! printf '%s' "${out}" | grep -q "${rule}"; then
        echo "ci: FAIL — canary $1 tripped, but not via ${rule}:" >&2
        printf '%s\n' "${out}" >&2
        exit 1
    fi
    rm -f "${dest}"
}
lint_canary bad_hashmap.rs crates/core/src/__lint_canary.rs determinism::hash-collection
lint_canary sem_panic_bad.rs crates/workload/src/__lint_canary_panic.rs semantic::panic-reachable
lint_canary sem_taint_bad.rs crates/wire/src/__lint_canary_taint.rs semantic::taint-flow
lint_canary sem_purity_bad.rs crates/netsim/src/__lint_canary_purity.rs semantic::purity-wall
trap - EXIT

echo "ci: all green"
