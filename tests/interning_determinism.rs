//! Capture-qname interning is a storage optimisation, never a semantic
//! one: the fig8/9 pipeline must render byte-identical output with
//! interning on and off, serially and sharded.
//!
//! This pins the PR-3 memory-model contract (see DESIGN.md): a
//! `NameTable` returns handles *equal* to what it was given, so nothing
//! downstream — leakage classification, table rendering, capture merge
//! order — can observe whether interning happened.

use lookaside::engine::Executor;
use lookaside::experiments::fig8_9_with;
use lookaside::report::fig8_9_table;
use lookaside_netsim::set_capture_interning;

const SIZES: [usize; 3] = [50, 100, 200];
const SEED: u64 = 11;

/// Renders the same table `repro fig9` prints for one executor.
fn fig9_text(jobs: usize) -> String {
    let exec = if jobs <= 1 { Executor::serial() } else { Executor::new(jobs) };
    fig8_9_table(&fig8_9_with(&exec, &SIZES, SEED))
}

#[test]
fn interned_and_plain_runs_render_identical_fig9_at_jobs_1_and_4() {
    // One test covers the whole matrix so the global toggle is never
    // racing a parallel test case, and is always restored.
    set_capture_interning(true);
    let interned_jobs1 = fig9_text(1);
    let interned_jobs4 = fig9_text(4);

    set_capture_interning(false);
    let plain_jobs1 = fig9_text(1);
    let plain_jobs4 = fig9_text(4);
    set_capture_interning(true);

    assert_eq!(interned_jobs1, plain_jobs1, "interning changed serial fig9 output");
    assert_eq!(interned_jobs4, plain_jobs4, "interning changed sharded fig9 output");
    assert_eq!(interned_jobs1, interned_jobs4, "shard count changed fig9 output");
}
