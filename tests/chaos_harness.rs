//! Integration tests for the §7.3.2 chaos harness: the acceptance
//! properties of the loss-and-timeout fault plane, end to end through the
//! full simulated Internet and the real resolver.

use lookaside::chaos::{chaos_outage, ChaosConfig, Outage, TimerProfile};
use lookaside::internet::{Internet, InternetParams, DLV_ADDR};
use lookaside_netsim::{FaultPlane, LinkFaults};
use lookaside_resolver::{BindConfig, FeatureModel, ResolverConfig, RetryPolicy};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::RrType;
use lookaside_workload::PopulationParams;

fn sweep_config(queries: usize) -> ChaosConfig {
    ChaosConfig {
        queries,
        warmup: 8,
        seed: 0x0dd5,
        outages: vec![
            Outage::Loss(0),
            Outage::Loss(100),
            Outage::Loss(250),
            Outage::Loss(500),
            Outage::Blackhole,
        ],
        profiles: vec![TimerProfile::Retry, TimerProfile::RetryServfailCache],
    }
}

/// The headline acceptance property: with retries enabled, degrading the
/// registry link *increases* the leaked DLV queries per client query —
/// monotonically, and strictly beyond the zero-loss baseline from 10 %
/// loss on — and enabling the RFC 2308 SERVFAIL cache makes the
/// amplification disappear.
#[test]
fn retries_amplify_leakage_and_the_servfail_cache_collapses_it() {
    let points = chaos_outage(&sweep_config(30));
    let retry: Vec<_> = points.iter().filter(|p| p.profile == TimerProfile::Retry).collect();
    let cached: Vec<_> =
        points.iter().filter(|p| p.profile == TimerProfile::RetryServfailCache).collect();

    let baseline = retry[0].dlv_per_query;
    assert!(baseline > 0.0, "the healthy registry still sees look-aside queries");
    for pair in retry.windows(2) {
        assert!(
            pair[1].dlv_per_query >= pair[0].dlv_per_query,
            "amplification must be monotone in severity: {:?} {} -> {:?} {}",
            pair[0].outage,
            pair[0].dlv_per_query,
            pair[1].outage,
            pair[1].dlv_per_query
        );
    }
    for point in retry.iter().filter(|p| p.outage.severity() >= 100) {
        assert!(
            point.dlv_per_query > baseline,
            "{:?} with retries must strictly exceed the zero-loss baseline ({} vs {})",
            point.outage,
            point.dlv_per_query,
            baseline
        );
        assert!(point.retransmissions > 0, "the amplification comes from retransmission");
    }
    // With the SERVFAIL cache, a hard outage marks the registry zone dead
    // and the look-aside walk stops reaching the wire: per-query exposure
    // drops back to (below) the healthy baseline.
    for point in cached.iter().filter(|p| p.outage.severity() >= 500) {
        assert!(
            point.dlv_per_query <= baseline,
            "SERVFAIL cache must collapse {:?} amplification ({} vs baseline {})",
            point.outage,
            point.dlv_per_query,
            baseline
        );
        let (_, dead_zones) = point.servfail_entries;
        assert!(dead_zones > 0, "the registry zone must be held dead under {:?}", point.outage);
    }
}

/// Same seed ⇒ identical chaos report, cell for cell.
#[test]
fn chaos_reports_replay_identically() {
    let config = ChaosConfig {
        queries: 10,
        outages: vec![Outage::Loss(250), Outage::Blackhole],
        profiles: vec![TimerProfile::Retry],
        ..sweep_config(10)
    };
    let a = chaos_outage(&config);
    let b = chaos_outage(&config);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.outage, y.outage);
        assert_eq!(x.dlv_packets, y.dlv_packets);
        assert_eq!(x.answered, y.answered);
        assert_eq!(x.retransmissions, y.retransmissions);
        assert_eq!(x.timeouts, y.timeouts);
        assert_eq!(x.p50_ms, y.p50_ms);
        assert_eq!(x.p95_ms, y.p95_ms);
        assert_eq!(x.servfail_entries, y.servfail_entries);
    }
}

fn drive(internet: &mut Internet, queries: usize) -> String {
    let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 0x77);
    for rank in 1..=queries {
        let qname = internet.population.domain(rank);
        let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
    }
    internet.net.capture_text()
}

fn small_params(seed: u64) -> InternetParams {
    let population = PopulationParams { size: 1000, ..PopulationParams::default() };
    let mut params = InternetParams::for_top(30, population, RemedyMode::None);
    params.seed = seed;
    params
}

/// A fault plane with only quiet links is strictly additive: the capture
/// (packets *and* loss/retry counters) is byte-identical to a network that
/// was never given a fault plane at all.
#[test]
fn quiet_fault_plane_is_byte_identical_to_no_fault_plane() {
    let mut untouched = Internet::build(small_params(3));
    let baseline = drive(&mut untouched, 30);

    let mut explicit = Internet::build(small_params(3));
    let mut plane = FaultPlane::new(0xfau64);
    plane.set_link(DLV_ADDR, LinkFaults::quiet());
    explicit.net.set_fault_plane(plane);
    let quiet = drive(&mut explicit, 30);

    assert_eq!(baseline, quiet, "a quiet plane must not perturb a single byte");
}

/// The full stack — faulted registry link, retransmitting resolver —
/// replays byte-identically for the same seed.
#[test]
fn faulted_full_stack_replays_byte_identically() {
    let run = || {
        let mut internet = Internet::build(small_params(9));
        internet
            .net
            .fault_plane_mut()
            .set_link(DLV_ADDR, LinkFaults::quiet().with_loss_milli(300).with_jitter_ms(4));
        let features = FeatureModel { aggressive_nsec: false, ..FeatureModel::default() };
        let mut resolver = internet.resolver_with_features(
            ResolverConfig::Bind(BindConfig::correct()),
            features,
            0x99,
        );
        resolver.set_retry_policy(RetryPolicy::default());
        for rank in 1..=25usize {
            let qname = internet.population.domain(rank);
            let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
        }
        (internet.net.capture_text(), internet.net.stats().clone())
    };
    let (text_a, stats_a) = run();
    let (text_b, stats_b) = run();
    assert_eq!(text_a, text_b);
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.retransmissions > 0, "the faulted run must actually retransmit");
}
