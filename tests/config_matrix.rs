//! The 16-environment configuration matrix (Tables 1–3): every OS ×
//! install × software combination gets the behaviour the paper describes.

use lookaside::experiments::{run, QuerySet, RunConfig};
use lookaside_netsim::CaptureFilter;
use lookaside_resolver::{
    environments, EffectiveBehavior, InstallMethod, ResolverConfig, Software,
};
use lookaside_wire::ext::RemedyMode;
use lookaside_workload::PopulationParams;

#[test]
fn every_environment_has_a_defined_behaviour() {
    for env in environments() {
        match env.software {
            Software::Bind => {
                let pkg = EffectiveBehavior::from_config(&ResolverConfig::Bind(
                    env.package_install.bind_config(),
                ));
                assert!(pkg.validate, "{} package BIND validates", env.os);
                // Manual installs in the study leave the anchor out.
                let manual = EffectiveBehavior::from_config(&ResolverConfig::Bind(
                    InstallMethod::Manual.bind_config(),
                ));
                assert!(!manual.has_root_anchor);
            }
            Software::Unbound => {
                let cfg = env.package_install.unbound_config();
                let b = EffectiveBehavior::from_config(&ResolverConfig::Unbound(cfg));
                assert!(b.validate && b.has_root_anchor, "{} unbound", env.os);
            }
        }
    }
}

#[test]
fn yum_and_apt_get_differ_exactly_as_table2_says() {
    let apt = InstallMethod::AptGet.bind_config();
    let yum = InstallMethod::Yum.bind_config();
    assert_ne!(apt.validation, yum.validation);
    assert!(!apt.root_anchor_included && yum.root_anchor_included);
}

fn huque_run(method: InstallMethod) -> lookaside::leakage::LeakageReport {
    let config = RunConfig {
        population: PopulationParams { size: 1000, ..PopulationParams::default() },
        queries: QuerySet::Huque,
        resolver: ResolverConfig::Bind(method.bind_config()),
        remedy: RemedyMode::None,
        capture: CaptureFilter::DlvOnly,
        seed: 21,
        dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
        dlv_denial: lookaside_zone::DenialMode::Nsec,
    };
    run(&config).leakage
}

#[test]
fn secured_domains_leak_only_under_missing_anchor_configs() {
    let corpus = lookaside_workload::huque45();
    let secured: Vec<_> = corpus.iter().filter(|d| d.ds_in_parent).collect();
    for (method, expect_leak) in [
        (InstallMethod::AptGet, false),
        (InstallMethod::AptGetCompliant, true),
        (InstallMethod::Yum, false),
        (InstallMethod::Manual, true),
    ] {
        let report = huque_run(method);
        let leaked = secured.iter().any(|d| report.leaked_names.contains(&d.name));
        assert_eq!(leaked, expect_leak, "method {:?}", method);
    }
}

#[test]
fn islands_reach_dlv_under_every_method() {
    // §5.2: the five islands of security are sent to the DLV server even
    // under a fully correct configuration.
    let corpus = lookaside_workload::huque45();
    let islands: Vec<_> = corpus.iter().filter(|d| !d.ds_in_parent).collect();
    assert_eq!(islands.len(), 5);
    for method in InstallMethod::ALL {
        let report = huque_run(method);
        let reached = islands
            .iter()
            .filter(|d| report.leaked_names.contains(&d.name) || (d.deposited && report.case1 > 0))
            .count();
        assert!(reached >= 3, "method {method:?}: only {reached} islands reached DLV");
    }
}

#[test]
fn unbound_never_leaks_secured_domains() {
    // §4.4/§5.2: "domains do not leak with Unbound" — its configuration
    // style cannot produce the anchorless-validation state.
    let config = RunConfig {
        population: PopulationParams { size: 1000, ..PopulationParams::default() },
        queries: QuerySet::Huque,
        resolver: ResolverConfig::Unbound(lookaside_resolver::UnboundConfig {
            auto_trust_anchor: true,
            dlv_anchor: true,
        }),
        remedy: RemedyMode::None,
        capture: CaptureFilter::DlvOnly,
        seed: 22,
        dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
        dlv_denial: lookaside_zone::DenialMode::Nsec,
    };
    let report = run(&config).leakage;
    let corpus = lookaside_workload::huque45();
    for d in corpus.iter().filter(|d| d.ds_in_parent) {
        assert!(!report.leaked_names.contains(&d.name), "{} leaked under correct Unbound", d.name);
    }
}

#[test]
fn disabling_lookaside_stops_all_dlv_traffic() {
    let mut bind = lookaside_resolver::BindConfig::correct();
    bind.lookaside = lookaside_resolver::Lookaside::No;
    let config = RunConfig {
        population: PopulationParams { size: 1000, ..PopulationParams::default() },
        queries: QuerySet::Top(50),
        resolver: ResolverConfig::Bind(bind),
        remedy: RemedyMode::None,
        capture: CaptureFilter::DlvOnly,
        seed: 23,
        dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
        dlv_denial: lookaside_zone::DenialMode::Nsec,
    };
    let outcome = run(&config);
    assert_eq!(outcome.leakage.dlv_queries, 0);
}
