//! Streaming execution is byte-identical to batch execution.
//!
//! The streaming mode (PR 8) replaces capture-then-classify with a
//! per-packet [`lookaside::LeakSink`] observer and replaces
//! collect-then-reduce sweeps with `run_fold` accumulators. None of that
//! may show up in the bytes: for every seed, remedy, capture filter, and
//! worker count, the streamed result must equal the batch result exactly.
//! Batch stays the correctness oracle; these tests are the contract that
//! lets `--stream` default into the figure pipeline later.
//!
//! Equality is asserted on `Debug` renderings where the result types do
//! not implement `PartialEq` — a stricter statement (field-order and
//! formatting included) that matches the `diff`-based gate in `ci.sh`.

use lookaside::engine::Executor;
use lookaside::experiments::{fig12_with, fig8_9_with, run, RunConfig};
use lookaside::farm::{Farm, FarmConfig};
use lookaside::netsim::CaptureFilter;
use lookaside::wire::ext::RemedyMode;
use lookaside::{fig12_stream, fig8_9_stream, run_stream};
use proptest::prelude::*;

fn debug_bytes<T: std::fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}

proptest! {
    /// A single run: the `LeakSink` classifying per packet produces the
    /// same outcome as capturing everything and classifying afterwards,
    /// for any seed, remedy, and capture filter (including `None`, where
    /// both modes must report nothing).
    #[test]
    fn run_stream_matches_batch_for_any_config(
        seed in 0u64..1_000,
        n in 10usize..40,
        remedy_idx in 0usize..4,
        capture_idx in 0usize..3,
    ) {
        let mut config = RunConfig::quick(n);
        config.seed = seed;
        config.remedy = match remedy_idx {
            0 => RemedyMode::None,
            1 => RemedyMode::TxtSignal,
            2 => RemedyMode::ZBit,
            _ => RemedyMode::HashedDlv,
        };
        config.capture = match capture_idx {
            0 => CaptureFilter::All,
            1 => CaptureFilter::DlvOnly,
            _ => CaptureFilter::None,
        };
        let batch = run(&config);
        let streamed = run_stream(&config);
        prop_assert_eq!(debug_bytes(&batch), debug_bytes(&streamed));
    }

    /// The Fig. 8–9 sweep: streamed shards equal batch shards at one
    /// worker and at four.
    #[test]
    fn fig8_9_stream_matches_batch_at_one_and_four_workers(seed in 0u64..1_000) {
        let sizes = [10, 25, 40];
        let batch = fig8_9_with(&Executor::serial(), &sizes, seed);
        for exec in [Executor::serial(), Executor::new(4)] {
            let streamed = fig8_9_stream(&exec, &sizes, seed);
            prop_assert_eq!(debug_bytes(&batch), debug_bytes(&streamed));
        }
    }

    /// The Fig. 12 trace replay: the fold over window shards reproduces
    /// the batch concatenate-then-prefix-sum arithmetic bit for bit.
    #[test]
    fn fig12_stream_matches_batch_at_one_and_four_workers(seed in 0u64..200) {
        let scale = 500_000;
        let batch = fig12_with(&Executor::serial(), seed, scale);
        for exec in [Executor::serial(), Executor::new(4)] {
            let streamed = fig12_stream(&exec, seed, scale);
            prop_assert_eq!(debug_bytes(&batch), debug_bytes(&streamed));
        }
    }
}

/// The resolver-farm sweep honours the `LOOKASIDE_STREAM` toggle and the
/// fold-based cohort reduction it selects equals the batch
/// collect-then-absorb reduction. Env-toggled rather than proptested:
/// the variable is process-global, so one test owns it.
#[test]
fn farm_streaming_fold_matches_batch_reduction() {
    let mut config = FarmConfig::quick(1_200);
    config.cohorts = 6;
    config.seed = 41;
    config.plane.seed = 41 ^ 0x9d;
    let farm = Farm::new(config);
    let exec = Executor::new(3);
    let batch = farm.sweep(&exec);
    std::env::set_var(lookaside::engine::STREAM_ENV, "1");
    let streamed = farm.sweep(&exec);
    std::env::remove_var(lookaside::engine::STREAM_ENV);
    assert_eq!(batch, streamed);
}
