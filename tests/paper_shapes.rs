//! The paper's quantitative *shapes*, asserted end-to-end on scaled-down
//! workloads (the full-scale numbers live in EXPERIMENTS.md and come from
//! `repro --full`):
//!
//! * Fig. 8: DLV query counts grow with N, sublinearly.
//! * Fig. 9: the leaked proportion decays roughly linearly in log N.
//! * Table 5: TXT overhead ratios — traffic% < queries% < time% — and all
//!   ratios grow with N.
//! * §5.3: the overwhelming majority of DLV queries provide no validation
//!   utility.

use lookaside::experiments::{fig11, fig8_9, table4, table5, utility};

#[test]
fn fig8_counts_grow_sublinearly() {
    let points = fig8_9(&[100, 1_000], 11);
    let (small, large) = (&points[0], &points[1]);
    assert!(large.dlv_queries > small.dlv_queries);
    // Sublinear: 10× domains must give < 10× DLV queries.
    assert!(
        (large.dlv_queries as f64) < 10.0 * small.dlv_queries as f64,
        "{} vs {}",
        large.dlv_queries,
        small.dlv_queries
    );
    assert!(large.suppressed > small.suppressed, "negative caching works harder at scale");
}

#[test]
fn fig9_proportion_decays_linearly_in_log_n() {
    let points = fig8_9(&[40, 400, 4_000], 11);
    let p: Vec<f64> = points.iter().map(|x| x.proportion).collect();
    assert!(p[0] > p[1] && p[1] > p[2], "decay: {p:?}");
    // Near-constant decrement per decade (the Fig. 9 "linear decay" in
    // log-x), within a loose tolerance.
    let d1 = p[0] - p[1];
    let d2 = p[1] - p[2];
    assert!((d1 - d2).abs() < 0.6 * d1.max(d2), "decrements {d1:.3} vs {d2:.3}");
    // Anchor: ≈84 % at N=100 (paper) — we accept a ±10 pt band.
    assert!((0.70..0.92).contains(&p[0]), "top-100 proportion {}", p[0]);
}

#[test]
fn table5_ratio_ordering_and_growth() {
    let rows = table5(&[100, 1_000], 7);
    for row in &rows {
        assert!(
            row.traffic_ratio() < row.query_ratio(),
            "TXT messages are small: traffic% < queries%"
        );
        assert!(
            row.query_ratio() < row.time_ratio(),
            "TXT probes hit far SLD servers: queries% < time%"
        );
    }
    assert!(rows[1].query_ratio() > rows[0].query_ratio(), "ratios grow with N");
    assert!(rows[1].time_ratio() > rows[0].time_ratio());
}

#[test]
fn table4_per_domain_rates_fall_with_caching() {
    let rows = table4(&[100, 1_000], 5);
    let per_domain = |r: &lookaside::experiments::Table4Row| r.total() as f64 / r.n as f64;
    assert!(
        per_domain(&rows[1]) < per_domain(&rows[0]),
        "infrastructure caching amortises: {:.2} vs {:.2}",
        per_domain(&rows[1]),
        per_domain(&rows[0])
    );
    // Column sanity: A dominates, DS ≈ 1–2.5 per domain, PTR is rare.
    let r = &rows[0];
    assert!(r.a > r.aaaa && r.a > r.ds);
    assert!(r.ds as f64 / r.n as f64 > 0.8 && (r.ds as f64 / r.n as f64) < 2.5);
    assert!(r.ptr < r.n as u64 / 10);
}

#[test]
fn utility_fraction_matches_section_5_3() {
    let report = utility(1_200, 13);
    // Paper: ≈98.8 % of DLV queries are leakage. Accept ≥95 %.
    assert!(report.leak_fraction() > 0.95, "leak fraction {}", report.leak_fraction());
    assert!(report.case1 > 0, "deposited islands do get served");
}

#[test]
fn fig11_cost_ordering_matches_paper() {
    let rows = fig11(200, 17);
    let get = |l: &str| rows.iter().find(|r| r.remedy == l).unwrap();
    let (dlv, txt, zbit) = (get("DLV"), get("TXT"), get("Z-bit"));
    // Fig. 11a: TXT has the highest response time; Z-bit is minimal.
    assert!(txt.seconds > dlv.seconds);
    assert!(zbit.seconds <= dlv.seconds);
    // Fig. 11c: TXT issues the most queries.
    assert!(txt.queries > dlv.queries && txt.queries > zbit.queries);
    // Both signaling remedies eliminate Case-2 leaks entirely.
    assert_eq!(txt.leaks, 0);
    assert_eq!(zbit.leaks, 0);
    assert!(dlv.leaks > 100);
}
