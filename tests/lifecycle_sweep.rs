//! Integration suite for the key-lifecycle sweep.
//!
//! The sweep shards scenario-by-scenario across the engine executor, so
//! its determinism contract is the same one the `repro lifecycle --jobs N`
//! byte-diff gate in CI enforces: every worker count reduces to the same
//! point list, in the configured scenario order.

use lookaside::engine::Executor;
use lookaside::lifecycle::{lifecycle_sweep_with, LifecycleConfig, LifecycleScenario, EVENT_TIMES};

/// Every worker count yields the identical point list — this backs the
/// `repro lifecycle --jobs 1` vs `--jobs 4` byte-diff gate in CI.
#[test]
fn lifecycle_sweep_is_worker_count_invariant() {
    let config = LifecycleConfig::quick(3);
    let reference = format!("{:?}", lifecycle_sweep_with(&Executor::serial(), &config));
    for jobs in [2, 4] {
        let parallel = format!("{:?}", lifecycle_sweep_with(&Executor::new(jobs), &config));
        assert_eq!(parallel, reference, "jobs={jobs}");
    }
}

/// Points come back in configured scenario order with the full event
/// schedule, regardless of which worker finished first.
#[test]
fn points_follow_the_configured_scenario_order() {
    let scenarios = vec![
        LifecycleScenario::KskRollMissed,
        LifecycleScenario::Steady,
        LifecycleScenario::ExpiryStorm,
    ];
    let config = LifecycleConfig { scenarios: scenarios.clone(), ..LifecycleConfig::quick(2) };
    let points = lifecycle_sweep_with(&Executor::new(3), &config);
    let got: Vec<LifecycleScenario> = points.iter().map(|p| p.scenario).collect();
    assert_eq!(got, scenarios);
    for point in &points {
        let times: Vec<u64> = point.events.iter().map(|e| e.at_secs).collect();
        assert_eq!(times, EVENT_TIMES.to_vec(), "{:?}", point.scenario);
        for event in &point.events {
            let outcomes = event.secure + event.insecure + event.bogus + event.indeterminate;
            assert_eq!(
                outcomes + event.errors,
                event.client_queries,
                "every query accounted for: {event:?}"
            );
        }
    }
}

/// The timelines the scenarios replay share generation 0 with the static
/// root, so the t=0 warm-up (and any experiment that never advances the
/// clock) is byte-identical to the frozen-root world.
#[test]
fn scenario_timelines_share_the_static_root_generation() {
    for scenario in LifecycleScenario::ALL {
        let timeline = scenario.timeline();
        let keys = timeline.initial_keys();
        let static_keys =
            lookaside::zone::SigningKeys::from_seed(lookaside::internet::ROOT_KEY_SEED);
        assert_eq!(keys.ksk.public(), static_keys.ksk.public(), "{scenario:?}");
        assert_eq!(keys.zsk.public(), static_keys.zsk.public(), "{scenario:?}");
    }
}
