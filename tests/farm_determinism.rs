//! Determinism properties of the resolver farm.
//!
//! The farm's contract has two halves. The *engine* half — worker count
//! never shows up in the bytes — it shares with every other sweep in the
//! workspace. The *reduction* half is stronger and farm-specific: because
//! leak accounting is a set union plus a min-merge over
//! `(cache, rank, bucket)` keys, the client-cohort **partition itself**
//! is invisible — 1 cohort and k cohorts reduce to identical reports.
//! That is the invariant that lets the farm shard clients by stable hash
//! instead of replaying the whole plane in one thread.

use lookaside::farm::{Farm, FarmConfig, FarmTopology};
use lookaside_engine::Executor;
use proptest::prelude::*;

fn config(clients: usize, cohorts: usize, seed: u64) -> FarmConfig {
    let mut config = FarmConfig::quick(clients);
    config.cohorts = cohorts;
    config.seed = seed;
    config.plane.seed = seed ^ 0x9d;
    config
}

proptest! {
    /// Worker count is invisible: the same farm reduced on a serial
    /// executor and on a multi-worker pool yields identical reports for
    /// every topology.
    #[test]
    fn farm_output_is_invariant_under_worker_count(
        seed in 0u64..1_000,
        jobs in 2usize..6,
    ) {
        let farm = Farm::new(config(1_500, 8, seed));
        let serial = farm.sweep(&Executor::serial());
        let parallel = farm.sweep(&Executor::new(jobs));
        prop_assert_eq!(serial, parallel);
    }

    /// The cohort partition is invisible: 1 cohort (no sharding at all)
    /// and k cohorts produce identical reports, because the reduction is
    /// associative and commutative over clients.
    #[test]
    fn farm_output_is_invariant_under_cohort_count(
        seed in 0u64..1_000,
        cohorts in 2usize..12,
    ) {
        let whole = Farm::new(config(1_500, 1, seed)).sweep(&Executor::serial());
        let sharded = Farm::new(config(1_500, cohorts, seed)).sweep(&Executor::new(3));
        prop_assert_eq!(whole, sharded);
    }

    /// Per-resolver fragmentation never beats shared-cache aggregation:
    /// every span-bucket key the shared cache leaks is leaked by at least
    /// one per-resolver cache too, for any seed.
    #[test]
    fn aggregation_dominates_for_every_seed(seed in 0u64..1_000) {
        let farm = Farm::new(config(1_200, 4, seed));
        let exec = Executor::serial();
        let shared = farm.run(FarmTopology::SharedCache, 8, &exec);
        let per = farm.run(FarmTopology::PerResolver, 8, &exec);
        prop_assert!(shared.case2 <= per.case2);
        prop_assert!(shared.upstream_misses <= per.upstream_misses);
        prop_assert_eq!(shared.stub_queries, per.stub_queries);
    }
}
