//! §6.2 remedies and §6.2.3 attacks, end-to-end: each remedy closes the
//! leak without destroying DLV's validation utility, and each unsigned
//! signal can be defeated by an on-path attacker.

use lookaside::attacks::{dictionary_attack, txt_poison_attack, zbit_flip_attack};
use lookaside::experiments::{run, RunConfig};
use lookaside_wire::ext::RemedyMode;
use lookaside_workload::{DomainPopulation, PopulationParams};

fn leak_count(remedy: RemedyMode, n: usize, seed: u64) -> (usize, usize) {
    let mut config = RunConfig::for_top(n, remedy);
    config.seed = seed;
    let outcome = run(&config);
    (outcome.leakage.case2, outcome.statuses.secure_via_dlv)
}

#[test]
fn baseline_leaks_most_domains() {
    let (leaks, _) = leak_count(RemedyMode::None, 100, 41);
    assert!(leaks > 60, "baseline must leak the majority ({leaks})");
}

#[test]
fn txt_remedy_closes_the_leak_and_keeps_utility() {
    let (leaks, via_dlv) = leak_count(RemedyMode::TxtSignal, 400, 41);
    assert_eq!(leaks, 0, "TXT signaling must stop Case-2 leakage");
    let (_, via_dlv_baseline) = leak_count(RemedyMode::None, 400, 41);
    assert_eq!(via_dlv, via_dlv_baseline, "deposited islands still validate via DLV");
}

#[test]
fn zbit_remedy_closes_the_leak_and_keeps_utility() {
    let (leaks, via_dlv) = leak_count(RemedyMode::ZBit, 400, 41);
    assert_eq!(leaks, 0, "Z-bit signaling must stop Case-2 leakage");
    let (_, via_dlv_baseline) = leak_count(RemedyMode::None, 400, 41);
    assert_eq!(via_dlv, via_dlv_baseline);
}

#[test]
fn hashed_remedy_hides_plaintext_but_not_query_existence() {
    let mut config = RunConfig::for_top(150, RemedyMode::HashedDlv);
    config.seed = 43;
    let outcome = run(&config);
    // Queries still reach the registry (observable), but every observed
    // name is a fixed-width hash label.
    assert!(outcome.leakage.dlv_queries > 0);
    for name in &outcome.leakage.leaked_names {
        let label = name.label(0).to_string();
        assert_eq!(label.len(), 32);
        assert!(label.bytes().all(|b| b.is_ascii_hexdigit()));
    }
    // Validation utility is preserved.
    let (_, via_dlv_baseline) = leak_count(RemedyMode::None, 150, 43);
    assert_eq!(outcome.statuses.secure_via_dlv, via_dlv_baseline);
}

#[test]
fn zbit_flip_attack_restores_leakage() {
    let outcome = zbit_flip_attack(120, 45);
    assert_eq!(outcome.leaks_with_remedy, 0);
    assert!(
        outcome.leaks_under_attack > 40,
        "flipping Z must re-enable leakage (got {})",
        outcome.leaks_under_attack
    );
}

#[test]
fn txt_poison_attack_restores_leakage() {
    let outcome = txt_poison_attack(120, 47);
    assert_eq!(outcome.leaks_with_remedy, 0);
    assert!(outcome.leaks_under_attack > 40);
}

#[test]
fn dictionary_attack_scales_with_dictionary_coverage() {
    let pop = DomainPopulation::new(PopulationParams { size: 2000, ..PopulationParams::default() });
    let full: Vec<_> = (1..=500).map(|r| pop.domain(r)).collect();
    let partial: Vec<_> = (1..=500).step_by(10).map(|r| pop.domain(r)).collect();
    let big = dictionary_attack(120, 49, full);
    let small = dictionary_attack(120, 49, partial);
    assert!(big.recovered > small.recovered, "{} vs {}", big.recovered, small.recovered);
    assert_eq!(small.hash_ops, 50);
    assert!(big.recovery_rate() <= 1.0);
}
