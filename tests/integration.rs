//! End-to-end integration: full simulated Internet, resolver, capture, and
//! classifier working together across every crate.

use lookaside::experiments::{run, QuerySet, RunConfig};
use lookaside::internet::{Internet, InternetParams};
use lookaside::leakage::classify;
use lookaside_netsim::CaptureFilter;
use lookaside_resolver::{BindConfig, ResolverConfig, SecurityStatus};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::{Rcode, RrType};
use lookaside_workload::PopulationParams;

fn small_world(remedy: RemedyMode) -> Internet {
    let population = PopulationParams { size: 3_000, ..PopulationParams::default() };
    let mut params = InternetParams::for_top(3_000, population, remedy);
    params.capture = CaptureFilter::All;
    Internet::build(params)
}

#[test]
fn resolves_and_validates_across_the_population() {
    let mut internet = small_world(RemedyMode::None);
    let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 1);
    let mut insecure = 0;
    for rank in 1..=120usize {
        let qname = internet.population.domain(rank);
        let res = resolver
            .resolve(&mut internet.net, &qname, RrType::A)
            .unwrap_or_else(|e| panic!("rank {rank} ({qname}): {e}"));
        assert_eq!(res.rcode, Rcode::NoError, "rank {rank}");
        assert!(!res.answers.is_empty(), "rank {rank}");
        match res.status {
            SecurityStatus::Secure => {}
            SecurityStatus::Insecure => insecure += 1,
            other => panic!("rank {rank}: unexpected status {other:?}"),
        }
    }
    // ~3 % signed: the bulk is insecure.
    assert!(insecure > 100, "most domains are unsigned ({insecure})");
    // And a known fully-secured domain (signed + DS under a signed TLD)
    // validates Secure.
    let rank = (1..3000)
        .find(|&r| {
            let a = internet.population.attributes(r);
            a.signed && a.ds_in_parent
        })
        .expect("population contains secure domains");
    let qname = internet.population.domain(rank);
    let res = resolver.resolve(&mut internet.net, &qname, RrType::A).unwrap();
    assert_eq!(res.status, SecurityStatus::Secure, "rank {rank} ({qname})");
}

#[test]
fn capture_and_classifier_agree_with_ground_truth() {
    let mut internet = small_world(RemedyMode::None);
    let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 2);
    for rank in 1..=60usize {
        let qname = internet.population.domain(rank);
        let _ = resolver.resolve(&mut internet.net, &qname, RrType::A).unwrap();
    }
    let report = classify(internet.net.capture(), &internet.dlv_apex);
    // Every leaked name must really have no deposit, and every Case-1 hit
    // must have one (ground truth from the registry build).
    for name in &report.leaked_names {
        assert!(!internet.is_deposited(name), "{name} was classified leaked but has a deposit");
    }
    assert!(report.case2 > 20, "popular domains leak ({})", report.case2);
    assert_eq!(report.dlv_queries, report.dlv_responses);
}

#[test]
fn www_subdomains_resolve_through_the_same_zones() {
    let mut internet = small_world(RemedyMode::None);
    let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 3);
    let apex = internet.population.domain(7);
    let www = apex.prepend("www").unwrap();
    let res = resolver.resolve(&mut internet.net, &www, RrType::A).unwrap();
    assert_eq!(res.rcode, Rcode::NoError);
    // MX exists at the apex, NODATA at www.
    let res = resolver.resolve(&mut internet.net, &apex, RrType::Mx).unwrap();
    assert_eq!(res.rcode, Rcode::NoError);
    assert!(!res.answers.is_empty());
    let res = resolver.resolve(&mut internet.net, &www, RrType::Mx).unwrap();
    assert_eq!(res.rcode, Rcode::NoError);
    assert!(res.answers.is_empty(), "NODATA at www for MX");
}

#[test]
fn nonexistent_domains_get_nxdomain() {
    let mut internet = small_world(RemedyMode::None);
    let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 4);
    // Rank beyond the population size does not exist.
    let ghost = lookaside_wire::Name::parse("d9999999.com.").unwrap();
    let res = resolver.resolve(&mut internet.net, &ghost, RrType::A).unwrap();
    assert_eq!(res.rcode, Rcode::NxDomain);
}

#[test]
fn unbound_configuration_never_reaches_broken_state() {
    // §4.4: Unbound enables validation *by* including anchors, so even its
    // "misconfigured" variants either validate correctly or do nothing.
    let mut internet = small_world(RemedyMode::None);
    let config = ResolverConfig::Unbound(lookaside_resolver::UnboundConfig {
        auto_trust_anchor: true,
        dlv_anchor: true,
    });
    let mut resolver = internet.resolver(config, 5);
    let rank = (1..3000)
        .find(|&r| {
            let a = internet.population.attributes(r);
            a.signed && a.ds_in_parent
        })
        .unwrap();
    let qname = internet.population.domain(rank);
    let res = resolver.resolve(&mut internet.net, &qname, RrType::A).unwrap();
    assert_eq!(res.status, SecurityStatus::Secure);
}

#[test]
fn bind_and_unbound_measure_identically_when_correct() {
    // §5: "the measurements, results, and findings are the same for both
    // resolver software packages". With equivalent effective configuration
    // the leakage must be identical.
    let mut leakages = Vec::new();
    for config in [
        ResolverConfig::Bind(BindConfig::correct()),
        ResolverConfig::Unbound(lookaside_resolver::UnboundConfig {
            auto_trust_anchor: true,
            dlv_anchor: true,
        }),
    ] {
        let outcome = run(&RunConfig {
            population: PopulationParams { size: 1000, ..PopulationParams::default() },
            queries: QuerySet::Top(60),
            resolver: config,
            remedy: RemedyMode::None,
            capture: CaptureFilter::DlvOnly,
            seed: 77,
            dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
            dlv_denial: lookaside_zone::DenialMode::Nsec,
        });
        leakages.push(outcome.leakage);
    }
    assert_eq!(leakages[0], leakages[1]);
}

#[test]
fn run_outcomes_are_reproducible_end_to_end() {
    let config = RunConfig {
        population: PopulationParams { size: 1500, ..PopulationParams::default() },
        queries: QuerySet::Top(80),
        resolver: ResolverConfig::Bind(BindConfig::correct()),
        remedy: RemedyMode::None,
        capture: CaptureFilter::DlvOnly,
        seed: 99,
        dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
        dlv_denial: lookaside_zone::DenialMode::Nsec,
    };
    let a = run(&config);
    let b = run(&config);
    assert_eq!(a.leakage, b.leakage);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.elapsed_ns, b.elapsed_ns);
}

#[test]
fn hashed_remedy_world_serves_hashed_registry() {
    let mut internet = small_world(RemedyMode::HashedDlv);
    let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 6);
    for rank in 1..=30usize {
        let qname = internet.population.domain(rank);
        let _ = resolver.resolve(&mut internet.net, &qname, RrType::A).unwrap();
    }
    for packet in internet.net.capture().packets() {
        if packet.qtype == RrType::Dlv {
            let first = packet.qname.label(0).to_string();
            assert_eq!(first.len(), 32, "hashed label expected, got {}", packet.qname);
        }
    }
}
