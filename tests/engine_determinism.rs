//! Determinism suite for the sharded parallel experiment engine.
//!
//! The engine's contract is that worker threads decide *when* a shard
//! runs, never *what* it produces: for a fixed seed, every worker count
//! must yield byte-identical merged captures and byte-identical report
//! text. These properties drive the fleet through the public API the
//! `repro` binary uses, so `--jobs 1` vs `--jobs N` byte-identity is
//! asserted against the same rendering the user sees.

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

use proptest::prelude::*;

use lookaside::byzantine::{byzantine_sweep_with, ByzantineConfig};
use lookaside::chaos::{chaos_outage_with, ChaosConfig};
use lookaside::engine::{expect_all, Executor, ShardPlan};
use lookaside::experiments::{fig8_9_with, QuerySet, RunConfig};
use lookaside::netsim::{Capture, Packet};
use lookaside::parallel::{run_sharded, Worker};
use lookaside::report::fig8_9_table;

/// Runs `config` as a `shards`-box fleet on `exec` and returns the merged
/// capture's packets — the raw quantity whose ordering the engine must
/// keep stable across worker counts.
fn merged_packets(config: &RunConfig, shards: usize, exec: &Executor) -> Vec<Packet> {
    let n = match &config.queries {
        QuerySet::Top(n) => *n,
        other => panic!("fleet test needs a rank sweep, got {other:?}"),
    };
    let plan = ShardPlan::new(config.seed).split_range(1..n + 1, shards);
    let outcomes =
        expect_all(exec.run(&plan, |shard| Worker::replica(config).run_ranks(shard.input.clone())));
    let mut capture = Capture::default();
    for outcome in &outcomes {
        capture.merge(&outcome.capture);
    }
    capture.packets().to_vec()
}

/// Memoised serial references so each proptest case pays for one parallel
/// run, not a parallel *and* a serial one.
fn cached<K, V, F>(cache: &'static OnceLock<Mutex<HashMap<K, V>>>, key: K, compute: F) -> V
where
    K: std::hash::Hash + Eq + Clone,
    V: Clone,
    F: FnOnce() -> V,
{
    let map = cache.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = map.lock().unwrap().get(&key) {
        return v.clone();
    }
    let v = compute();
    map.lock().unwrap().insert(key, v.clone());
    v
}

static CAPTURE_REFS: OnceLock<Mutex<HashMap<usize, Vec<Packet>>>> = OnceLock::new();
static FIG9_REFS: OnceLock<Mutex<HashMap<usize, String>>> = OnceLock::new();

proptest! {
    /// Any shard count × any worker count: the merged capture is
    /// byte-identical to the serial execution of the same shard plan.
    #[test]
    fn merged_captures_are_worker_count_invariant(
        shards in 1usize..9,
        jobs in 1usize..9,
    ) {
        let config = RunConfig::quick(16);
        let reference = cached(&CAPTURE_REFS, shards, || {
            merged_packets(&config, shards, &Executor::serial())
        });
        let parallel = merged_packets(&config, shards, &Executor::new(jobs));
        prop_assert_eq!(parallel, reference);
    }

    /// The `repro fig9` table text is byte-identical for every worker
    /// count, at every sweep width (each size is one shard).
    #[test]
    fn fig9_text_is_worker_count_invariant(
        widths in 1usize..5,
        jobs in 1usize..9,
    ) {
        let sizes: Vec<usize> = (1..=widths).map(|i| 20 * i).collect();
        let reference = cached(&FIG9_REFS, widths, || {
            fig8_9_table(&fig8_9_with(&Executor::serial(), &sizes, 11))
        });
        let parallel = fig8_9_table(&fig8_9_with(&Executor::new(jobs), &sizes, 11));
        prop_assert_eq!(parallel, reference);
    }
}

/// The fleet reduction itself (counters, leakage, statuses) is jobs-
/// invariant through the public [`run_sharded`] entry point.
#[test]
fn run_sharded_outcome_is_worker_count_invariant() {
    let config = RunConfig::quick(21);
    let reference = run_sharded(&config, 5, &Executor::serial());
    for jobs in [2, 3, 8] {
        let parallel = run_sharded(&config, 5, &Executor::new(jobs));
        assert_eq!(parallel.stats, reference.stats, "jobs={jobs}");
        assert_eq!(parallel.leakage, reference.leakage, "jobs={jobs}");
        assert_eq!(parallel.counters, reference.counters, "jobs={jobs}");
        assert_eq!(parallel.statuses, reference.statuses, "jobs={jobs}");
        assert_eq!(parallel.elapsed_ns, reference.elapsed_ns, "jobs={jobs}");
        assert_eq!(parallel.queried, reference.queried, "jobs={jobs}");
    }
}

/// The chaos grid (outage × timer-profile cells) reduces to the same
/// point list, in the same profile-major order, for every worker count.
#[test]
fn chaos_grid_is_worker_count_invariant() {
    let config = ChaosConfig::quick(10);
    let reference = format!("{:?}", chaos_outage_with(&Executor::serial(), &config));
    for jobs in [2, 4] {
        let parallel = format!("{:?}", chaos_outage_with(&Executor::new(jobs), &config));
        assert_eq!(parallel, reference, "jobs={jobs}");
    }
}

/// The Byzantine sweep (adversary × hardening-profile cells) reduces to
/// the same point list, in the same profile-major order, for every
/// worker count — this backs the `repro byzantine --jobs N` byte-diff
/// gate in CI.
#[test]
fn byzantine_sweep_is_worker_count_invariant() {
    let config = ByzantineConfig::quick(6);
    let reference = format!("{:?}", byzantine_sweep_with(&Executor::serial(), &config));
    for jobs in [2, 4] {
        let parallel = format!("{:?}", byzantine_sweep_with(&Executor::new(jobs), &config));
        assert_eq!(parallel, reference, "jobs={jobs}");
    }
}
