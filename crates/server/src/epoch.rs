//! Epoch-aware authoritative serving: answer from the zone version active
//! at the simulated query time.
//!
//! A [`KeyTimeline`] produces a sequence of zone epochs; an
//! [`EpochAuthority`] holds one published (signed) zone per epoch and
//! routes each query to the version whose `start` is the latest at or
//! before the query's simulated arrival time. Because it is an ordinary
//! [`DnsHandler`], it composes with the Byzantine fault plane
//! ([`crate::FaultyServer`] wraps any handler) and can stand in anywhere an
//! [`AuthoritativeServer`] does.
//!
//! [`KeyTimeline`]: lookaside_zone::KeyTimeline

use lookaside_netsim::{DnsHandler, ServerAction, Transport};
use lookaside_wire::{Message, Name};
use lookaside_zone::{DenialMode, PublishedZone, Zone, ZoneEpoch};

use crate::authority::AuthoritativeServer;

/// Nanoseconds per second, for converting zone time (RRSIG seconds) to the
/// simulator's clock.
const NS_PER_SEC: u64 = 1_000_000_000;

/// An authority that serves the zone version active at the simulated query
/// time.
pub struct EpochAuthority {
    /// `(start_ns, server)` pairs, sorted ascending by start.
    epochs: Vec<(u64, AuthoritativeServer)>,
}

impl EpochAuthority {
    /// Builds an epoch authority from explicit `(start_ns, server)` pairs.
    /// Queries arriving before the first start are served by the first
    /// version (the zone existed before the observation window opened).
    pub fn new(mut versions: Vec<(u64, AuthoritativeServer)>) -> Self {
        assert!(!versions.is_empty(), "an epoch authority needs at least one zone version");
        versions.sort_by_key(|(start, _)| *start);
        EpochAuthority { epochs: versions }
    }

    /// Publishes `zone` once per timeline epoch and serves each from its
    /// `start_secs` onward — the bridge from [`lookaside_zone::KeyTimeline`]
    /// output to a servable authority.
    pub fn from_epochs(zone: &Zone, epochs: &[ZoneEpoch], denial: DenialMode) -> Self {
        let versions = epochs
            .iter()
            .map(|epoch| {
                let published = epoch.publish(zone.clone(), denial);
                (u64::from(epoch.start_secs) * NS_PER_SEC, AuthoritativeServer::single(published))
            })
            .collect();
        Self::new(versions)
    }

    /// Marks `apex` as DLV-advertised (§6.2.1 Z-bit remedy) in every epoch.
    pub fn advertise_dlv(&mut self, apex: Name) {
        for (_, server) in &mut self.epochs {
            server.advertise_dlv(apex.clone());
        }
    }

    /// Number of zone versions held.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// The zone version active at `now_ns` (latest start ≤ now, clamped to
    /// the first version for times before the window).
    pub fn active_zone(&self, now_ns: u64) -> &PublishedZone {
        let idx = self.active_index(now_ns);
        self.epochs[idx].1.zones().first().expect("epoch servers are built with exactly one zone")
    }

    fn active_index(&self, now_ns: u64) -> usize {
        self.epochs.partition_point(|(start, _)| *start <= now_ns).saturating_sub(1)
    }
}

impl DnsHandler for EpochAuthority {
    fn handle(&mut self, query: &Message, now_ns: u64) -> Message {
        let idx = self.active_index(now_ns);
        self.epochs[idx].1.handle(query, now_ns)
    }

    fn handle_faulty(&mut self, query: &Message, now_ns: u64) -> ServerAction {
        ServerAction::Respond(self.handle(query, now_ns))
    }

    fn handle_transport(
        &mut self,
        query: &Message,
        now_ns: u64,
        _transport: Transport,
    ) -> ServerAction {
        self.handle_faulty(query, now_ns)
    }
}

/// A generic epoch router: like [`EpochAuthority`] but over *any*
/// [`DnsHandler`], for zones that are fabricated on demand rather than
/// published statically — e.g. a [`crate::SyntheticAuthority`] TLD, where
/// each epoch is a whole authority rebuilt with that epoch's signer keys
/// and validity window. Queries route to the version whose start is the
/// latest at or before the simulated arrival time; pre-window queries get
/// the first version.
pub struct EpochRouter<H> {
    /// `(start_ns, handler)` pairs, sorted ascending by start.
    epochs: Vec<(u64, H)>,
}

impl<H: DnsHandler> EpochRouter<H> {
    /// Builds a router from explicit `(start_ns, handler)` pairs.
    pub fn new(mut versions: Vec<(u64, H)>) -> Self {
        assert!(!versions.is_empty(), "an epoch router needs at least one version");
        versions.sort_by_key(|(start, _)| *start);
        EpochRouter { epochs: versions }
    }

    /// Builds a router with one handler per zone-time epoch start (seconds,
    /// as [`ZoneEpoch::start_secs`] carries them).
    pub fn from_starts(
        starts_secs: impl IntoIterator<Item = u32>,
        build: impl Fn(u32) -> H,
    ) -> Self {
        Self::new(
            starts_secs
                .into_iter()
                .map(|start| (u64::from(start) * NS_PER_SEC, build(start)))
                .collect(),
        )
    }

    /// Number of versions held.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    fn active_index(&self, now_ns: u64) -> usize {
        self.epochs.partition_point(|(start, _)| *start <= now_ns).saturating_sub(1)
    }
}

impl<H: DnsHandler> DnsHandler for EpochRouter<H> {
    fn handle(&mut self, query: &Message, now_ns: u64) -> Message {
        let idx = self.active_index(now_ns);
        self.epochs[idx].1.handle(query, now_ns)
    }

    fn handle_faulty(&mut self, query: &Message, now_ns: u64) -> ServerAction {
        let idx = self.active_index(now_ns);
        self.epochs[idx].1.handle_faulty(query, now_ns)
    }

    fn handle_transport(
        &mut self,
        query: &Message,
        now_ns: u64,
        transport: Transport,
    ) -> ServerAction {
        let idx = self.active_index(now_ns);
        self.epochs[idx].1.handle_transport(query, now_ns, transport)
    }
}

impl<H> std::fmt::Debug for EpochRouter<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochRouter")
            .field("epochs", &self.epochs.len())
            .field("starts_ns", &self.epochs.iter().map(|(s, _)| *s).collect::<Vec<_>>())
            .finish()
    }
}

impl std::fmt::Debug for EpochAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochAuthority")
            .field("epochs", &self.epochs.len())
            .field("starts_ns", &self.epochs.iter().map(|(s, _)| *s).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_wire::{RData, RrType};
    use lookaside_zone::{KeyTimeline, RolloverPolicy};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample_zone() -> Zone {
        let apex = n("example.com");
        let mut zone = Zone::new(apex.clone(), n("ns1.example.com"));
        zone.add(apex, 300, RData::A("192.0.2.1".parse().unwrap()));
        zone
    }

    fn dnskey_tags(resp: &Message) -> Vec<u16> {
        resp.answers_of(RrType::Rrsig)
            .filter_map(|r| match &r.rdata {
                RData::Rrsig { key_tag, type_covered: RrType::Dnskey, .. } => Some(*key_tag),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn serves_the_version_active_at_query_time() {
        let policy = RolloverPolicy {
            ksk_rollover_at: Some(7200),
            rollover_lead_secs: 3600,
            ..RolloverPolicy::steady(3600, 10_000)
        };
        let tl = KeyTimeline::correct(42, policy);
        let epochs = tl.epochs(14_400);
        let mut auth = EpochAuthority::from_epochs(&sample_zone(), &epochs, DenialMode::Nsec);

        let q = Message::dnssec_query(1, n("example.com"), RrType::Dnskey);
        // Before the roll the DNSKEY RRset is signed by KSK generation 0.
        let early = auth.handle(&q, 0);
        assert_eq!(dnskey_tags(&early), vec![tl.ksk_generation(0).key_tag()]);
        // After activation, generation 1 signs.
        let late = auth.handle(&q, 7200 * NS_PER_SEC);
        assert_eq!(dnskey_tags(&late), vec![tl.ksk_generation(1).key_tag()]);
    }

    #[test]
    fn pre_window_queries_get_the_first_version() {
        let tl = KeyTimeline::correct(42, RolloverPolicy::steady(3600, 10_000));
        let epochs = tl.epochs(7200);
        let mut auth = EpochAuthority::new(
            epochs
                .iter()
                .map(|e| {
                    (
                        u64::from(e.start_secs) * NS_PER_SEC + 1,
                        AuthoritativeServer::single(e.publish(sample_zone(), DenialMode::Nsec)),
                    )
                })
                .collect(),
        );
        let q = Message::dnssec_query(2, n("example.com"), RrType::A);
        assert_eq!(auth.handle(&q, 0).rcode(), lookaside_wire::Rcode::NoError);
        assert_eq!(auth.epoch_count(), 2);
    }

    #[test]
    fn rrsig_windows_follow_the_epoch() {
        let tl = KeyTimeline::correct(42, RolloverPolicy::steady(3600, 5000));
        let epochs = tl.epochs(10_800);
        let mut auth = EpochAuthority::from_epochs(&sample_zone(), &epochs, DenialMode::Nsec);
        let q = Message::dnssec_query(3, n("example.com"), RrType::A);
        let resp = auth.handle(&q, 7200 * NS_PER_SEC);
        let Some(RData::Rrsig { inception, expiration, .. }) =
            resp.answers_of(RrType::Rrsig).map(|r| &r.rdata).next()
        else {
            panic!("expected rrsig");
        };
        assert_eq!((*inception, *expiration), (7200, 12_200));
    }

    #[test]
    fn composes_with_the_fault_plane() {
        let tl = KeyTimeline::correct(42, RolloverPolicy::steady(3600, 5000));
        let auth = EpochAuthority::from_epochs(&sample_zone(), &tl.epochs(3600), DenialMode::Nsec);
        let mut faulty =
            crate::FaultyServer::new(Box::new(auth), 1, lookaside_wire::Rcode::ServFail);
        let q = Message::dnssec_query(4, n("example.com"), RrType::A);
        assert_eq!(faulty.handle(&q, 0).rcode(), lookaside_wire::Rcode::ServFail);
        assert_eq!(faulty.handle(&q, 0).rcode(), lookaside_wire::Rcode::NoError);
    }
}
