//! Simulated name servers for the DLV privacy study.
//!
//! Three server kinds are provided:
//!
//! * [`AuthoritativeServer`] — serves one or more [`PublishedZone`]s with
//!   full RFC 4035 semantics: RRSIGs and NSEC proofs when the query carries
//!   the `DO` bit, referrals with DS (or NSEC no-DS proofs), NXDOMAIN with
//!   covering NSEC. It also implements the paper's §6.2.1 Z-bit remedy:
//!   responses for zones with a deposited DLV record carry the spare header
//!   Z bit.
//! * [`DlvRegistry`] — a DLV repository (the simulated `dlv.isc.org`):
//!   a signed zone whose owner names are `<domain>.<registry-apex>` holding
//!   DLV records (RFC 4431). Per RFC 5074 the *resolver* does the
//!   label-stripping walk; the registry itself is an ordinary signed
//!   authoritative zone whose NSEC chain is what enables aggressive
//!   negative caching.
//! * [`SyntheticAuthority`] — fabricates wire-faithful zones on demand for
//!   the million-domain workload tail, driven by a [`ZoneOracle`] that maps
//!   zone apexes to attributes (signed? DS in parent? DLV deposited?).
//!
//! [`PublishedZone`]: lookaside_zone::PublishedZone

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod authority;
mod dlv;
mod epoch;
mod flaky;
mod render;
mod synthetic;

pub use authority::AuthoritativeServer;
pub use dlv::{DecommissionStage, DlvDeposit, DlvRegistry, DLV_SPAN_TTL};
pub use epoch::{EpochAuthority, EpochRouter};
pub use flaky::{FaultyServer, FlakyServer};
pub use render::render_lookup;
pub use synthetic::{SyntheticAuthority, SyntheticSpec, ZoneOracle};
