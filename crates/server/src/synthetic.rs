//! Synthetic authorities: wire-faithful servers for the million-domain tail.
//!
//! Materialising a million signed SLD zones (and TLD zones delegating them)
//! would cost gigabytes, so the long tail is served by two fabricating
//! servers driven by a [`ZoneOracle`]:
//!
//! * TLD mode ([`SyntheticAuthority::tld`]) — answers referrals, DS queries,
//!   and NXDOMAINs for children of one TLD, fabricating (and signing, when
//!   the TLD is signed) DS sets and tight NSEC proofs on demand,
//! * SLD mode ([`SyntheticAuthority::sld_default`]) — installed as the
//!   network's default route; serves any child zone the oracle recognises
//!   by building (and caching) a real [`PublishedZone`] for it on first
//!   touch.
//!
//! Fabricated responses go through the same zone/signing/rendering code as
//! materialised ones, so validators cannot tell the difference — which is
//! the point: the substitution changes scale, not semantics.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use lookaside_crypto::ds_rdata;
use lookaside_netsim::DnsHandler;
use lookaside_wire::ext::txt_signal;
use lookaside_wire::{
    Message, MessageBuilder, Name, RData, Rcode, Record, RrClass, RrType, Section, TypeBitmap,
};
use lookaside_zone::{rrsig_signing_input, PublishedZone, SigningKeys, Zone, DEFAULT_TTL};

use crate::render::{glue_record, render_lookup};

/// Attributes of one synthetic SLD zone, derived by the oracle from the
/// population model.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Zone apex (the registered domain).
    pub apex: Name,
    /// Whether the zone is DNSSEC-signed.
    pub signed: bool,
    /// Whether the parent TLD publishes a DS for it (if not and `signed`,
    /// the zone is an island of security — exactly the population DLV was
    /// built for).
    pub ds_in_parent: bool,
    /// Whether the zone has a DLV record deposited in the registry.
    pub dlv_deposited: bool,
    /// Seed for the zone's [`SigningKeys`].
    pub key_seed: u64,
    /// TXT remedy signal to publish (`None` = zone does not participate).
    pub txt_signal: Option<bool>,
    /// Whether responses should carry the Z-bit remedy signal.
    pub z_signal: bool,
    /// Name servers (host name, address). The first in-bailiwick host gets
    /// glue at the parent; out-of-bailiwick hosts force the resolver to
    /// resolve them — the Table 4 A/AAAA traffic.
    pub ns_hosts: Vec<(Name, Ipv4Addr)>,
    /// Address the zone's content is served from.
    pub server_addr: Ipv4Addr,
}

impl SyntheticSpec {
    /// The zone's signing keys (derived, stable).
    pub fn keys(&self) -> SigningKeys {
        SigningKeys::from_seed(self.key_seed)
    }
}

/// Maps names to synthetic zone attributes. Implemented by the experiment
/// harness over its population model.
pub trait ZoneOracle {
    /// The synthetic SLD zone containing `qname`, if that domain exists.
    fn sld_spec(&self, qname: &Name) -> Option<SyntheticSpec>;
}

#[allow(clippy::large_enum_variant)] // two long-lived variants, never collections
enum Mode {
    /// Serve children of this TLD: referrals, DS, NXDOMAIN.
    Tld {
        apex: Name,
        apex_zone: PublishedZone,
        keys: SigningKeys,
        signed: bool,
        inception: u32,
        expiration: u32,
    },
    /// Serve SLD zone content for any oracle-known domain. Cached zones are
    /// behind `Rc` so repeat queries share one publication.
    Sld {
        inception: u32,
        expiration: u32,
        cache: BTreeMap<Name, Rc<PublishedZone>>,
        cache_cap: usize,
    },
}

/// A fabricating authoritative server (see module docs).
pub struct SyntheticAuthority {
    oracle: Rc<dyn ZoneOracle>,
    mode: Mode,
}

impl SyntheticAuthority {
    /// Creates a TLD-mode authority for `apex`.
    pub fn tld(
        apex: Name,
        keys: SigningKeys,
        signed: bool,
        oracle: Rc<dyn ZoneOracle>,
        inception: u32,
        expiration: u32,
    ) -> Self {
        let ns = apex.prepend("ns").expect("tld ns name");
        let zone = Zone::new(apex.clone(), ns);
        let apex_zone = if signed {
            PublishedZone::signed(zone, &keys, inception, expiration)
        } else {
            PublishedZone::unsigned(zone)
        };
        SyntheticAuthority {
            oracle,
            mode: Mode::Tld { apex, apex_zone, keys, signed, inception, expiration },
        }
    }

    /// Creates an SLD-mode authority, suitable as the network default route.
    pub fn sld_default(oracle: Rc<dyn ZoneOracle>, inception: u32, expiration: u32) -> Self {
        SyntheticAuthority {
            oracle,
            mode: Mode::Sld { inception, expiration, cache: BTreeMap::new(), cache_cap: 512 },
        }
    }

    /// Builds the content zone for a synthetic SLD.
    fn build_sld_zone(spec: &SyntheticSpec, inception: u32, expiration: u32) -> PublishedZone {
        let apex = spec.apex.clone();
        let primary = spec
            .ns_hosts
            .first()
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| apex.prepend("ns1").expect("ns name"));
        let mut zone = Zone::new(apex.clone(), primary);
        // NS RRset at apex: replace the default with the full host list.
        for (host, _) in spec.ns_hosts.iter().skip(1) {
            zone.add(apex.clone(), DEFAULT_TTL, RData::Ns(host.clone()));
        }
        let addr = spec.server_addr;
        zone.add(apex.clone(), DEFAULT_TTL, RData::A(addr));
        zone.add(apex.prepend("www").expect("www name"), DEFAULT_TTL, RData::A(addr));
        zone.add(
            apex.clone(),
            DEFAULT_TTL,
            RData::Mx { preference: 10, exchange: apex.prepend("mail").expect("mx name") },
        );
        zone.add(apex.prepend("mail").expect("mail name"), DEFAULT_TTL, RData::A(addr));
        // In-bailiwick NS host addresses live in the zone itself.
        for (host, host_addr) in &spec.ns_hosts {
            if host.is_subdomain_of(&apex) {
                zone.add(host.clone(), DEFAULT_TTL, RData::A(*host_addr));
            }
        }
        if let Some(present) = spec.txt_signal {
            zone.add(apex, DEFAULT_TTL, RData::Txt(vec![txt_signal(present)]));
        }
        if spec.signed {
            PublishedZone::signed(zone, &spec.keys(), inception, expiration)
        } else {
            PublishedZone::unsigned(zone)
        }
    }

    fn handle_sld(&mut self, query: &Message) -> Message {
        let Some(question) = query.question() else {
            return MessageBuilder::respond_to(query).rcode(Rcode::FormErr).build();
        };
        let Some(spec) = self.oracle.sld_spec(&question.name) else {
            return MessageBuilder::respond_to(query).rcode(Rcode::Refused).build();
        };
        let Mode::Sld { inception, expiration, cache, cache_cap } = &mut self.mode else {
            unreachable!("handle_sld called in TLD mode");
        };
        if cache.len() >= *cache_cap && !cache.contains_key(&spec.apex) {
            cache.clear();
        }
        let zone = Rc::clone(
            cache
                .entry(spec.apex.clone())
                .or_insert_with(|| Rc::new(Self::build_sld_zone(&spec, *inception, *expiration))),
        );
        let lookup = zone.lookup(&question.name, question.rrtype);
        let mut response = render_lookup(query, &lookup);
        if spec.z_signal && spec.dlv_deposited {
            response.header.flags.z = true;
        }
        response
    }

    /// Fabricates a signed record over `rrset`-like data for TLD-mode
    /// proofs.
    fn sign_fabricated(
        rrset: &lookaside_wire::RrSet,
        apex: &Name,
        keys: &SigningKeys,
        inception: u32,
        expiration: u32,
    ) -> Record {
        let key_tag = keys.zsk.key_tag();
        let algorithm = lookaside_crypto::ALGORITHM_SIM_SCHNORR;
        let labels = rrset.name.label_count() as u8;
        let input = rrsig_signing_input(
            rrset.rrtype,
            algorithm,
            labels,
            rrset.ttl,
            expiration,
            inception,
            key_tag,
            apex,
            rrset,
        );
        Record {
            name: rrset.name.clone(),
            rrtype: RrType::Rrsig,
            class: RrClass::In,
            ttl: rrset.ttl,
            rdata: RData::Rrsig {
                type_covered: rrset.rrtype,
                algorithm,
                labels,
                original_ttl: rrset.ttl,
                expiration,
                inception,
                key_tag,
                signer_name: apex.clone(),
                signature: keys.zsk.sign_to_bytes(&input),
            },
        }
    }

    /// A tight fabricated NSEC at `owner` (type-absence proof) or covering
    /// `owner` (non-existence proof when `exists` is false).
    fn fabricate_nsec(owner: &Name, exists: bool, types: TypeBitmap) -> lookaside_wire::RrSet {
        let (nsec_owner, next) = if exists {
            // NSEC at the name itself: next is a close successor.
            (owner.clone(), close_successor(owner))
        } else {
            // Covering span: a close predecessor to a close successor.
            (close_predecessor(owner), close_successor(owner))
        };
        lookaside_wire::RrSet::single(
            nsec_owner,
            DEFAULT_TTL,
            RData::Nsec { next_name: next, types },
        )
    }

    fn handle_tld(&mut self, query: &Message) -> Message {
        let Some(question) = query.question() else {
            return MessageBuilder::respond_to(query).rcode(Rcode::FormErr).build();
        };
        let Mode::Tld { apex, apex_zone, keys, signed, inception, expiration } = &self.mode else {
            unreachable!("handle_tld called in SLD mode");
        };
        let qname = &question.name;
        if !qname.is_subdomain_of(apex) {
            return MessageBuilder::respond_to(query).rcode(Rcode::Refused).build();
        }
        if qname == apex {
            return render_lookup(query, &apex_zone.lookup(qname, question.rrtype));
        }

        let child = qname.suffix(apex.label_count() + 1);
        let spec = self.oracle.sld_spec(&child);
        let with_dnssec = query.do_bit();

        match spec {
            None => {
                // Child does not exist: NXDOMAIN with fabricated proofs.
                let mut msg = MessageBuilder::respond_to(query)
                    .authoritative(true)
                    .rcode(Rcode::NxDomain)
                    .build();
                for rec in apex_zone.signed_soa().rrset.to_records() {
                    msg.push(Section::Authority, rec);
                }
                if with_dnssec && *signed {
                    let nsec = Self::fabricate_nsec(&child, false, TypeBitmap::new());
                    let sig = Self::sign_fabricated(&nsec, apex, keys, *inception, *expiration);
                    for rec in nsec.to_records() {
                        msg.push(Section::Authority, rec);
                    }
                    msg.push(Section::Authority, sig);
                }
                msg
            }
            Some(spec) => {
                let secure_child = *signed && spec.signed && spec.ds_in_parent;
                if qname == &child && question.rrtype == RrType::Ds {
                    // The parent answers DS at the cut.
                    let mut msg = MessageBuilder::respond_to(query).authoritative(true).build();
                    if secure_child {
                        let ds = lookaside_wire::RrSet::single(
                            child.clone(),
                            DEFAULT_TTL,
                            ds_rdata(&child, &spec.keys().ksk.public()),
                        );
                        let sig = Self::sign_fabricated(&ds, apex, keys, *inception, *expiration);
                        for rec in ds.to_records() {
                            msg.push(Section::Answer, rec);
                        }
                        if with_dnssec {
                            msg.push(Section::Answer, sig);
                        }
                    } else {
                        // NODATA: prove the DS's absence when we can.
                        for rec in apex_zone.signed_soa().rrset.to_records() {
                            msg.push(Section::Authority, rec);
                        }
                        if with_dnssec && *signed {
                            let nsec = Self::fabricate_nsec(
                                &child,
                                true,
                                TypeBitmap::from_types([RrType::Ns]),
                            );
                            let sig =
                                Self::sign_fabricated(&nsec, apex, keys, *inception, *expiration);
                            for rec in nsec.to_records() {
                                msg.push(Section::Authority, rec);
                            }
                            msg.push(Section::Authority, sig);
                        }
                    }
                    return msg;
                }

                // Referral to the child.
                let mut msg = MessageBuilder::respond_to(query).build();
                let mut ns_set =
                    lookaside_wire::RrSet::empty(child.clone(), RrType::Ns, DEFAULT_TTL);
                for (host, _) in &spec.ns_hosts {
                    ns_set.push(RData::Ns(host.clone()));
                }
                for rec in ns_set.to_records() {
                    msg.push(Section::Authority, rec);
                }
                if with_dnssec && *signed {
                    if secure_child {
                        let ds = lookaside_wire::RrSet::single(
                            child.clone(),
                            DEFAULT_TTL,
                            ds_rdata(&child, &spec.keys().ksk.public()),
                        );
                        let sig = Self::sign_fabricated(&ds, apex, keys, *inception, *expiration);
                        for rec in ds.to_records() {
                            msg.push(Section::Authority, rec);
                        }
                        msg.push(Section::Authority, sig);
                    } else {
                        let nsec = Self::fabricate_nsec(
                            &child,
                            true,
                            TypeBitmap::from_types([RrType::Ns]),
                        );
                        let sig = Self::sign_fabricated(&nsec, apex, keys, *inception, *expiration);
                        for rec in nsec.to_records() {
                            msg.push(Section::Authority, rec);
                        }
                        msg.push(Section::Authority, sig);
                    }
                }
                for (host, addr) in &spec.ns_hosts {
                    if host.is_subdomain_of(&child) {
                        msg.push(Section::Additional, glue_record(host.clone(), *addr));
                    }
                }
                msg
            }
        }
    }
}

/// A name canonically just before `name`, guaranteed not to collide with
/// population names (which never end in `-`).
fn close_predecessor(name: &Name) -> Name {
    let first = name.label(0).to_string();
    let trimmed: String =
        if first.len() > 1 { first[..first.len() - 1].to_string() } else { "0".into() };
    let parent = name.parent().expect("child names have parents");
    parent.prepend(&trimmed).expect("predecessor label fits")
}

/// A name canonically just after `name`.
fn close_successor(name: &Name) -> Name {
    let first = name.label(0).to_string();
    let parent = name.parent().expect("child names have parents");
    parent.prepend(&format!("{first}0")).expect("successor label fits")
}

impl DnsHandler for SyntheticAuthority {
    fn handle(&mut self, query: &Message, _now_ns: u64) -> Message {
        match self.mode {
            Mode::Tld { .. } => self.handle_tld(query),
            Mode::Sld { .. } => self.handle_sld(query),
        }
    }
}

impl std::fmt::Debug for SyntheticAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.mode {
            Mode::Tld { apex, .. } => write!(f, "SyntheticAuthority(tld {apex})"),
            Mode::Sld { cache, .. } => {
                write!(f, "SyntheticAuthority(sld, {} cached zones)", cache.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_zone::covers;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    struct TestOracle;

    impl ZoneOracle for TestOracle {
        fn sld_spec(&self, qname: &Name) -> Option<SyntheticSpec> {
            if qname.label_count() < 2 {
                return None;
            }
            let apex = qname.suffix(2);
            let first = apex.label(0).to_string();
            if !first.starts_with('d') {
                return None;
            }
            let signed = first.ends_with('1'); // d...1 domains are signed
            Some(SyntheticSpec {
                apex: apex.clone(),
                signed,
                ds_in_parent: first.ends_with("11"), // d...11 are fully secure
                dlv_deposited: first.contains("dep"),
                key_seed: 77,
                txt_signal: None,
                z_signal: false,
                ns_hosts: vec![(apex.prepend("ns1").unwrap(), Ipv4Addr::new(10, 0, 0, 1))],
                server_addr: Ipv4Addr::new(10, 0, 0, 1),
            })
        }
    }

    fn tld_authority() -> SyntheticAuthority {
        SyntheticAuthority::tld(
            n("com"),
            SigningKeys::from_seed(3),
            true,
            Rc::new(TestOracle),
            0,
            10_000,
        )
    }

    fn sld_authority() -> SyntheticAuthority {
        SyntheticAuthority::sld_default(Rc::new(TestOracle), 0, 10_000)
    }

    #[test]
    fn tld_referral_includes_glue_and_proofs() {
        let mut auth = tld_authority();
        let q = Message::dnssec_query(1, n("www.d01.com"), RrType::A);
        let resp = auth.handle(&q, 0);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert_eq!(resp.authorities_of(RrType::Ns).count(), 1);
        assert_eq!(resp.additionals_of(RrType::A).count(), 1, "in-bailiwick glue");
        // d01 is signed but no DS in parent: NSEC no-DS proof.
        assert!(resp.authorities_of(RrType::Nsec).next().is_some());
        assert!(resp.authorities_of(RrType::Ds).next().is_none());
    }

    #[test]
    fn tld_secure_referral_has_ds() {
        let mut auth = tld_authority();
        let q = Message::dnssec_query(2, n("www.d11.com"), RrType::A);
        let resp = auth.handle(&q, 0);
        assert!(resp.authorities_of(RrType::Ds).next().is_some());
        assert!(resp.authorities_of(RrType::Rrsig).next().is_some());
    }

    #[test]
    fn tld_nxdomain_has_covering_nsec() {
        let mut auth = tld_authority();
        let q = Message::dnssec_query(3, n("xunknown.com"), RrType::A);
        let resp = auth.handle(&q, 0);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        let nsec = resp.authorities_of(RrType::Nsec).next().expect("nsec proof");
        let RData::Nsec { next_name, .. } = &nsec.rdata else { panic!("nsec rdata") };
        assert!(covers(&nsec.name, next_name, &n("xunknown.com")));
    }

    #[test]
    fn tld_ds_query_answered_at_cut() {
        let mut auth = tld_authority();
        let q = Message::dnssec_query(4, n("d11.com"), RrType::Ds);
        let resp = auth.handle(&q, 0);
        assert_eq!(resp.answers_of(RrType::Ds).count(), 1);
        // Insecure child: NODATA with NSEC showing no DS.
        let q = Message::dnssec_query(5, n("d01.com"), RrType::Ds);
        let resp = auth.handle(&q, 0);
        assert!(resp.answers.is_empty());
        let nsec = resp.authorities_of(RrType::Nsec).next().expect("nsec");
        let RData::Nsec { types, .. } = &nsec.rdata else { panic!("nsec rdata") };
        assert!(!types.contains(RrType::Ds));
    }

    #[test]
    fn sld_serves_fabricated_zone() {
        let mut auth = sld_authority();
        let q = Message::dnssec_query(6, n("www.d11.com"), RrType::A);
        let resp = auth.handle(&q, 0);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert_eq!(resp.answers_of(RrType::A).count(), 1);
        assert!(resp.answers_of(RrType::Rrsig).next().is_some(), "signed zone");
        // Unsigned domain: no RRSIG.
        let q = Message::dnssec_query(7, n("www.d02.com"), RrType::A);
        let resp = auth.handle(&q, 0);
        assert!(resp.answers_of(RrType::Rrsig).next().is_none());
    }

    #[test]
    fn sld_dnskey_served_for_signed_zone() {
        let mut auth = sld_authority();
        let q = Message::dnssec_query(8, n("d11.com"), RrType::Dnskey);
        let resp = auth.handle(&q, 0);
        assert_eq!(resp.answers_of(RrType::Dnskey).count(), 2);
    }

    #[test]
    fn sld_refuses_unknown_names() {
        let mut auth = sld_authority();
        let q = Message::query(9, n("zzz.org"), RrType::A);
        assert_eq!(auth.handle(&q, 0).rcode(), Rcode::Refused);
    }

    #[test]
    fn predecessor_successor_bracket_name() {
        let name = n("d0000123.com");
        let pred = close_predecessor(&name);
        let succ = close_successor(&name);
        assert_eq!(pred.canonical_cmp(&name), std::cmp::Ordering::Less);
        assert_eq!(name.canonical_cmp(&succ), std::cmp::Ordering::Less);
    }

    #[test]
    fn tld_apex_queries_served() {
        let mut auth = tld_authority();
        let q = Message::dnssec_query(10, n("com"), RrType::Dnskey);
        let resp = auth.handle(&q, 0);
        assert_eq!(resp.answers_of(RrType::Dnskey).count(), 2);
        let q = Message::dnssec_query(11, n("com"), RrType::Soa);
        assert_eq!(auth.handle(&q, 0).answers_of(RrType::Soa).count(), 1);
    }
}
