use std::collections::BTreeSet;

use lookaside_netsim::DnsHandler;
use lookaside_wire::{Message, MessageBuilder, Name, Rcode};
use lookaside_zone::PublishedZone;

use crate::render::render_lookup;

/// An authoritative server hosting one or more published zones.
///
/// Besides standard behaviour it implements the Z-bit remedy of §6.2.1:
/// when a hosted zone is listed via [`AuthoritativeServer::advertise_dlv`],
/// every response from that zone carries the spare header Z bit, telling a
/// remedy-aware resolver that a DLV record is deposited and a DLV query
/// would be useful.
pub struct AuthoritativeServer {
    zones: Vec<PublishedZone>,
    z_advertise: BTreeSet<Name>,
}

impl AuthoritativeServer {
    /// Creates a server hosting `zones`.
    pub fn new(zones: Vec<PublishedZone>) -> Self {
        AuthoritativeServer { zones, z_advertise: BTreeSet::new() }
    }

    /// Creates a server hosting a single zone.
    pub fn single(zone: PublishedZone) -> Self {
        AuthoritativeServer::new(vec![zone])
    }

    /// Adds another hosted zone.
    pub fn add_zone(&mut self, zone: PublishedZone) {
        self.zones.push(zone);
    }

    /// Marks a hosted zone apex as having a DLV record deposited, enabling
    /// the Z-bit signal on its responses.
    pub fn advertise_dlv(&mut self, apex: Name) {
        self.z_advertise.insert(apex);
    }

    /// The deepest hosted zone containing `qname`.
    pub fn zone_for(&self, qname: &Name) -> Option<&PublishedZone> {
        self.zones
            .iter()
            .filter(|z| qname.is_subdomain_of(z.apex()))
            .max_by_key(|z| z.apex().label_count())
    }

    /// Number of hosted zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// The hosted zones, in insertion order.
    pub fn zones(&self) -> &[PublishedZone] {
        &self.zones
    }
}

impl DnsHandler for AuthoritativeServer {
    fn handle(&mut self, query: &Message, _now_ns: u64) -> Message {
        let Some(question) = query.question() else {
            return MessageBuilder::respond_to(query).rcode(Rcode::FormErr).build();
        };
        let Some(zone) = self.zone_for(&question.name) else {
            return MessageBuilder::respond_to(query).rcode(Rcode::Refused).build();
        };
        let lookup = zone.lookup(&question.name, question.rrtype);
        let mut response = render_lookup(query, &lookup);
        if self.z_advertise.contains(zone.apex()) {
            response.header.flags.z = true;
        }
        response
    }
}

impl std::fmt::Debug for AuthoritativeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let apexes: Vec<String> = self.zones.iter().map(|z| z.apex().to_string()).collect();
        f.debug_struct("AuthoritativeServer").field("zones", &apexes).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_wire::{RData, RrType};
    use lookaside_zone::{SigningKeys, Zone};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn server() -> AuthoritativeServer {
        let mut z1 = Zone::new(n("example.com"), n("ns1.example.com"));
        z1.add(n("www.example.com"), 300, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        let mut z2 = Zone::new(n("deep.example.com"), n("ns1.deep.example.com"));
        z2.add(n("www.deep.example.com"), 300, RData::A(Ipv4Addr::new(192, 0, 2, 2)));
        AuthoritativeServer::new(vec![
            PublishedZone::signed(z1, &SigningKeys::from_seed(1), 0, 1000),
            PublishedZone::signed(z2, &SigningKeys::from_seed(2), 0, 1000),
        ])
    }

    #[test]
    fn routes_to_deepest_zone() {
        let s = server();
        assert_eq!(s.zone_for(&n("www.deep.example.com")).unwrap().apex(), &n("deep.example.com"));
        assert_eq!(s.zone_for(&n("www.example.com")).unwrap().apex(), &n("example.com"));
        assert!(s.zone_for(&n("other.org")).is_none());
    }

    #[test]
    fn answers_with_aa_bit() {
        let mut s = server();
        let q = Message::dnssec_query(1, n("www.example.com"), RrType::A);
        let resp = s.handle(&q, 0);
        assert!(resp.header.flags.aa);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert_eq!(resp.answers_of(RrType::A).count(), 1);
    }

    #[test]
    fn refuses_foreign_names() {
        let mut s = server();
        let q = Message::query(2, n("other.org"), RrType::A);
        assert_eq!(s.handle(&q, 0).rcode(), Rcode::Refused);
    }

    #[test]
    fn z_bit_set_only_for_advertised_zones() {
        let mut s = server();
        let q = Message::dnssec_query(3, n("www.example.com"), RrType::A);
        assert!(!s.handle(&q, 0).header.flags.z);
        s.advertise_dlv(n("example.com"));
        assert!(s.handle(&q, 0).header.flags.z);
        // The other zone is unaffected.
        let q2 = Message::dnssec_query(4, n("www.deep.example.com"), RrType::A);
        assert!(!s.handle(&q2, 0).header.flags.z);
    }

    #[test]
    fn empty_question_is_formerr() {
        let mut s = server();
        let mut q = Message::query(5, n("www.example.com"), RrType::A);
        q.questions.clear();
        assert_eq!(s.handle(&q, 0).rcode(), Rcode::FormErr);
    }
}
