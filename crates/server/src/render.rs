//! Rendering zone lookup results into wire messages.

use lookaside_wire::{Message, MessageBuilder, Rcode, Record, RrClass, RrType, Section};
use lookaside_zone::{Lookup, SignedRrSet};
use std::net::Ipv4Addr;

fn push_signed(msg: &mut Message, section: Section, set: &SignedRrSet, with_dnssec: bool) {
    for rec in set.rrset.to_records() {
        msg.push(section, rec);
    }
    if with_dnssec {
        if let Some(sig) = &set.rrsig {
            msg.push(section, Record::clone(sig));
        }
    }
}

/// Renders a [`Lookup`] outcome as the authoritative response to `query`.
///
/// DNSSEC material (RRSIGs, NSEC proofs, DS sets) is attached only when the
/// query set the EDNS `DO` bit, per RFC 4035 §3.1 — this is why a resolver
/// without DNSSEC enabled never even sees the records that could have told
/// it about islands of security.
pub fn render_lookup(query: &Message, lookup: &Lookup) -> Message {
    let with_dnssec = query.do_bit();
    let mut msg = MessageBuilder::respond_to(query).authoritative(true).build();
    match lookup {
        Lookup::Answer { answer } => {
            push_signed(&mut msg, Section::Answer, answer, with_dnssec);
        }
        Lookup::Cname { cname } => {
            push_signed(&mut msg, Section::Answer, cname, with_dnssec);
        }
        Lookup::NoData { soa, proof } => {
            push_signed(&mut msg, Section::Authority, soa, with_dnssec);
            if with_dnssec {
                if let Some(proof) = proof {
                    push_signed(&mut msg, Section::Authority, proof, true);
                }
            }
        }
        Lookup::Referral { ns, ds, no_ds_proof, glue, .. } => {
            msg.header.flags.aa = false;
            for rec in ns.to_records() {
                msg.push(Section::Authority, rec);
            }
            if with_dnssec {
                if let Some(ds) = ds {
                    push_signed(&mut msg, Section::Authority, ds, true);
                }
                if let Some(proof) = no_ds_proof {
                    push_signed(&mut msg, Section::Authority, proof, true);
                }
            }
            for (name, addr) in glue {
                msg.push(
                    Section::Additional,
                    Record {
                        name: name.clone(),
                        rrtype: RrType::A,
                        class: RrClass::In,
                        ttl: lookaside_zone::DEFAULT_TTL,
                        rdata: lookaside_wire::RData::A(*addr),
                    },
                );
            }
        }
        Lookup::NxDomain { soa, proof } => {
            msg.header.flags.rcode = Rcode::NxDomain;
            push_signed(&mut msg, Section::Authority, soa, with_dnssec);
            if with_dnssec {
                if let Some(proof) = proof {
                    push_signed(&mut msg, Section::Authority, proof, true);
                }
            }
        }
        Lookup::OutOfZone => {
            msg.header.flags.rcode = Rcode::Refused;
            msg.header.flags.aa = false;
        }
        // `Lookup` is non-exhaustive; treat future variants as server
        // failure rather than fabricating data.
        _ => {
            msg.header.flags.rcode = Rcode::ServFail;
            msg.header.flags.aa = false;
        }
    }
    msg
}

/// Convenience for fabricating glue records in tests and synthetic zones.
pub(crate) fn glue_record(name: lookaside_wire::Name, addr: Ipv4Addr) -> Record {
    Record {
        name,
        rrtype: RrType::A,
        class: RrClass::In,
        ttl: lookaside_zone::DEFAULT_TTL,
        rdata: lookaside_wire::RData::A(addr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_wire::{Name, RData};
    use lookaside_zone::{PublishedZone, SigningKeys, Zone};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn zone() -> PublishedZone {
        let mut z = Zone::new(n("example.com"), n("ns1.example.com"));
        z.add(n("www.example.com"), 300, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        PublishedZone::signed(z, &SigningKeys::from_seed(1), 0, 1000)
    }

    #[test]
    fn do_bit_controls_rrsig_presence() {
        let pz = zone();
        let lookup = pz.lookup(&n("www.example.com"), RrType::A);

        let plain = Message::query(1, n("www.example.com"), RrType::A);
        let resp = render_lookup(&plain, &lookup);
        assert_eq!(resp.answers.len(), 1);
        assert!(resp.answers_of(RrType::Rrsig).next().is_none());

        let dnssec = Message::dnssec_query(2, n("www.example.com"), RrType::A);
        let resp = render_lookup(&dnssec, &lookup);
        assert_eq!(resp.answers.len(), 2);
        assert!(resp.answers_of(RrType::Rrsig).next().is_some());
    }

    #[test]
    fn nxdomain_rendering_with_proofs() {
        let pz = zone();
        let lookup = pz.lookup(&n("missing.example.com"), RrType::A);
        let q = Message::dnssec_query(3, n("missing.example.com"), RrType::A);
        let resp = render_lookup(&q, &lookup);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        assert!(resp.authorities_of(RrType::Soa).next().is_some());
        assert!(resp.authorities_of(RrType::Nsec).next().is_some());
        assert!(resp.authorities_of(RrType::Rrsig).count() >= 2);
    }

    #[test]
    fn out_of_zone_is_refused() {
        let pz = zone();
        let q = Message::query(4, n("other.org"), RrType::A);
        let resp = render_lookup(&q, &pz.lookup(&n("other.org"), RrType::A));
        assert_eq!(resp.rcode(), Rcode::Refused);
    }
}
