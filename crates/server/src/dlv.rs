use std::collections::BTreeSet;

use lookaside_crypto::{dlv_rdata, hashed_dlv_label, PublicKey};
use lookaside_netsim::{DnsHandler, ServerAction};
use lookaside_wire::{Message, MessageBuilder, Name, RData, Rcode};
use lookaside_zone::{DenialMode, PublishedZone, SigningKeys, Zone, DEFAULT_TTL};
use serde::{Deserialize, Serialize};

use crate::authority::AuthoritativeServer;

/// One zone's deposit in a DLV registry: the zone's name and its KSK, from
/// which the registry derives the DLV record (RFC 4431: DS-shaped digest of
/// the key).
#[derive(Debug, Clone)]
pub struct DlvDeposit {
    /// The depositing zone (e.g. `example.com.`).
    pub domain: Name,
    /// The zone's key-signing key (public half).
    pub ksk: PublicKey,
}

/// Default lifetime of the registry's NSEC spans. Kept long so that
/// multi-simulated-hour workloads (the 1M-domain sweep) measure the
/// *caching* mechanism rather than TTL churn; see EXPERIMENTS.md.
pub const DLV_SPAN_TTL: u32 = 7 * 24 * 3600;

/// One stage of the registry's end-of-life, modelled on how `dlv.isc.org`
/// was actually wound down (announced 2015, records deleted 2017, zone
/// finally gone): each stage is a different *kind* of wrong answer, and
/// RFC 5074 §4 requires resolvers to degrade differently for each.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum DecommissionStage {
    /// Normal operation: deposits answered, absences denied with signed
    /// NSEC/NSEC3.
    #[default]
    Populated,
    /// All deposits deleted but the zone still signed and served — every
    /// lookup gets a *provable* (signed) NXDOMAIN. The graceful way out.
    Emptied,
    /// The zone replaced by a blunt unsigned NXDOMAIN for everything — no
    /// denial proof, so a validator cannot cache the absence aggressively.
    NxDomainAll,
    /// The server answers SERVFAIL to everything (a broken registry, not a
    /// removed one).
    ServFailAll,
    /// The zone is served with corrupted RRSIGs: every signature fails
    /// validation, the adversarial worst case for an unhardened validator.
    BogusSignatures,
    /// The server is gone: queries are dropped and resolvers time out.
    Offline,
}

/// A DLV registry server — the simulated `dlv.isc.org`.
///
/// The registry is published as an ordinary *signed* zone whose owner names
/// are `<domain>.<apex>` (or `<hash>.<apex>` under the §6.2.2
/// privacy-preserving remedy). Queries for un-deposited names get NXDOMAIN
/// with an NSEC whose span the resolver may cache aggressively — the exact
/// mechanism the paper credits for the decaying leak proportion of Fig. 9.
pub struct DlvRegistry {
    apex: Name,
    server: AuthoritativeServer,
    deposited: BTreeSet<Name>,
    trust_anchor: PublicKey,
    hashed: bool,
    stage: DecommissionStage,
    /// Signed-but-empty replacement zone, built on first transition to
    /// [`DecommissionStage::Emptied`] from the parameters below.
    empty_server: Option<AuthoritativeServer>,
    keys: SigningKeys,
    inception: u32,
    expiration: u32,
    span_ttl: u32,
    denial: DenialMode,
    /// Pending timed transitions `(at_ns, stage)`, sorted ascending; each
    /// is applied the first time a query arrives at or after its instant.
    schedule: Vec<(u64, DecommissionStage)>,
}

impl DlvRegistry {
    /// Builds and signs the registry zone.
    ///
    /// With `hashed` set, owner names are the truncated-SHA-256 labels of
    /// §6.2.2 instead of the plaintext domain names.
    ///
    /// # Panics
    ///
    /// Panics if a deposit's owner name cannot be formed under the apex
    /// (name-length overflow) — deposits are generated, not attacker
    /// controlled.
    pub fn new(
        apex: Name,
        deposits: &[DlvDeposit],
        keys: &SigningKeys,
        inception: u32,
        expiration: u32,
        hashed: bool,
    ) -> Self {
        Self::with_span_ttl(apex, deposits, keys, inception, expiration, hashed, DLV_SPAN_TTL)
    }

    /// Like [`DlvRegistry::new`] with an explicit negative-caching TTL for
    /// the registry's NSEC spans (the §5.1 "order matters" experiment uses
    /// short TTLs).
    #[allow(clippy::too_many_arguments)]
    pub fn with_span_ttl(
        apex: Name,
        deposits: &[DlvDeposit],
        keys: &SigningKeys,
        inception: u32,
        expiration: u32,
        hashed: bool,
        span_ttl: u32,
    ) -> Self {
        Self::with_denial(
            apex,
            deposits,
            keys,
            inception,
            expiration,
            hashed,
            span_ttl,
            DenialMode::Nsec,
        )
    }

    /// Full-control constructor: additionally selects the denial mechanism.
    /// An NSEC3 registry resists zone enumeration but, per RFC 5074 §5,
    /// resolvers cannot aggressively cache its denials — the §7.3
    /// trade-off the `nsec3` experiment measures.
    #[allow(clippy::too_many_arguments)]
    pub fn with_denial(
        apex: Name,
        deposits: &[DlvDeposit],
        keys: &SigningKeys,
        inception: u32,
        expiration: u32,
        hashed: bool,
        span_ttl: u32,
        denial: DenialMode,
    ) -> Self {
        let primary_ns = apex.prepend("ns").expect("registry ns name");
        let mut zone = Zone::new(apex.clone(), primary_ns);
        zone.set_negative_ttl(span_ttl);
        let mut deposited = BTreeSet::new();
        for deposit in deposits {
            let owner = if hashed {
                apex.prepend(&hashed_dlv_label(&deposit.domain)).expect("hashed label fits")
            } else {
                deposit.domain.concat(&apex).expect("deposit name fits under apex")
            };
            zone.add(owner, DEFAULT_TTL, dlv_rdata(&deposit.domain, &deposit.ksk));
            deposited.insert(deposit.domain.clone());
        }
        let published =
            PublishedZone::signed_with_denial(zone, keys, inception, expiration, denial);
        DlvRegistry {
            apex,
            server: AuthoritativeServer::single(published),
            deposited,
            trust_anchor: keys.ksk.public(),
            hashed,
            stage: DecommissionStage::Populated,
            empty_server: None,
            keys: *keys,
            inception,
            expiration,
            span_ttl,
            denial,
            schedule: Vec::new(),
        }
    }

    /// Moves the registry to a decommission stage. The `Emptied` stage
    /// builds (once) a signed empty zone under the *same* keys, so a
    /// resolver holding the registry trust anchor still validates the
    /// NXDOMAINs it now receives.
    pub fn set_stage(&mut self, stage: DecommissionStage) {
        if stage == DecommissionStage::Emptied && self.empty_server.is_none() {
            let primary_ns = self.apex.prepend("ns").expect("registry ns name");
            let mut zone = Zone::new(self.apex.clone(), primary_ns);
            zone.set_negative_ttl(self.span_ttl);
            let published = PublishedZone::signed_with_denial(
                zone,
                &self.keys,
                self.inception,
                self.expiration,
                self.denial,
            );
            self.empty_server = Some(AuthoritativeServer::single(published));
        }
        self.stage = stage;
    }

    /// Schedules a decommission transition at simulated time `at_ns`: the
    /// stage is applied when the first query arrives at or after that
    /// instant. This is how lifecycle timelines script the historical
    /// `dlv.isc.org` wind-down ladder against simulated time instead of
    /// flipping stages between measurement phases by hand.
    pub fn schedule_stage(&mut self, at_ns: u64, stage: DecommissionStage) {
        self.schedule.push((at_ns, stage));
        self.schedule.sort_by_key(|(at, _)| *at);
    }

    /// Applies every scheduled transition whose instant is ≤ `now_ns`.
    fn apply_due(&mut self, now_ns: u64) {
        while let Some(&(at, stage)) = self.schedule.first() {
            if at > now_ns {
                break;
            }
            self.schedule.remove(0);
            self.set_stage(stage);
        }
    }

    /// The current decommission stage.
    pub fn stage(&self) -> DecommissionStage {
        self.stage
    }

    /// The registry apex (e.g. `dlv.isc.org.`).
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Whether owner names are hashed (privacy-preserving mode).
    pub fn is_hashed(&self) -> bool {
        self.hashed
    }

    /// The registry's KSK — what resolvers configure as the DLV trust
    /// anchor.
    pub fn trust_anchor(&self) -> PublicKey {
        self.trust_anchor
    }

    /// Whether `domain` (or an enclosing parent, per the RFC 5074 enclosing
    /// search) has a record deposited. This is the ground truth the Case-1 /
    /// Case-2 leakage classifier uses.
    pub fn covers_domain(&self, domain: &Name) -> bool {
        let mut cur = Some(domain.clone());
        while let Some(name) = cur {
            if name.is_root() {
                break;
            }
            if self.deposited.contains(&name) {
                return true;
            }
            cur = name.parent();
        }
        false
    }

    /// Exact-match deposit check (no enclosing walk).
    pub fn has_deposit(&self, domain: &Name) -> bool {
        self.deposited.contains(domain)
    }

    /// Number of deposited zones.
    pub fn deposit_count(&self) -> usize {
        self.deposited.len()
    }
}

/// Corrupts every RRSIG in the message in place (flips the low bit of the
/// first signature byte) so validation fails while the wire format stays
/// perfectly well-formed.
fn corrupt_rrsigs(message: &mut Message) {
    for record in message
        .answers
        .iter_mut()
        .chain(message.authorities.iter_mut())
        .chain(message.additionals.iter_mut())
    {
        if let RData::Rrsig { signature, .. } = &mut record.rdata {
            if let Some(byte) = signature.first_mut() {
                *byte ^= 0x01;
            }
        }
    }
}

impl DnsHandler for DlvRegistry {
    fn handle(&mut self, query: &Message, now_ns: u64) -> Message {
        self.apply_due(now_ns);
        match self.stage {
            DecommissionStage::Populated => self.server.handle(query, now_ns),
            DecommissionStage::Emptied => self
                .empty_server
                .as_mut()
                .expect("empty zone built at set_stage")
                .handle(query, now_ns),
            DecommissionStage::NxDomainAll => {
                MessageBuilder::respond_to(query).rcode(Rcode::NxDomain).authoritative(true).build()
            }
            // Direct callers cannot observe silence, so Offline degrades
            // to SERVFAIL here; networked callers go through
            // `handle_faulty` and see a real drop.
            DecommissionStage::ServFailAll | DecommissionStage::Offline => {
                MessageBuilder::respond_to(query).rcode(Rcode::ServFail).build()
            }
            DecommissionStage::BogusSignatures => {
                let mut response = self.server.handle(query, now_ns);
                corrupt_rrsigs(&mut response);
                response
            }
        }
    }

    fn handle_faulty(&mut self, query: &Message, now_ns: u64) -> ServerAction {
        self.apply_due(now_ns);
        if self.stage == DecommissionStage::Offline {
            return ServerAction::Drop;
        }
        ServerAction::Respond(self.handle(query, now_ns))
    }
}

impl std::fmt::Debug for DlvRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DlvRegistry")
            .field("apex", &self.apex.to_string())
            .field("deposits", &self.deposited.len())
            .field("hashed", &self.hashed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_crypto::KeyPair;
    use lookaside_wire::{Rcode, RrType};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn registry(hashed: bool) -> DlvRegistry {
        let deposits = vec![
            DlvDeposit { domain: n("island.com"), ksk: KeyPair::generate_ksk(1).public() },
            DlvDeposit { domain: n("reef.net"), ksk: KeyPair::generate_ksk(2).public() },
        ];
        DlvRegistry::new(n("dlv.isc.org"), &deposits, &SigningKeys::from_seed(9), 0, 1000, hashed)
    }

    #[test]
    fn deposited_name_answers_noerror_with_dlv() {
        let mut reg = registry(false);
        let q = Message::dnssec_query(1, n("island.com.dlv.isc.org"), RrType::Dlv);
        let resp = reg.handle(&q, 0);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert_eq!(resp.answers_of(RrType::Dlv).count(), 1);
        assert!(resp.answers_of(RrType::Rrsig).next().is_some());
    }

    #[test]
    fn undeposited_name_is_nxdomain_with_nsec() {
        let mut reg = registry(false);
        let q = Message::dnssec_query(2, n("leaky.com.dlv.isc.org"), RrType::Dlv);
        let resp = reg.handle(&q, 0);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        assert!(resp.authorities_of(RrType::Nsec).next().is_some());
    }

    #[test]
    fn hashed_registry_answers_hashed_names_only() {
        let mut reg = registry(true);
        let plain = Message::dnssec_query(3, n("island.com.dlv.isc.org"), RrType::Dlv);
        assert_eq!(reg.handle(&plain, 0).rcode(), Rcode::NxDomain);
        let label = hashed_dlv_label(&n("island.com"));
        let hashed = Message::dnssec_query(4, n(&format!("{label}.dlv.isc.org")), RrType::Dlv);
        assert_eq!(reg.handle(&hashed, 0).rcode(), Rcode::NoError);
    }

    #[test]
    fn covers_domain_walks_enclosing_names() {
        let reg = registry(false);
        assert!(reg.covers_domain(&n("island.com")));
        assert!(reg.covers_domain(&n("bbs.sub1.island.com")));
        assert!(!reg.covers_domain(&n("com")));
        assert!(!reg.covers_domain(&n("leaky.com")));
        assert!(reg.has_deposit(&n("island.com")));
        assert!(!reg.has_deposit(&n("bbs.sub1.island.com")));
    }

    #[test]
    fn deposit_count() {
        assert_eq!(registry(false).deposit_count(), 2);
    }

    #[test]
    fn emptied_stage_serves_signed_nxdomain_for_former_deposits() {
        let mut reg = registry(false);
        reg.set_stage(DecommissionStage::Emptied);
        let q = Message::dnssec_query(5, n("island.com.dlv.isc.org"), RrType::Dlv);
        let resp = reg.handle(&q, 0);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        assert!(
            resp.authorities_of(RrType::Nsec).next().is_some(),
            "graceful decommission still proves the absence"
        );
        assert!(resp.authorities_of(RrType::Rrsig).next().is_some());
    }

    #[test]
    fn nxdomain_all_stage_denies_without_proof() {
        let mut reg = registry(false);
        reg.set_stage(DecommissionStage::NxDomainAll);
        let q = Message::dnssec_query(6, n("island.com.dlv.isc.org"), RrType::Dlv);
        let resp = reg.handle(&q, 0);
        assert_eq!(resp.rcode(), Rcode::NxDomain);
        assert!(resp.authorities_of(RrType::Nsec).next().is_none(), "blunt denial carries no NSEC");
    }

    #[test]
    fn servfail_and_offline_stages() {
        let mut reg = registry(false);
        reg.set_stage(DecommissionStage::ServFailAll);
        let q = Message::dnssec_query(7, n("island.com.dlv.isc.org"), RrType::Dlv);
        assert_eq!(reg.handle(&q, 0).rcode(), Rcode::ServFail);
        assert!(matches!(reg.handle_faulty(&q, 0), ServerAction::Respond(_)));
        reg.set_stage(DecommissionStage::Offline);
        assert!(matches!(reg.handle_faulty(&q, 0), ServerAction::Drop));
    }

    #[test]
    fn bogus_stage_breaks_signatures_but_not_wire_format() {
        let mut reg = registry(false);
        let q = Message::dnssec_query(8, n("island.com.dlv.isc.org"), RrType::Dlv);
        let good = reg.handle(&q, 0);
        reg.set_stage(DecommissionStage::BogusSignatures);
        let bad = reg.handle(&q, 0);
        assert_eq!(bad.rcode(), Rcode::NoError);
        assert_eq!(bad.answers_of(RrType::Dlv).count(), 1, "data still present");
        let sig = |m: &Message| {
            m.answers_of(RrType::Rrsig)
                .map(|r| match &r.rdata {
                    lookaside_wire::RData::Rrsig { signature, .. } => signature.clone(),
                    _ => unreachable!(),
                })
                .next()
                .unwrap()
        };
        assert_ne!(sig(&good), sig(&bad), "signature bytes were mangled");
        assert!(Message::from_bytes(&bad.to_bytes()).is_ok(), "still well-formed on the wire");
    }

    #[test]
    fn populated_is_the_default_stage() {
        assert_eq!(registry(false).stage(), DecommissionStage::Populated);
    }

    #[test]
    fn scheduled_stages_apply_at_simulated_time() {
        let mut reg = registry(false);
        reg.schedule_stage(1_000_000_000, DecommissionStage::Emptied);
        reg.schedule_stage(2_000_000_000, DecommissionStage::Offline);
        let q = Message::dnssec_query(9, n("island.com.dlv.isc.org"), RrType::Dlv);
        assert_eq!(reg.handle(&q, 0).rcode(), Rcode::NoError);
        assert_eq!(reg.handle(&q, 1_500_000_000).rcode(), Rcode::NxDomain);
        assert_eq!(reg.stage(), DecommissionStage::Emptied);
        // Both remaining transitions fire even if time jumps past them.
        assert!(matches!(reg.handle_faulty(&q, 3_000_000_000), ServerAction::Drop));
        assert_eq!(reg.stage(), DecommissionStage::Offline);
    }
}
