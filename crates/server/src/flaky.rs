//! Failure injection: a server that misbehaves before recovering.
//!
//! The paper's §7.3.2/§8.4 discuss DLV registry outages; this wrapper lets
//! tests and experiments inject exactly that kind of partial failure into
//! any node.

use lookaside_netsim::DnsHandler;
use lookaside_wire::{Message, MessageBuilder, Rcode};

/// Wraps a handler and answers the first `fail_first` queries with a fixed
/// error rcode before delegating to the inner handler.
pub struct FlakyServer {
    inner: Box<dyn DnsHandler>,
    fail_first: usize,
    rcode: Rcode,
    seen: usize,
}

impl FlakyServer {
    /// Fails the first `fail_first` queries with `rcode`, then recovers.
    pub fn new(inner: Box<dyn DnsHandler>, fail_first: usize, rcode: Rcode) -> Self {
        FlakyServer { inner, fail_first, rcode, seen: 0 }
    }

    /// A server that is permanently lame (always `REFUSED`).
    pub fn always_lame(inner: Box<dyn DnsHandler>) -> Self {
        FlakyServer::new(inner, usize::MAX, Rcode::Refused)
    }

    /// Queries observed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }
}

impl DnsHandler for FlakyServer {
    fn handle(&mut self, query: &Message, now_ns: u64) -> Message {
        self.seen += 1;
        if self.seen <= self.fail_first {
            MessageBuilder::respond_to(query).rcode(self.rcode).build()
        } else {
            self.inner.handle(query, now_ns)
        }
    }
}

impl std::fmt::Debug for FlakyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlakyServer")
            .field("fail_first", &self.fail_first)
            .field("rcode", &self.rcode)
            .field("seen", &self.seen)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuthoritativeServer;
    use lookaside_wire::{Name, RData, RrType};
    use lookaside_zone::{PublishedZone, Zone};

    fn inner() -> Box<dyn DnsHandler> {
        let apex = Name::parse("x.test.").unwrap();
        let mut zone = Zone::new(apex.clone(), apex.prepend("ns1").unwrap());
        zone.add(apex, 60, RData::A("192.0.2.1".parse().unwrap()));
        Box::new(AuthoritativeServer::single(PublishedZone::unsigned(zone)))
    }

    #[test]
    fn fails_then_recovers() {
        let mut flaky = FlakyServer::new(inner(), 2, Rcode::ServFail);
        let q = Message::query(1, Name::parse("x.test.").unwrap(), RrType::A);
        assert_eq!(flaky.handle(&q, 0).rcode(), Rcode::ServFail);
        assert_eq!(flaky.handle(&q, 0).rcode(), Rcode::ServFail);
        assert_eq!(flaky.handle(&q, 0).rcode(), Rcode::NoError);
        assert_eq!(flaky.seen(), 3);
    }

    #[test]
    fn always_lame_never_recovers() {
        let mut flaky = FlakyServer::always_lame(inner());
        let q = Message::query(1, Name::parse("x.test.").unwrap(), RrType::A);
        for _ in 0..10 {
            assert_eq!(flaky.handle(&q, 0).rcode(), Rcode::Refused);
        }
    }
}
