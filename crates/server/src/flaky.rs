//! Failure injection: servers that misbehave before (or instead of)
//! recovering.
//!
//! The paper's §7.3.2/§8.4 discuss DLV registry outages; this wrapper lets
//! tests and experiments inject exactly that kind of partial failure into
//! any node. [`FaultyServer`] composes several behaviours — answering with
//! an error rcode, dropping the query outright (the resolver times out),
//! delaying or truncating responses, and seeded probabilistic variants of
//! each — on top of any inner [`DnsHandler`]. [`FlakyServer`] is the
//! original rcode-only wrapper, kept as an alias.
//!
//! All probabilistic schedules are pure functions of `(seed, query count)`,
//! so two runs with the same seed misbehave identically.

use lookaside_netsim::{DnsHandler, ServerAction, Transport};
use lookaside_wire::{Message, MessageBuilder, Rcode};

/// The original failure wrapper: answers the first `fail_first` queries
/// with a fixed error rcode before delegating to the inner handler. Now an
/// alias for [`FaultyServer`], which generalises it.
pub type FlakyServer = FaultyServer;

/// Wraps a handler and injects configurable faults into its responses.
///
/// Deterministic behaviours (`fail_first`, `drop_first`) act on the first
/// N queries; probabilistic ones (`fail_milli`, `drop_milli`,
/// `truncate_milli`) roll a seeded die per query. Dropped queries still
/// count toward [`FaultyServer::seen`] — the server received them, it just
/// never answered.
pub struct FaultyServer {
    inner: Box<dyn DnsHandler>,
    seed: u64,
    fail_first: usize,
    fail_rcode: Rcode,
    drop_first: usize,
    fail_milli: u16,
    drop_milli: u16,
    truncate_milli: u16,
    delay_ns: u64,
    seen: usize,
}

impl FaultyServer {
    /// A fault-free wrapper around `inner` (configure with the `with_*`
    /// builders).
    pub fn wrap(inner: Box<dyn DnsHandler>) -> Self {
        FaultyServer {
            inner,
            seed: 0,
            fail_first: 0,
            fail_rcode: Rcode::ServFail,
            drop_first: 0,
            fail_milli: 0,
            drop_milli: 0,
            truncate_milli: 0,
            delay_ns: 0,
            seen: 0,
        }
    }

    /// Fails the first `fail_first` queries with `rcode`, then recovers —
    /// the original `FlakyServer` constructor.
    pub fn new(inner: Box<dyn DnsHandler>, fail_first: usize, rcode: Rcode) -> Self {
        FaultyServer::wrap(inner).with_fail_first(fail_first, rcode)
    }

    /// A server that is permanently lame (always `REFUSED`).
    pub fn always_lame(inner: Box<dyn DnsHandler>) -> Self {
        FaultyServer::new(inner, usize::MAX, Rcode::Refused)
    }

    /// Seeds the probabilistic schedules (defaults to 0).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Answers the first `n` queries with `rcode` instead of resolving.
    #[must_use]
    pub fn with_fail_first(mut self, n: usize, rcode: Rcode) -> Self {
        self.fail_first = n;
        self.fail_rcode = rcode;
        self
    }

    /// Drops the first `n` queries (no response; the resolver times out).
    #[must_use]
    pub fn with_drop_first(mut self, n: usize) -> Self {
        self.drop_first = n;
        self
    }

    /// Answers with `rcode` with probability `milli`/1000 per query.
    #[must_use]
    pub fn with_fail_milli(mut self, milli: u16, rcode: Rcode) -> Self {
        self.fail_milli = milli.min(1000);
        self.fail_rcode = rcode;
        self
    }

    /// Drops each query with probability `milli`/1000.
    #[must_use]
    pub fn with_drop_milli(mut self, milli: u16) -> Self {
        self.drop_milli = milli.min(1000);
        self
    }

    /// Truncates each UDP response with probability `milli`/1000: the TC
    /// bit is set and the answer/authority/additional sections are clipped
    /// (RFC 1035 §4.1.1 — a truncated response carries no usable partial
    /// data here), forcing the resolver to retry over TCP. The TCP leg of
    /// the retry is never truncated.
    #[must_use]
    pub fn with_truncate_milli(mut self, milli: u16) -> Self {
        self.truncate_milli = milli.min(1000);
        self
    }

    /// Adds fixed server-side processing delay to every response.
    #[must_use]
    pub fn with_delay_ms(mut self, ms: u64) -> Self {
        self.delay_ns = ms * 1_000_000;
        self
    }

    /// Queries observed so far, including dropped ones.
    pub fn seen(&self) -> usize {
        self.seen
    }

    fn roll(&self, channel: u64) -> u64 {
        splitmix64(
            self.seed
                ^ (self.seen as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ channel.wrapping_mul(0xbf58_476d_1ce4_e5b9),
        )
    }

    fn decide(&mut self, query: &Message, now_ns: u64, transport: Transport) -> ServerAction {
        self.seen += 1;
        if self.seen <= self.drop_first {
            return ServerAction::Drop;
        }
        if self.drop_milli > 0 && self.roll(1) % 1000 < u64::from(self.drop_milli) {
            return ServerAction::Drop;
        }
        let mut response = if self.seen <= self.fail_first
            || (self.fail_milli > 0 && self.roll(2) % 1000 < u64::from(self.fail_milli))
        {
            MessageBuilder::respond_to(query).rcode(self.fail_rcode).build()
        } else {
            self.inner.handle(query, now_ns)
        };
        // Truncation is a datagram phenomenon: the TCP retry the TC bit
        // provokes must see the full answer, or the resolver would loop.
        if transport == Transport::Udp
            && self.truncate_milli > 0
            && self.roll(3) % 1000 < u64::from(self.truncate_milli)
        {
            response.header.flags.tc = true;
            response.answers.clear();
            response.authorities.clear();
            response.additionals.clear();
        }
        if self.delay_ns > 0 {
            ServerAction::DelayedRespond { response, extra_ns: self.delay_ns }
        } else {
            ServerAction::Respond(response)
        }
    }
}

impl DnsHandler for FaultyServer {
    fn handle(&mut self, query: &Message, now_ns: u64) -> Message {
        match self.decide(query, now_ns, Transport::Udp) {
            ServerAction::Respond(m) | ServerAction::DelayedRespond { response: m, .. } => m,
            // Direct callers can't observe silence; a drop surfaces as
            // SERVFAIL. Networked callers go through `handle_transport`.
            ServerAction::Drop => MessageBuilder::respond_to(query).rcode(Rcode::ServFail).build(),
        }
    }

    fn handle_faulty(&mut self, query: &Message, now_ns: u64) -> ServerAction {
        self.decide(query, now_ns, Transport::Udp)
    }

    fn handle_transport(
        &mut self,
        query: &Message,
        now_ns: u64,
        transport: Transport,
    ) -> ServerAction {
        self.decide(query, now_ns, transport)
    }
}

impl std::fmt::Debug for FaultyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyServer")
            .field("fail_first", &self.fail_first)
            .field("fail_rcode", &self.fail_rcode)
            .field("drop_first", &self.drop_first)
            .field("fail_milli", &self.fail_milli)
            .field("drop_milli", &self.drop_milli)
            .field("truncate_milli", &self.truncate_milli)
            .field("delay_ns", &self.delay_ns)
            .field("seen", &self.seen)
            .finish_non_exhaustive()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuthoritativeServer;
    use lookaside_wire::{Name, RData, RrType};
    use lookaside_zone::{PublishedZone, Zone};

    fn inner() -> Box<dyn DnsHandler> {
        let apex = Name::parse("x.test.").unwrap();
        let mut zone = Zone::new(apex.clone(), apex.prepend("ns1").unwrap());
        zone.add(apex, 60, RData::A("192.0.2.1".parse().unwrap()));
        Box::new(AuthoritativeServer::single(PublishedZone::unsigned(zone)))
    }

    fn q() -> Message {
        Message::query(1, Name::parse("x.test.").unwrap(), RrType::A)
    }

    #[test]
    fn fails_then_recovers() {
        let mut flaky = FlakyServer::new(inner(), 2, Rcode::ServFail);
        assert_eq!(flaky.handle(&q(), 0).rcode(), Rcode::ServFail);
        assert_eq!(flaky.handle(&q(), 0).rcode(), Rcode::ServFail);
        assert_eq!(flaky.handle(&q(), 0).rcode(), Rcode::NoError);
        assert_eq!(flaky.seen(), 3);
    }

    #[test]
    fn always_lame_never_recovers() {
        let mut flaky = FlakyServer::always_lame(inner());
        for _ in 0..10 {
            assert_eq!(flaky.handle(&q(), 0).rcode(), Rcode::Refused);
        }
    }

    #[test]
    fn dropped_queries_still_count_as_seen() {
        let mut faulty = FaultyServer::wrap(inner()).with_drop_first(2);
        assert!(matches!(faulty.handle_faulty(&q(), 0), ServerAction::Drop));
        assert!(matches!(faulty.handle_faulty(&q(), 0), ServerAction::Drop));
        assert!(matches!(faulty.handle_faulty(&q(), 0), ServerAction::Respond(_)));
        assert_eq!(faulty.seen(), 3);
    }

    #[test]
    fn probabilistic_drop_is_seeded_and_roughly_calibrated() {
        let run = |seed: u64| {
            let mut faulty = FaultyServer::wrap(inner()).with_seed(seed).with_drop_milli(300);
            (0..1000)
                .map(|_| matches!(faulty.handle_faulty(&q(), 0), ServerAction::Drop))
                .collect::<Vec<_>>()
        };
        let a = run(5);
        assert_eq!(a, run(5), "same seed must reproduce the same schedule");
        assert_ne!(a, run(6), "different seeds must differ");
        let dropped = a.iter().filter(|&&d| d).count();
        assert!((200..400).contains(&dropped), "expected ~300 drops, got {dropped}");
    }

    #[test]
    fn truncation_clips_udp_but_never_tcp() {
        let mut faulty = FaultyServer::wrap(inner()).with_truncate_milli(1000);
        match faulty.handle_transport(&q(), 0, Transport::Udp) {
            ServerAction::Respond(m) => {
                assert!(m.header.flags.tc, "TC bit set on truncated UDP response");
                assert!(m.answers.is_empty(), "truncated response carries no answers");
            }
            other => panic!("expected truncated response, got {other:?}"),
        }
        match faulty.handle_transport(&q(), 0, Transport::Tcp) {
            ServerAction::Respond(m) => {
                assert!(!m.header.flags.tc, "TCP retry is never truncated");
                assert!(!m.answers.is_empty(), "TCP retry carries the full answer");
            }
            other => panic!("expected full TCP response, got {other:?}"),
        }
    }

    #[test]
    fn delay_wraps_response() {
        let mut faulty = FaultyServer::wrap(inner()).with_delay_ms(40);
        match faulty.handle_faulty(&q(), 0) {
            ServerAction::DelayedRespond { response, extra_ns } => {
                assert_eq!(response.rcode(), Rcode::NoError);
                assert_eq!(extra_ns, 40_000_000);
            }
            other => panic!("expected delayed response, got {other:?}"),
        }
    }

    #[test]
    fn drop_surfaces_as_servfail_when_called_directly() {
        let mut faulty = FaultyServer::wrap(inner()).with_drop_first(1);
        assert_eq!(faulty.handle(&q(), 0).rcode(), Rcode::ServFail);
    }
}
