//! Low-level wire encoding and decoding.
//!
//! [`Writer`] implements RFC 1035 §4.1.4 name compression so the simulator's
//! traffic-volume measurements (Table 5, Figs. 10–12 of the paper) use
//! realistic message sizes; [`Reader`] follows compression pointers with loop
//! protection.
//!
//! Both directions ride the compact [`Name`] representation: the writer
//! probes its compression map with borrowed byte-suffix slices of the name's
//! contiguous wire bytes (no per-tail `Name` or key allocation — the map
//! only allocates when a *new* suffix is recorded), and the reader assembles
//! labels on a stack [`NameBuilder`], so decoding a short name touches the
//! heap zero times.

// lint:allow-file(panic::slice-index) -- every Reader slice is preceded by an explicit bounds check (take/seek/read_bytes validate offsets before slicing); the 10k fixed-seed corruption fuzz gate in ci.sh proves panic-freedom on arbitrary input bytes

use std::collections::HashMap;

use crate::name::{label_offsets, NameBuilder, MAX_LABELS, MAX_NAME_LEN};
use crate::{Name, WireError};

/// An appending wire-format writer with name compression.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    /// Maps a name tail's wire label bytes (length-prefixed, lower-cased, no
    /// root byte) to the message offset where that tail was first written.
    /// Offsets beyond 0x3fff are not recorded because pointers cannot reach
    /// them. Probed with borrowed slices; keys are only allocated on first
    /// sight of a suffix.
    names: HashMap<Vec<u8>, u16>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Octets written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Clears the buffer and the compression map, keeping both allocations
    /// — the reset that lets one writer render many messages (see
    /// [`crate::RenderArena`]).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.names.clear();
    }

    /// Appends one octet.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Reserves a `u16` slot (e.g. for RDLENGTH) and returns its offset for a
    /// later [`Writer::patch_u16`].
    pub fn reserve_u16(&mut self) -> usize {
        let pos = self.buf.len();
        self.buf.extend_from_slice(&[0, 0]);
        pos
    }

    /// Patches a previously reserved `u16` slot.
    ///
    /// # Panics
    ///
    /// Panics if `pos` was not obtained from [`Writer::reserve_u16`] on this
    /// writer (out of bounds).
    pub fn patch_u16(&mut self, pos: usize, v: u16) {
        self.buf[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Writes a name with compression against previously written names.
    ///
    /// Finds the longest previously written tail (scanning from the full
    /// name down), emits any unmatched leading labels followed by a pointer,
    /// and records the offsets of newly emitted tails for later repeats.
    pub fn write_name(&mut self, name: &Name) {
        let bytes = name.wire_labels();
        let mut offs = [0u8; MAX_LABELS];
        let n = label_offsets(bytes, &mut offs);
        for i in 0..n {
            let tail = &bytes[offs[i] as usize..];
            if let Some(&pointer) = self.names.get(tail) {
                // Emit the labels before the match, then a pointer.
                let prefix = &bytes[..offs[i] as usize];
                self.buf.extend_from_slice(prefix);
                self.write_u16(0xc000 | pointer);
                // Record the freshly emitted tails too so later repeats
                // compress fully.
                let base = self.buf.len() - 2 - prefix.len();
                self.record_tails(bytes, &offs[..i], base);
                return;
            }
        }
        // No suffix matched: write uncompressed and remember all suffixes.
        let base = self.buf.len();
        self.buf.extend_from_slice(bytes);
        self.buf.push(0);
        self.record_tails(bytes, &offs[..n], base);
    }

    /// Writes a name without compression and without recording it (canonical
    /// form for RDATA and signature input).
    pub fn write_name_uncompressed(&mut self, name: &Name) {
        name.encode_uncompressed(&mut self.buf);
    }

    /// Records the message offset of each tail of `bytes` starting at the
    /// given label offsets, where the byte at `offs[i]` sits at message
    /// offset `base + offs[i]`. First sighting wins.
    fn record_tails(&mut self, bytes: &[u8], offs: &[u8], base: usize) {
        for &off in offs {
            let at = base + off as usize;
            if at <= 0x3fff {
                let tail = &bytes[off as usize..];
                if !self.names.contains_key(tail) {
                    self.names.insert(tail.to_vec(), at as u16);
                }
            }
        }
    }
}

/// A bounds-checked wire-format reader that follows compression pointers.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over a whole message buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Moves the read offset.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if `pos` is past the end.
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.buf.len() {
            return Err(WireError::Truncated { context: "seek" });
        }
        self.pos = pos;
        Ok(())
    }

    /// Octets remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one octet.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of buffer.
    pub fn read_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated { context })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of buffer.
    pub fn read_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let bytes = self.read_bytes(2, context)?;
        Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] at end of buffer.
    pub fn read_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let bytes = self.read_bytes(4, context)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads exactly `n` octets.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer remain.
    pub fn read_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a (possibly compressed) name.
    ///
    /// # Errors
    ///
    /// Fails on truncation, forward pointers, pointer loops, and over-long
    /// names.
    pub fn read_name(&mut self) -> Result<Name, WireError> {
        let mut builder = NameBuilder::new();
        let mut jumped = false;
        let mut jump_count = 0usize;
        let mut cursor = self.pos;
        loop {
            let len = *self.buf.get(cursor).ok_or(WireError::Truncated { context: "name" })?;
            match len {
                0 => {
                    cursor += 1;
                    if !jumped {
                        self.pos = cursor;
                    }
                    return Ok(builder.finish());
                }
                l if l & 0xc0 == 0xc0 => {
                    let second = *self
                        .buf
                        .get(cursor + 1)
                        .ok_or(WireError::Truncated { context: "name pointer" })?;
                    let target = (((l & 0x3f) as usize) << 8) | second as usize;
                    if target >= cursor {
                        return Err(WireError::BadPointer(target));
                    }
                    jump_count += 1;
                    if jump_count > 64 {
                        // Each jump must point strictly backwards, so a
                        // 64-jump chain in a 64 KiB message is already
                        // adversarial; bail with a loop diagnosis rather
                        // than walking the chain to exhaustion.
                        return Err(WireError::CompressionLoop { jumps: jump_count });
                    }
                    if !jumped {
                        self.pos = cursor + 2;
                        jumped = true;
                    }
                    cursor = target;
                }
                l if l & 0xc0 != 0 => {
                    return Err(WireError::UnsupportedValue {
                        field: "label type",
                        value: (l >> 6) as u32,
                    });
                }
                l => {
                    let l = l as usize;
                    let start = cursor + 1;
                    let bytes = self
                        .buf
                        .get(start..start + l)
                        .ok_or(WireError::Truncated { context: "label" })?;
                    if builder.wire_len() + l + 1 > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(builder.wire_len() + l + 1));
                    }
                    builder.push_label(bytes)?;
                    cursor = start + l;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn writer_compresses_repeated_names() {
        let mut w = Writer::new();
        w.write_name(&n("www.example.com"));
        let first = w.len();
        w.write_name(&n("www.example.com"));
        let second = w.len() - first;
        assert_eq!(second, 2, "exact repeat should be a single pointer");

        let mut w2 = Writer::new();
        w2.write_name(&n("www.example.com"));
        let before = w2.len();
        w2.write_name(&n("mail.example.com"));
        // "mail" label (5) + pointer (2).
        assert_eq!(w2.len() - before, 5 + 2);
    }

    #[test]
    fn reader_decodes_compressed_names() {
        let mut w = Writer::new();
        w.write_name(&n("www.example.com"));
        w.write_name(&n("mail.example.com"));
        w.write_name(&n("example.com"));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_name().unwrap(), n("www.example.com"));
        assert_eq!(r.read_name().unwrap(), n("mail.example.com"));
        assert_eq!(r.read_name().unwrap(), n("example.com"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn pointer_loop_is_rejected() {
        // A name that is a pointer to itself.
        let buf = [0xc0, 0x00];
        let mut r = Reader::new(&buf);
        assert!(r.read_name().is_err());
    }

    #[test]
    fn deep_pointer_chain_is_a_compression_loop() {
        // 70 pointers, each legally pointing strictly backwards: the
        // forward-pointer check cannot catch this, the jump bound must.
        let mut buf = vec![0u8];
        let mut prev = 0u16;
        for _ in 0..70 {
            let here = buf.len() as u16;
            buf.push(0xc0 | (prev >> 8) as u8);
            buf.push((prev & 0xff) as u8);
            prev = here;
        }
        let mut r = Reader::new(&buf);
        r.seek(prev as usize).unwrap();
        assert!(matches!(r.read_name(), Err(WireError::CompressionLoop { .. })));
    }

    #[test]
    fn forward_pointer_is_rejected() {
        let buf = [0xc0, 0x04, 0, 0, 1, b'a', 0];
        let mut r = Reader::new(&buf);
        assert!(r.read_name().is_err());
    }

    #[test]
    fn root_name_round_trips() {
        let mut w = Writer::new();
        w.write_name(&Name::root());
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0]);
        assert!(Reader::new(&bytes).read_name().unwrap().is_root());
    }

    #[test]
    fn truncated_label_is_error() {
        let buf = [5, b'a', b'b'];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.read_name(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn reserve_and_patch() {
        let mut w = Writer::new();
        let slot = w.reserve_u16();
        w.write_bytes(&[1, 2, 3]);
        w.patch_u16(slot, 3);
        assert_eq!(w.into_bytes(), vec![0, 3, 1, 2, 3]);
    }

    #[test]
    fn reader_primitives() {
        let buf = [0xde, 0xad, 0xbe, 0xef, 0x01];
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_u32("x").unwrap(), 0xdead_beef);
        assert_eq!(r.read_u8("y").unwrap(), 1);
        assert!(r.read_u8("z").is_err());
    }

    #[test]
    fn uncompressed_names_are_not_compression_targets() {
        let mut w = Writer::new();
        w.write_name_uncompressed(&n("example.com"));
        let before = w.len();
        w.write_name(&n("example.com"));
        // Must be written in full (13 bytes), not as a pointer.
        assert_eq!(w.len() - before, n("example.com").wire_len());
    }

    #[test]
    fn partial_match_records_new_tails() {
        // After writing a.b.c and then x.b.c (which compresses to the b.c
        // tail), a later x.b.c repeat must compress to a single pointer.
        let mut w = Writer::new();
        w.write_name(&n("a.b.c"));
        w.write_name(&n("x.b.c"));
        let before = w.len();
        w.write_name(&n("x.b.c"));
        assert_eq!(w.len() - before, 2);
    }

    #[test]
    fn mixed_case_names_compress_together() {
        let mut w = Writer::new();
        w.write_name(&n("WWW.Example.COM"));
        let before = w.len();
        w.write_name(&n("www.example.com"));
        assert_eq!(w.len() - before, 2);
    }
}
