//! DNS data model and wire codec for the DLV privacy-leakage study.
//!
//! This crate implements the protocol substrate that every other crate in the
//! workspace builds on:
//!
//! * [`Name`] — domain names with RFC 4034 §6.1 canonical ordering (the order
//!   NSEC chains are built in, and therefore the order that drives the
//!   aggressive-negative-caching behaviour the paper measures),
//! * [`RrType`] — including the DLV type (32769) from RFC 4431,
//! * [`Header`] and [`Flags`] — including the `DO`, `AD`, `CD` bits and the
//!   spare `Z` bit that §6.2.1 of the paper proposes as a remedy signal,
//! * [`RData`] / [`Record`] / [`RrSet`] — typed record data,
//! * [`Message`] — full DNS messages with a builder,
//! * [`codec`] — a complete wire-format encoder/decoder with name
//!   compression, used by the network simulator so that traffic-volume
//!   measurements (Table 5, Figs. 10–12) reflect true RFC 1035 byte counts.
//!
//! # Example
//!
//! ```
//! use lookaside_wire::{Message, Name, RrType};
//!
//! let q = Message::query(1, Name::parse("example.com.")?, RrType::A);
//! let bytes = q.to_bytes();
//! let back = Message::from_bytes(&bytes)?;
//! assert_eq!(back.question().unwrap().name, Name::parse("example.com.")?);
//! # Ok::<(), lookaside_wire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod error;
mod header;
mod message;
mod name;
mod rdata;
mod record;
mod rrtype;

pub mod codec;
pub mod ext;

pub use arena::{RenderArena, Scratch};
pub use error::WireError;
pub use header::{Flags, Header, Opcode, Rcode};
pub use message::{Message, MessageBuilder, Question, Section};
pub use name::{Label, LabelRef, Labels, Name, NameBuilder, NameRef, NameTable};
pub use rdata::{RData, SoaData};
pub use record::{Record, RrSet};
pub use rrtype::{RrClass, RrType, TypeBitmap};

/// The DNS class used throughout the study (`IN`).
pub const CLASS_IN: RrClass = RrClass::In;
