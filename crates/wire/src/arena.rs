// lint:stream-hot-path
//! Reusable message-rendering arena — the wholesale-reset allocator of the
//! streaming hot path.
//!
//! `Message::wire_len` renders into a fresh buffer every call, which is
//! three heap allocations per simulated exchange (query size, truncation
//! check, response size). A [`RenderArena`] owns one [`Writer`] — output
//! buffer plus name-compression map — and resets it wholesale between
//! renders: the buffer keeps its capacity, the compression map keeps its
//! buckets, and steady-state rendering stops growing the heap once the
//! largest message has been seen.
//!
//! This module is tagged as streaming steady-state: `measure` runs several
//! times per exchange for tens of millions of exchanges.

use crate::codec::Writer;
use crate::Message;

/// A reusable rendering buffer with wholesale reset and occupancy stats.
#[derive(Debug, Default)]
pub struct RenderArena {
    w: Writer,
    renders: u64,
    high_water: usize,
}

impl RenderArena {
    /// A fresh arena (first renders grow it to the workload's high-water
    /// mark, after which rendering is allocation-steady).
    pub fn new() -> Self {
        RenderArena::default()
    }

    /// Renders `message` into the arena and returns its wire length —
    /// exactly `message.to_bytes().len()`, without the fresh allocation.
    /// The rendered bytes stay available via [`RenderArena::rendered`]
    /// until the next call.
    pub fn measure(&mut self, message: &Message) -> usize {
        self.w.reset();
        message.render_with(&mut self.w);
        self.renders += 1;
        let len = self.w.len();
        self.high_water = self.high_water.max(len);
        len
    }

    /// The bytes of the most recent [`RenderArena::measure`] call.
    pub fn rendered(&self) -> &[u8] {
        self.w.as_bytes()
    }

    /// Messages rendered since construction.
    pub fn renders(&self) -> u64 {
        self.renders
    }

    /// Largest message rendered so far, in octets — the arena's resident
    /// footprint is this plus the compression map.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// A recycling pool of cleared `Vec<T>` scratch buffers.
///
/// The streaming steady state hands short-lived `Vec`s across API
/// boundaries (a cache hit's RRset list, for instance). Allocating a fresh
/// `Vec` per query is exactly the churn [`RenderArena`] retires for message
/// rendering; `Scratch` does the same for those vectors: [`Scratch::take`]
/// pops a previously [`Scratch::give`]n buffer — empty but with its
/// capacity intact — so once the workload's high-water shapes have been
/// seen, the take/give cycle stops touching the heap.
///
/// The pool is bounded ([`Scratch::POOL_CAP`]): buffers given back beyond
/// the cap are simply dropped, so a burst of cold-path vectors cannot pin
/// memory forever.
#[derive(Debug)]
pub struct Scratch<T> {
    pool: Vec<Vec<T>>,
    takes: u64,
    misses: u64,
}

impl<T> Default for Scratch<T> {
    fn default() -> Self {
        Scratch { pool: Vec::with_capacity(Self::POOL_CAP), takes: 0, misses: 0 }
    }
}

impl<T> Scratch<T> {
    /// Most buffers retained at once; `give` drops the excess.
    pub const POOL_CAP: usize = 4;

    /// An empty pool (first takes miss and allocate; steady state reuses).
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Takes an empty buffer, reusing the capacity of a previously
    /// returned one when available.
    pub fn take(&mut self) -> Vec<T> {
        self.takes += 1;
        self.pool.pop().unwrap_or_else(|| {
            self.misses += 1;
            Vec::with_capacity(0)
        })
    }

    /// Returns a buffer to the pool for reuse. The buffer is cleared here;
    /// if the pool is already at [`Scratch::POOL_CAP`], it is dropped.
    pub fn give(&mut self, mut buf: Vec<T>) {
        if self.pool.len() < Self::POOL_CAP {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Buffers handed out since construction.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// Takes that found the pool empty and had to allocate. In a warmed
    /// steady state this stops growing.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, Name, RrType};

    #[test]
    fn measure_matches_to_bytes_for_reused_arena() {
        let mut arena = RenderArena::new();
        let names = ["example.com.", "a.example.com.", "very.long.subdomain.example.org."];
        for (i, n) in names.iter().enumerate() {
            let q = Message::dnssec_query(i as u16 + 1, Name::parse(n).unwrap(), RrType::A);
            let fresh = q.to_bytes();
            assert_eq!(arena.measure(&q), fresh.len(), "{n}");
            assert_eq!(arena.rendered(), &fresh[..], "{n}");
        }
        assert_eq!(arena.renders(), 3);
        assert!(arena.high_water() >= 12);
    }

    #[test]
    fn scratch_recycles_capacity_and_bounds_the_pool() {
        let mut scratch: Scratch<u64> = Scratch::new();
        let mut v = scratch.take();
        assert_eq!(scratch.misses(), 1);
        v.extend(0..100);
        let cap = v.capacity();
        scratch.give(v);
        let v = scratch.take();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap, "give/take must preserve capacity");
        assert_eq!(scratch.misses(), 1, "second take must hit the pool");
        assert_eq!(scratch.takes(), 2);
        scratch.give(v);
        // The pool refuses to hoard: beyond POOL_CAP, buffers are dropped.
        for _ in 0..(Scratch::<u64>::POOL_CAP * 2) {
            scratch.give(Vec::with_capacity(8));
        }
        let drained = std::iter::from_fn(|| {
            let b = scratch.take();
            b.capacity().gt(&0).then_some(b)
        })
        .count();
        assert!(drained <= Scratch::<u64>::POOL_CAP);
    }

    #[test]
    fn compression_state_does_not_leak_between_renders() {
        let mut arena = RenderArena::new();
        let q = Message::query(7, Name::parse("repeat.example.net.").unwrap(), RrType::Ns);
        let first = arena.measure(&q);
        // A second render of the same message must not find stale
        // compression targets from the first one.
        assert_eq!(arena.measure(&q), first);
        assert_eq!(arena.rendered(), &q.to_bytes()[..]);
    }
}
