// lint:stream-hot-path
//! Reusable message-rendering arena — the wholesale-reset allocator of the
//! streaming hot path.
//!
//! `Message::wire_len` renders into a fresh buffer every call, which is
//! three heap allocations per simulated exchange (query size, truncation
//! check, response size). A [`RenderArena`] owns one [`Writer`] — output
//! buffer plus name-compression map — and resets it wholesale between
//! renders: the buffer keeps its capacity, the compression map keeps its
//! buckets, and steady-state rendering stops growing the heap once the
//! largest message has been seen.
//!
//! This module is tagged as streaming steady-state: `measure` runs several
//! times per exchange for tens of millions of exchanges.

use crate::codec::Writer;
use crate::Message;

/// A reusable rendering buffer with wholesale reset and occupancy stats.
#[derive(Debug, Default)]
pub struct RenderArena {
    w: Writer,
    renders: u64,
    high_water: usize,
}

impl RenderArena {
    /// A fresh arena (first renders grow it to the workload's high-water
    /// mark, after which rendering is allocation-steady).
    pub fn new() -> Self {
        RenderArena::default()
    }

    /// Renders `message` into the arena and returns its wire length —
    /// exactly `message.to_bytes().len()`, without the fresh allocation.
    /// The rendered bytes stay available via [`RenderArena::rendered`]
    /// until the next call.
    pub fn measure(&mut self, message: &Message) -> usize {
        self.w.reset();
        message.render_with(&mut self.w);
        self.renders += 1;
        let len = self.w.len();
        self.high_water = self.high_water.max(len);
        len
    }

    /// The bytes of the most recent [`RenderArena::measure`] call.
    pub fn rendered(&self) -> &[u8] {
        self.w.as_bytes()
    }

    /// Messages rendered since construction.
    pub fn renders(&self) -> u64 {
        self.renders
    }

    /// Largest message rendered so far, in octets — the arena's resident
    /// footprint is this plus the compression map.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, Name, RrType};

    #[test]
    fn measure_matches_to_bytes_for_reused_arena() {
        let mut arena = RenderArena::new();
        let names = ["example.com.", "a.example.com.", "very.long.subdomain.example.org."];
        for (i, n) in names.iter().enumerate() {
            let q = Message::dnssec_query(i as u16 + 1, Name::parse(n).unwrap(), RrType::A);
            let fresh = q.to_bytes();
            assert_eq!(arena.measure(&q), fresh.len(), "{n}");
            assert_eq!(arena.rendered(), &fresh[..], "{n}");
        }
        assert_eq!(arena.renders(), 3);
        assert!(arena.high_water() >= 12);
    }

    #[test]
    fn compression_state_does_not_leak_between_renders() {
        let mut arena = RenderArena::new();
        let q = Message::query(7, Name::parse("repeat.example.net.").unwrap(), RrType::Ns);
        let first = arena.measure(&q);
        // A second render of the same message must not find stale
        // compression targets from the first one.
        assert_eq!(arena.measure(&q), first);
        assert_eq!(arena.rendered(), &q.to_bytes()[..]);
    }
}
