// lint:allow-file(panic::slice-index) -- rdata slices come from Reader::read_bytes, which errors on short input before the slice is formed; fuzz-backed by the ci.sh corruption gate

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use crate::codec::{Reader, Writer};
use crate::{Name, RrType, TypeBitmap, WireError};

/// SOA record data (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SoaData {
    /// Primary name server.
    pub mname: Name,
    /// Responsible mailbox, encoded as a name.
    pub rname: Name,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expire interval, seconds.
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308) — bounds how long the aggressive
    /// negative cache may reuse NSEC proofs.
    pub minimum: u32,
}

/// Typed resource-record data.
///
/// `Ds` and `Dlv` share the same layout (RFC 4431 defines DLV RDATA as
/// identical to DS), which is why both carry the same fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Authoritative name server.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Reverse pointer.
    Ptr(Name),
    /// Start of authority.
    Soa(SoaData),
    /// Mail exchanger.
    Mx {
        /// Preference value; lower is preferred.
        preference: u16,
        /// Exchange host.
        exchange: Name,
    },
    /// Text strings. Carries the `dlv=1` / `dlv=0` remedy signal (§6.2.1).
    Txt(Vec<String>),
    /// DNSSEC public key.
    Dnskey {
        /// Flags; bit 0x0100 = zone key, 0x0001 = SEP (KSK).
        flags: u16,
        /// Always 3 for DNSSEC.
        protocol: u8,
        /// Algorithm number.
        algorithm: u8,
        /// Public key material.
        public_key: Vec<u8>,
    },
    /// Delegation signer.
    Ds {
        /// Tag of the key this digest commits to.
        key_tag: u16,
        /// Algorithm of that key.
        algorithm: u8,
        /// Digest algorithm identifier.
        digest_type: u8,
        /// Digest of owner name + DNSKEY RDATA.
        digest: Vec<u8>,
    },
    /// DNSSEC look-aside validation record: DS-shaped, published in a DLV
    /// registry instead of the parent zone (RFC 4431).
    Dlv {
        /// Tag of the key this digest commits to.
        key_tag: u16,
        /// Algorithm of that key.
        algorithm: u8,
        /// Digest algorithm identifier.
        digest_type: u8,
        /// Digest of owner name + DNSKEY RDATA.
        digest: Vec<u8>,
    },
    /// Signature over an RRset (RFC 4034 §3).
    Rrsig {
        /// Type of the covered RRset.
        type_covered: RrType,
        /// Signing algorithm.
        algorithm: u8,
        /// Label count of the owner name.
        labels: u8,
        /// Original TTL of the covered RRset.
        original_ttl: u32,
        /// Expiration time, seconds.
        expiration: u32,
        /// Inception time, seconds.
        inception: u32,
        /// Tag of the signing key.
        key_tag: u16,
        /// Name of the signing zone.
        signer_name: Name,
        /// Signature bytes.
        signature: Vec<u8>,
    },
    /// Authenticated denial of existence (RFC 4034 §4).
    Nsec {
        /// Next owner name in canonical order.
        next_name: Name,
        /// Types present at this owner name.
        types: TypeBitmap,
    },
    /// Hashed authenticated denial of existence (RFC 5155). §7.3 of the
    /// paper discusses the DLV trade-off: NSEC3 resists zone enumeration
    /// but forfeits aggressive negative caching, so every query hits the
    /// DLV server.
    Nsec3 {
        /// Hash algorithm identifier (1 = SHA-1 in the RFC; this simulator
        /// computes a truncated SHA-256 and keeps the identifier).
        hash_algorithm: u8,
        /// Flags (opt-out etc.).
        flags: u8,
        /// Extra hash iterations.
        iterations: u16,
        /// Hash salt.
        salt: Vec<u8>,
        /// Hash of the next owner in hash order.
        next_hashed: Vec<u8>,
        /// Types present at the (unhashed) owner name.
        types: TypeBitmap,
    },
    /// Uninterpreted RDATA for types the simulator does not model.
    Unknown(Vec<u8>),
}

impl RData {
    /// The record type this data corresponds to.
    ///
    /// `Unknown` data has no intrinsic type; the surrounding [`crate::Record`]
    /// carries it.
    pub fn rrtype(&self) -> Option<RrType> {
        Some(match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Ptr(_) => RrType::Ptr,
            RData::Soa(_) => RrType::Soa,
            RData::Mx { .. } => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Dnskey { .. } => RrType::Dnskey,
            RData::Ds { .. } => RrType::Ds,
            RData::Dlv { .. } => RrType::Dlv,
            RData::Rrsig { .. } => RrType::Rrsig,
            RData::Nsec { .. } => RrType::Nsec,
            RData::Nsec3 { .. } => RrType::Nsec3,
            RData::Unknown(_) => return None,
        })
    }

    /// Encodes the RDATA (without the length prefix), appending to `w`.
    ///
    /// Names inside RDATA are written uncompressed, as RFC 3597 requires for
    /// unknown types and RFC 4034 §6.2 requires for canonical form; doing so
    /// uniformly keeps signature input identical to wire output.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            RData::A(addr) => w.write_bytes(&addr.octets()),
            RData::Aaaa(addr) => w.write_bytes(&addr.octets()),
            RData::Ns(name) | RData::Cname(name) | RData::Ptr(name) => {
                w.write_name_uncompressed(name)
            }
            RData::Soa(soa) => {
                w.write_name_uncompressed(&soa.mname);
                w.write_name_uncompressed(&soa.rname);
                w.write_u32(soa.serial);
                w.write_u32(soa.refresh);
                w.write_u32(soa.retry);
                w.write_u32(soa.expire);
                w.write_u32(soa.minimum);
            }
            RData::Mx { preference, exchange } => {
                w.write_u16(*preference);
                w.write_name_uncompressed(exchange);
            }
            RData::Txt(segments) => {
                for seg in segments {
                    let bytes = seg.as_bytes();
                    debug_assert!(bytes.len() <= 255);
                    w.write_u8(bytes.len().min(255) as u8);
                    w.write_bytes(&bytes[..bytes.len().min(255)]);
                }
            }
            RData::Dnskey { flags, protocol, algorithm, public_key } => {
                w.write_u16(*flags);
                w.write_u8(*protocol);
                w.write_u8(*algorithm);
                w.write_bytes(public_key);
            }
            RData::Ds { key_tag, algorithm, digest_type, digest }
            | RData::Dlv { key_tag, algorithm, digest_type, digest } => {
                w.write_u16(*key_tag);
                w.write_u8(*algorithm);
                w.write_u8(*digest_type);
                w.write_bytes(digest);
            }
            RData::Rrsig {
                type_covered,
                algorithm,
                labels,
                original_ttl,
                expiration,
                inception,
                key_tag,
                signer_name,
                signature,
            } => {
                w.write_u16(type_covered.code());
                w.write_u8(*algorithm);
                w.write_u8(*labels);
                w.write_u32(*original_ttl);
                w.write_u32(*expiration);
                w.write_u32(*inception);
                w.write_u16(*key_tag);
                w.write_name_uncompressed(signer_name);
                w.write_bytes(signature);
            }
            RData::Nsec { next_name, types } => {
                w.write_name_uncompressed(next_name);
                let mut tmp = Vec::new();
                types.encode(&mut tmp);
                w.write_bytes(&tmp);
            }
            RData::Nsec3 { hash_algorithm, flags, iterations, salt, next_hashed, types } => {
                w.write_u8(*hash_algorithm);
                w.write_u8(*flags);
                w.write_u16(*iterations);
                debug_assert!(salt.len() <= 255 && next_hashed.len() <= 255);
                w.write_u8(salt.len().min(255) as u8);
                w.write_bytes(&salt[..salt.len().min(255)]);
                w.write_u8(next_hashed.len().min(255) as u8);
                w.write_bytes(&next_hashed[..next_hashed.len().min(255)]);
                let mut tmp = Vec::new();
                types.encode(&mut tmp);
                w.write_bytes(&tmp);
            }
            RData::Unknown(bytes) => w.write_bytes(bytes),
        }
    }

    /// Decodes RDATA of type `rrtype` occupying `rdlen` octets at the
    /// reader's position.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the RDATA is truncated, malformed, or its
    /// decoded size disagrees with `rdlen`.
    pub fn decode(rrtype: RrType, r: &mut Reader<'_>, rdlen: usize) -> Result<Self, WireError> {
        let start = r.position();
        let end = start + rdlen;
        let data = match rrtype {
            RrType::A => {
                let b = r.read_bytes(4, "A rdata")?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RrType::Aaaa => {
                let b = r.read_bytes(16, "AAAA rdata")?;
                let mut oct = [0u8; 16];
                oct.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(oct))
            }
            RrType::Ns => RData::Ns(r.read_name()?),
            RrType::Cname => RData::Cname(r.read_name()?),
            RrType::Ptr => RData::Ptr(r.read_name()?),
            RrType::Soa => RData::Soa(SoaData {
                mname: r.read_name()?,
                rname: r.read_name()?,
                serial: r.read_u32("SOA serial")?,
                refresh: r.read_u32("SOA refresh")?,
                retry: r.read_u32("SOA retry")?,
                expire: r.read_u32("SOA expire")?,
                minimum: r.read_u32("SOA minimum")?,
            }),
            RrType::Mx => {
                RData::Mx { preference: r.read_u16("MX preference")?, exchange: r.read_name()? }
            }
            RrType::Txt => {
                let mut segments = Vec::new();
                while r.position() < end {
                    let len = r.read_u8("TXT length")? as usize;
                    let bytes = r.read_bytes(len, "TXT segment")?;
                    segments.push(String::from_utf8_lossy(bytes).into_owned());
                }
                RData::Txt(segments)
            }
            RrType::Dnskey => {
                let flags = r.read_u16("DNSKEY flags")?;
                let protocol = r.read_u8("DNSKEY protocol")?;
                let algorithm = r.read_u8("DNSKEY algorithm")?;
                let key_len = end
                    .checked_sub(r.position())
                    .ok_or(WireError::Truncated { context: "DNSKEY key" })?;
                let public_key = r.read_bytes(key_len, "DNSKEY key")?.to_vec();
                RData::Dnskey { flags, protocol, algorithm, public_key }
            }
            RrType::Ds | RrType::Dlv => {
                let key_tag = r.read_u16("DS key tag")?;
                let algorithm = r.read_u8("DS algorithm")?;
                let digest_type = r.read_u8("DS digest type")?;
                let digest_len = end
                    .checked_sub(r.position())
                    .ok_or(WireError::Truncated { context: "DS digest" })?;
                let digest = r.read_bytes(digest_len, "DS digest")?.to_vec();
                if rrtype == RrType::Ds {
                    RData::Ds { key_tag, algorithm, digest_type, digest }
                } else {
                    RData::Dlv { key_tag, algorithm, digest_type, digest }
                }
            }
            RrType::Rrsig => {
                let type_covered = RrType::from_code(r.read_u16("RRSIG type covered")?);
                let algorithm = r.read_u8("RRSIG algorithm")?;
                let labels = r.read_u8("RRSIG labels")?;
                let original_ttl = r.read_u32("RRSIG original ttl")?;
                let expiration = r.read_u32("RRSIG expiration")?;
                let inception = r.read_u32("RRSIG inception")?;
                let key_tag = r.read_u16("RRSIG key tag")?;
                let signer_name = r.read_name()?;
                let sig_len = end
                    .checked_sub(r.position())
                    .ok_or(WireError::Truncated { context: "RRSIG signature" })?;
                let signature = r.read_bytes(sig_len, "RRSIG signature")?.to_vec();
                RData::Rrsig {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer_name,
                    signature,
                }
            }
            RrType::Nsec => {
                let next_name = r.read_name()?;
                let bm_len = end
                    .checked_sub(r.position())
                    .ok_or(WireError::Truncated { context: "NSEC bitmap" })?;
                let bytes = r.read_bytes(bm_len, "NSEC bitmap")?;
                RData::Nsec { next_name, types: TypeBitmap::decode(bytes)? }
            }
            RrType::Nsec3 => {
                let hash_algorithm = r.read_u8("NSEC3 hash algorithm")?;
                let flags = r.read_u8("NSEC3 flags")?;
                let iterations = r.read_u16("NSEC3 iterations")?;
                let salt_len = r.read_u8("NSEC3 salt length")? as usize;
                let salt = r.read_bytes(salt_len, "NSEC3 salt")?.to_vec();
                let hash_len = r.read_u8("NSEC3 hash length")? as usize;
                let next_hashed = r.read_bytes(hash_len, "NSEC3 hash")?.to_vec();
                let bm_len = end
                    .checked_sub(r.position())
                    .ok_or(WireError::Truncated { context: "NSEC3 bitmap" })?;
                let bytes = r.read_bytes(bm_len, "NSEC3 bitmap")?;
                RData::Nsec3 {
                    hash_algorithm,
                    flags,
                    iterations,
                    salt,
                    next_hashed,
                    types: TypeBitmap::decode(bytes)?,
                }
            }
            _ => RData::Unknown(r.read_bytes(rdlen, "unknown rdata")?.to_vec()),
        };
        let consumed = r.position() - start;
        if consumed != rdlen {
            return Err(WireError::BadRdataLength { rrtype, declared: rdlen, consumed });
        }
        Ok(data)
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(f, "{} {} {}", s.mname, s.rname, s.serial),
            RData::Mx { preference, exchange } => write!(f, "{preference} {exchange}"),
            RData::Txt(segs) => {
                for (i, s) in segs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{s:?}")?;
                }
                Ok(())
            }
            RData::Dnskey { flags, algorithm, .. } => {
                write!(f, "DNSKEY flags={flags:#06x} alg={algorithm}")
            }
            RData::Ds { key_tag, algorithm, .. } => write!(f, "DS tag={key_tag} alg={algorithm}"),
            RData::Dlv { key_tag, algorithm, .. } => {
                write!(f, "DLV tag={key_tag} alg={algorithm}")
            }
            RData::Rrsig { type_covered, key_tag, signer_name, .. } => {
                write!(f, "RRSIG {type_covered} tag={key_tag} signer={signer_name}")
            }
            RData::Nsec { next_name, types } => {
                write!(f, "NSEC {next_name} ({} types)", types.len())
            }
            RData::Nsec3 { iterations, next_hashed, types, .. } => {
                write!(
                    f,
                    "NSEC3 iter={iterations} next={}B ({} types)",
                    next_hashed.len(),
                    types.len()
                )
            }
            RData::Unknown(b) => write!(f, "\\# {}", b.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rdata: RData) {
        let rrtype = rdata.rrtype().unwrap();
        let mut w = Writer::new();
        rdata.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = RData::decode(rrtype, &mut r, bytes.len()).unwrap();
        assert_eq!(back, rdata);
    }

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn round_trip_every_variant() {
        round_trip(RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        round_trip(RData::Aaaa("2001:db8::1".parse().unwrap()));
        round_trip(RData::Ns(name("ns1.example.com")));
        round_trip(RData::Cname(name("alias.example.com")));
        round_trip(RData::Ptr(name("host.example.com")));
        round_trip(RData::Soa(SoaData {
            mname: name("ns1.example.com"),
            rname: name("hostmaster.example.com"),
            serial: 20160201,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 3600,
        }));
        round_trip(RData::Mx { preference: 10, exchange: name("mail.example.com") });
        round_trip(RData::Txt(vec!["dlv=1".into(), "v=spf1 -all".into()]));
        round_trip(RData::Dnskey {
            flags: 0x0101,
            protocol: 3,
            algorithm: 250,
            public_key: vec![1, 2, 3, 4, 5, 6, 7, 8],
        });
        round_trip(RData::Ds {
            key_tag: 12345,
            algorithm: 250,
            digest_type: 2,
            digest: vec![0xaa; 32],
        });
        round_trip(RData::Dlv {
            key_tag: 54321,
            algorithm: 250,
            digest_type: 2,
            digest: vec![0xbb; 32],
        });
        round_trip(RData::Rrsig {
            type_covered: RrType::A,
            algorithm: 250,
            labels: 2,
            original_ttl: 3600,
            expiration: 1_500_000_000,
            inception: 1_400_000_000,
            key_tag: 777,
            signer_name: name("example.com"),
            signature: vec![9; 16],
        });
        round_trip(RData::Nsec {
            next_name: name("b.example.com"),
            types: TypeBitmap::from_types([RrType::A, RrType::Rrsig, RrType::Nsec]),
        });
        round_trip(RData::Nsec3 {
            hash_algorithm: 1,
            flags: 0,
            iterations: 5,
            salt: vec![0xde, 0xad],
            next_hashed: vec![0x11; 20],
            types: TypeBitmap::from_types([RrType::Dlv, RrType::Rrsig]),
        });
    }

    #[test]
    fn nsec3_empty_salt_round_trips() {
        round_trip(RData::Nsec3 {
            hash_algorithm: 1,
            flags: 1,
            iterations: 0,
            salt: vec![],
            next_hashed: vec![0x22; 20],
            types: TypeBitmap::new(),
        });
    }

    #[test]
    fn empty_txt_round_trips() {
        round_trip(RData::Txt(vec![]));
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let mut w = Writer::new();
        RData::A(Ipv4Addr::LOCALHOST).encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        // Declared rdlen is 3 but an A record consumes 4.
        assert!(RData::decode(RrType::A, &mut r, 3).is_err());
    }

    #[test]
    fn decode_truncated_soa() {
        let bytes = [0u8; 6];
        let mut r = Reader::new(&bytes);
        assert!(RData::decode(RrType::Soa, &mut r, 6).is_err());
    }

    #[test]
    fn ds_and_dlv_decode_to_distinct_variants() {
        let ds = RData::Ds { key_tag: 7, algorithm: 1, digest_type: 2, digest: vec![1, 2] };
        let mut w = Writer::new();
        ds.encode(&mut w);
        let bytes = w.into_bytes();
        let as_dlv = RData::decode(RrType::Dlv, &mut Reader::new(&bytes), bytes.len()).unwrap();
        assert!(matches!(as_dlv, RData::Dlv { key_tag: 7, .. }));
    }

    #[test]
    fn unknown_type_passes_through() {
        let bytes = vec![1, 2, 3];
        let mut r = Reader::new(&bytes);
        let d = RData::decode(RrType::Unknown(999), &mut r, 3).unwrap();
        assert_eq!(d, RData::Unknown(vec![1, 2, 3]));
        assert_eq!(d.rrtype(), None);
    }
}
