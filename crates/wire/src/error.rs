use std::fmt;

/// Errors produced while building, encoding, or decoding DNS data.
///
/// Every decoding path in this crate is fully fallible: malformed wire input
/// never panics, it yields a `WireError`. This matters for the simulator
/// because the attack experiments (§6.2.3 of the paper) deliberately corrupt
/// messages in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// A name exceeded 255 octets in wire form.
    NameTooLong(usize),
    /// A textual name could not be parsed.
    BadNameSyntax(String),
    /// The wire buffer ended before the structure was complete.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// A compression pointer pointed forward or at itself.
    BadPointer(usize),
    /// Name decompression followed more pointer jumps than any legal
    /// message can contain — the pointer chain loops (or is adversarially
    /// deep). Decoding aborts instead of spinning.
    CompressionLoop {
        /// Pointer jumps taken before giving up.
        jumps: usize,
    },
    /// A section's record count disagreed with the records actually
    /// present: the header declared more entries than the body holds.
    CountMismatch {
        /// Which section ran short ("question", "answer", "authority",
        /// "additional").
        section: &'static str,
        /// Entries the header declared.
        declared: u16,
        /// Entries that decoded before the buffer ran out.
        found: u16,
    },
    /// An RDATA length field disagreed with the decoded content.
    BadRdataLength {
        /// The record type whose RDATA was malformed.
        rrtype: crate::RrType,
        /// Length declared in the message.
        declared: usize,
        /// Length actually consumed.
        consumed: usize,
    },
    /// A type bitmap window was malformed.
    BadTypeBitmap(&'static str),
    /// A TXT character-string exceeded 255 octets.
    TxtSegmentTooLong(usize),
    /// The message exceeded the 64 KiB UDP/TCP envelope.
    MessageTooLong(usize),
    /// An unknown opcode, rcode, or class value that the study never uses.
    UnsupportedValue {
        /// The field the value appeared in.
        field: &'static str,
        /// The offending value.
        value: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadNameSyntax(s) => write!(f, "invalid domain name syntax: {s:?}"),
            WireError::Truncated { context } => {
                write!(f, "message truncated while decoding {context}")
            }
            WireError::BadPointer(off) => write!(f, "invalid compression pointer to offset {off}"),
            WireError::CompressionLoop { jumps } => {
                write!(f, "compression pointer chain of {jumps} jumps looped")
            }
            WireError::CountMismatch { section, declared, found } => {
                write!(f, "{section} section declared {declared} entries but only {found} decoded")
            }
            WireError::BadRdataLength { rrtype, declared, consumed } => write!(
                f,
                "rdata length mismatch for {rrtype}: declared {declared}, consumed {consumed}"
            ),
            WireError::BadTypeBitmap(why) => write!(f, "malformed NSEC type bitmap: {why}"),
            WireError::TxtSegmentTooLong(n) => write!(f, "txt segment of {n} octets exceeds 255"),
            WireError::MessageTooLong(n) => write!(f, "message of {n} octets exceeds 65535"),
            WireError::UnsupportedValue { field, value } => {
                write!(f, "unsupported {field} value {value}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = WireError::LabelTooLong(70);
        let s = e.to_string();
        assert!(s.starts_with("label"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }
}
