// lint:allow-file(panic::slice-index) -- bitmap window slices are length-checked against the decoded window length before each access; fuzz-backed by the ci.sh corruption gate

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::WireError;

/// DNS resource-record types used by the study.
///
/// The numeric values are the IANA assignments; [`RrType::Dlv`] is 32769
/// (RFC 4431), which is how the paper's packet captures filter DLV traffic
/// ("All DLV queries are extracted from the network traffic by filtering the
/// query type", §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RrType {
    /// IPv4 address (1).
    A,
    /// Authoritative name server (2).
    Ns,
    /// Canonical name alias (5).
    Cname,
    /// Start of authority (6).
    Soa,
    /// Domain name pointer, reverse lookups (12).
    Ptr,
    /// Mail exchanger (15).
    Mx,
    /// Text record (16) — carries the `dlv=1` remedy signal of §6.2.1.
    Txt,
    /// IPv6 address (28).
    Aaaa,
    /// EDNS(0) pseudo-record (41).
    Opt,
    /// Delegation signer (43).
    Ds,
    /// Resource record signature (46).
    Rrsig,
    /// Next secure record (47) — drives aggressive negative caching.
    Nsec,
    /// DNSSEC public key (48).
    Dnskey,
    /// Hashed next secure record (50), discussed in §7.3.
    Nsec3,
    /// DNSSEC look-aside validation record (32769, RFC 4431).
    Dlv,
    /// Any type this simulator does not model.
    Unknown(u16),
}

impl RrType {
    /// The IANA type code.
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Ds => 43,
            RrType::Rrsig => 46,
            RrType::Nsec => 47,
            RrType::Dnskey => 48,
            RrType::Nsec3 => 50,
            RrType::Dlv => 32769,
            RrType::Unknown(code) => code,
        }
    }

    /// Maps an IANA type code back to an `RrType`.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            43 => RrType::Ds,
            46 => RrType::Rrsig,
            47 => RrType::Nsec,
            48 => RrType::Dnskey,
            50 => RrType::Nsec3,
            32769 => RrType::Dlv,
            other => RrType::Unknown(other),
        }
    }

    /// Whether this type only ever appears as DNSSEC metadata.
    pub fn is_dnssec_meta(self) -> bool {
        matches!(
            self,
            RrType::Ds
                | RrType::Rrsig
                | RrType::Nsec
                | RrType::Dnskey
                | RrType::Nsec3
                | RrType::Dlv
        )
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => write!(f, "A"),
            RrType::Ns => write!(f, "NS"),
            RrType::Cname => write!(f, "CNAME"),
            RrType::Soa => write!(f, "SOA"),
            RrType::Ptr => write!(f, "PTR"),
            RrType::Mx => write!(f, "MX"),
            RrType::Txt => write!(f, "TXT"),
            RrType::Aaaa => write!(f, "AAAA"),
            RrType::Opt => write!(f, "OPT"),
            RrType::Ds => write!(f, "DS"),
            RrType::Rrsig => write!(f, "RRSIG"),
            RrType::Nsec => write!(f, "NSEC"),
            RrType::Dnskey => write!(f, "DNSKEY"),
            RrType::Nsec3 => write!(f, "NSEC3"),
            RrType::Dlv => write!(f, "DLV"),
            RrType::Unknown(code) => write!(f, "TYPE{code}"),
        }
    }
}

/// DNS classes. The study uses `IN` exclusively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrClass {
    /// The Internet class (1).
    In,
    /// Any other class.
    Other(u16),
}

impl RrClass {
    /// The IANA class code.
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Other(code) => code,
        }
    }

    /// Maps a class code back to an `RrClass`.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RrClass::In,
            other => RrClass::Other(other),
        }
    }
}

impl fmt::Display for RrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrClass::In => write!(f, "IN"),
            RrClass::Other(code) => write!(f, "CLASS{code}"),
        }
    }
}

/// An NSEC type bitmap (RFC 4034 §4.1.2): the set of RR types present at a
/// name, encoded as window blocks.
///
/// DLV's type code (32769) lives in window 128, so round-tripping it is a
/// useful correctness check that real NSEC code paths often get wrong.
///
/// # Example
///
/// ```
/// use lookaside_wire::{RrType, TypeBitmap};
///
/// let types = TypeBitmap::from_types([RrType::A, RrType::Dlv]);
/// assert!(types.contains(RrType::Dlv));
/// let mut wire = Vec::new();
/// types.encode(&mut wire);
/// assert_eq!(TypeBitmap::decode(&wire)?, types);
/// # Ok::<(), lookaside_wire::WireError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TypeBitmap {
    types: Vec<u16>, // sorted, deduplicated type codes
}

impl TypeBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a bitmap from an iterator of types.
    pub fn from_types<I: IntoIterator<Item = RrType>>(iter: I) -> Self {
        let mut types: Vec<u16> = iter.into_iter().map(RrType::code).collect();
        types.sort_unstable();
        types.dedup();
        TypeBitmap { types }
    }

    /// Inserts a type.
    pub fn insert(&mut self, rrtype: RrType) {
        let code = rrtype.code();
        if let Err(pos) = self.types.binary_search(&code) {
            self.types.insert(pos, code);
        }
    }

    /// Whether the bitmap contains `rrtype`.
    pub fn contains(&self, rrtype: RrType) -> bool {
        self.types.binary_search(&rrtype.code()).is_ok()
    }

    /// Iterates the contained types in code order.
    pub fn iter(&self) -> impl Iterator<Item = RrType> + '_ {
        self.types.iter().map(|&c| RrType::from_code(c))
    }

    /// Number of types in the bitmap.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the bitmap is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Encodes the window-block wire form, appending to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let mut idx = 0;
        while idx < self.types.len() {
            let window = (self.types[idx] >> 8) as u8;
            let mut bitmap = [0u8; 32];
            let mut max_octet = 0usize;
            while idx < self.types.len() && (self.types[idx] >> 8) as u8 == window {
                let low = (self.types[idx] & 0xff) as usize;
                bitmap[low / 8] |= 0x80 >> (low % 8);
                max_octet = max_octet.max(low / 8);
                idx += 1;
            }
            buf.push(window);
            buf.push((max_octet + 1) as u8);
            buf.extend_from_slice(&bitmap[..=max_octet]);
        }
    }

    /// Decodes a window-block wire form occupying exactly `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadTypeBitmap`] on truncated windows, zero or
    /// over-long window lengths, or out-of-order windows.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut types = Vec::new();
        let mut pos = 0;
        let mut last_window: i32 = -1;
        while pos < bytes.len() {
            if pos + 2 > bytes.len() {
                return Err(WireError::BadTypeBitmap("truncated window header"));
            }
            let window = bytes[pos];
            let len = bytes[pos + 1] as usize;
            pos += 2;
            if len == 0 || len > 32 {
                return Err(WireError::BadTypeBitmap("window length out of range"));
            }
            if (window as i32) <= last_window {
                return Err(WireError::BadTypeBitmap("windows out of order"));
            }
            last_window = window as i32;
            if pos + len > bytes.len() {
                return Err(WireError::BadTypeBitmap("truncated window body"));
            }
            for (octet, &b) in bytes[pos..pos + len].iter().enumerate() {
                for bit in 0..8 {
                    if b & (0x80 >> bit) != 0 {
                        types.push(((window as u16) << 8) | ((octet * 8 + bit) as u16));
                    }
                }
            }
            pos += len;
        }
        Ok(TypeBitmap { types })
    }
}

impl FromIterator<RrType> for TypeBitmap {
    fn from_iter<I: IntoIterator<Item = RrType>>(iter: I) -> Self {
        TypeBitmap::from_types(iter)
    }
}

impl Extend<RrType> for TypeBitmap {
    fn extend<I: IntoIterator<Item = RrType>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrtype_code_round_trip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Ptr,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Opt,
            RrType::Ds,
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Dnskey,
            RrType::Nsec3,
            RrType::Dlv,
            RrType::Unknown(999),
        ] {
            assert_eq!(RrType::from_code(t.code()), t);
        }
    }

    #[test]
    fn dlv_is_32769() {
        assert_eq!(RrType::Dlv.code(), 32769);
        assert_eq!(RrType::Dlv.to_string(), "DLV");
    }

    #[test]
    fn bitmap_insert_contains() {
        let mut bm = TypeBitmap::new();
        assert!(bm.is_empty());
        bm.insert(RrType::A);
        bm.insert(RrType::Rrsig);
        bm.insert(RrType::A); // idempotent
        assert_eq!(bm.len(), 2);
        assert!(bm.contains(RrType::A));
        assert!(!bm.contains(RrType::Ns));
    }

    #[test]
    fn bitmap_round_trip_with_dlv_window() {
        let bm = TypeBitmap::from_types([RrType::A, RrType::Nsec, RrType::Rrsig, RrType::Dlv]);
        let mut buf = Vec::new();
        bm.encode(&mut buf);
        let back = TypeBitmap::decode(&buf).unwrap();
        assert_eq!(back, bm);
        // DLV (32769) lives in window 128, bit 1.
        assert!(buf.contains(&128u8));
    }

    #[test]
    fn bitmap_decode_rejects_bad_window_len() {
        assert!(TypeBitmap::decode(&[0, 0]).is_err());
        assert!(TypeBitmap::decode(&[0, 33]).is_err());
        assert!(TypeBitmap::decode(&[0]).is_err());
        assert!(TypeBitmap::decode(&[0, 4, 0xff]).is_err());
    }

    #[test]
    fn bitmap_decode_rejects_out_of_order_windows() {
        let mut buf = Vec::new();
        TypeBitmap::from_types([RrType::Dlv]).encode(&mut buf); // window 128
        TypeBitmap::from_types([RrType::A]).encode(&mut buf); // window 0 after 128
        assert!(TypeBitmap::decode(&buf).is_err());
    }

    #[test]
    fn bitmap_iter_in_code_order() {
        let bm = TypeBitmap::from_types([RrType::Dlv, RrType::A, RrType::Ns]);
        let order: Vec<u16> = bm.iter().map(RrType::code).collect();
        assert_eq!(order, vec![1, 2, 32769]);
    }
}
