use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::WireError;

/// Maximum octets in a single label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name in wire form, including the root byte.
pub const MAX_NAME_LEN: usize = 255;

/// One label of a domain name.
///
/// Labels are stored lower-cased: DNS name comparison is case-insensitive
/// (RFC 1035 §2.3.3, RFC 4343) and the study never depends on preserved case,
/// so normalising at construction keeps `Eq`/`Ord`/`Hash` cheap and
/// consistent.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(Box<[u8]>);

impl Label {
    /// Creates a label from raw octets, lower-casing ASCII letters.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LabelTooLong`] if `bytes` exceeds 63 octets and
    /// [`WireError::BadNameSyntax`] if it is empty.
    pub fn new(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.is_empty() {
            return Err(WireError::BadNameSyntax("empty label".into()));
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(bytes.len()));
        }
        Ok(Label(bytes.to_ascii_lowercase().into_boxed_slice()))
    }

    /// The label's octets (already lower-cased).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Octet length of the label.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the label is empty (never true for constructed labels).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Canonical comparison: plain byte-wise on the lower-cased octets
    /// (RFC 4034 §6.1).
    pub fn canonical_cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in self.0.iter() {
            match b {
                b'.' | b'\\' => write!(f, "\\{}", b as char)?,
                0x21..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\{:03}", b)?,
            }
        }
        Ok(())
    }
}

/// A fully-qualified domain name.
///
/// Internally a sequence of [`Label`]s from most-specific to root; the root
/// name is the empty sequence. All names in this workspace are absolute.
///
/// # Example
///
/// ```
/// use lookaside_wire::Name;
///
/// let n = Name::parse("www.Example.COM.")?;
/// assert_eq!(n.to_string(), "www.example.com.");
/// assert_eq!(n.label_count(), 3);
/// assert!(n.is_subdomain_of(&Name::parse("com.")?));
/// # Ok::<(), lookaside_wire::WireError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<Label>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parses a textual domain name.
    ///
    /// A trailing dot is optional; every name is treated as absolute. Escaped
    /// characters are not supported (the study's domain corpora are plain
    /// ASCII hostnames).
    ///
    /// # Errors
    ///
    /// Fails on empty labels (`a..b`), over-long labels, and over-long names.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for part in s.split('.') {
            labels.push(Label::new(part.as_bytes())?);
        }
        let name = Name { labels };
        name.check_len()?;
        Ok(name)
    }

    /// Builds a name from labels ordered most-specific first.
    ///
    /// # Errors
    ///
    /// Fails if the resulting name exceeds 255 wire octets.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, WireError> {
        let name = Name { labels };
        name.check_len()?;
        Ok(name)
    }

    fn check_len(&self) -> Result<(), WireError> {
        let len = self.wire_len();
        if len > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(len));
        }
        Ok(())
    }

    /// Number of labels (the root name has zero).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Octet length of the name in (uncompressed) wire form.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// The parent name (one label removed), or `None` for the root.
    ///
    /// This is the "strip the leading label and try again" step of RFC 5074
    /// §4.1 that the DLV validator uses when walking up toward an enclosing
    /// DLV record.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name { labels: self.labels[1..].to_vec() })
        }
    }

    /// The name formed by keeping only the last `n` labels.
    ///
    /// `suffix(0)` is the root; `suffix(label_count())` is `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.label_count()`.
    pub fn suffix(&self, n: usize) -> Name {
        assert!(n <= self.labels.len(), "suffix({n}) of a {}-label name", self.labels.len());
        Name { labels: self.labels[self.labels.len() - n..].to_vec() }
    }

    /// Whether `self` is equal to or a subdomain of `ancestor`.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - ancestor.labels.len();
        self.labels[offset..] == ancestor.labels[..]
    }

    /// Concatenates `self` (kept most-specific) with `suffix`.
    ///
    /// Used to form DLV query names: `example.com` + `dlv.isc.org` =
    /// `example.com.dlv.isc.org` (RFC 5074 §4.1).
    ///
    /// # Errors
    ///
    /// Fails if the combined name exceeds 255 wire octets.
    pub fn concat(&self, suffix: &Name) -> Result<Name, WireError> {
        let mut labels = self.labels.clone();
        labels.extend(suffix.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Prepends a single textual label.
    ///
    /// # Errors
    ///
    /// Fails on invalid labels or over-long results.
    pub fn prepend(&self, label: &str) -> Result<Name, WireError> {
        let mut labels = vec![Label::new(label.as_bytes())?];
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Strips `suffix` from the end of the name, returning the relative part.
    ///
    /// Returns `None` when `self` is not a subdomain of `suffix`. Stripping a
    /// name from itself yields the root.
    pub fn strip_suffix(&self, suffix: &Name) -> Option<Name> {
        if !self.is_subdomain_of(suffix) {
            return None;
        }
        Some(Name { labels: self.labels[..self.labels.len() - suffix.labels.len()].to_vec() })
    }

    /// Canonical DNS name ordering (RFC 4034 §6.1): sort by the right-most
    /// label first, byte-wise per label, with absent labels sorting first.
    ///
    /// This ordering defines NSEC chains, and NSEC chains define which DLV
    /// queries the aggressive negative cache suppresses — the mechanism
    /// behind Figs. 8 and 9 of the paper.
    pub fn canonical_cmp(&self, other: &Name) -> Ordering {
        let a = self.labels.iter().rev();
        let b = other.labels.iter().rev();
        for (la, lb) in a.zip(b) {
            match la.canonical_cmp(lb) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.labels.len().cmp(&other.labels.len())
    }

    /// Encodes the name, uncompressed, appending to `buf`.
    pub fn encode_uncompressed(&self, buf: &mut Vec<u8>) {
        for label in &self.labels {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
        buf.push(0);
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in &self.labels {
            write!(f, "{}.", label)?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// `Ord` for `Name` *is* the canonical ordering, so that `BTreeMap<Name, _>`
/// iterates in NSEC-chain order.
impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["example.com.", "a.b.c.d.e.", "xn--caf-dma.org.", "."] {
            assert_eq!(n(s).to_string(), s);
        }
    }

    #[test]
    fn parse_without_trailing_dot() {
        assert_eq!(n("example.com"), n("example.com."));
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(n("ExAmPlE.CoM"), n("example.com"));
        assert_eq!(n("WWW.EXAMPLE.COM").to_string(), "www.example.com.");
    }

    #[test]
    fn empty_label_rejected() {
        assert!(matches!(Name::parse("a..b"), Err(WireError::BadNameSyntax(_))));
    }

    #[test]
    fn long_label_rejected() {
        let long = "a".repeat(64);
        assert!(matches!(Name::parse(&long), Err(WireError::LabelTooLong(64))));
        assert!(Name::parse(&"a".repeat(63)).is_ok());
    }

    #[test]
    fn long_name_rejected() {
        let label = "a".repeat(63);
        let four = format!("{label}.{label}.{label}.{label}");
        assert!(matches!(Name::parse(&four), Err(WireError::NameTooLong(_))));
    }

    #[test]
    fn root_properties() {
        let r = Name::root();
        assert!(r.is_root());
        assert_eq!(r.label_count(), 0);
        assert_eq!(r.wire_len(), 1);
        assert_eq!(r.parent(), None);
        assert_eq!(r.to_string(), ".");
    }

    #[test]
    fn parent_walks_to_root() {
        let mut cur = n("a.b.c");
        let mut seen = vec![cur.to_string()];
        while let Some(p) = cur.parent() {
            seen.push(p.to_string());
            cur = p;
        }
        assert_eq!(seen, ["a.b.c.", "b.c.", "c.", "."]);
    }

    #[test]
    fn subdomain_relation() {
        assert!(n("www.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&Name::root()));
        assert!(!n("example.com").is_subdomain_of(&n("www.example.com")));
        assert!(!n("notexample.com").is_subdomain_of(&n("example.com")));
    }

    #[test]
    fn concat_forms_dlv_names() {
        let q = n("example.com").concat(&n("dlv.isc.org")).unwrap();
        assert_eq!(q.to_string(), "example.com.dlv.isc.org.");
    }

    #[test]
    fn concat_overflow_is_error() {
        let label = "a".repeat(63);
        let big = Name::parse(&format!("{label}.{label}.{label}")).unwrap();
        assert!(big.concat(&big).is_err());
    }

    #[test]
    fn strip_suffix_inverse_of_concat() {
        let dlv = n("dlv.isc.org");
        let q = n("example.com").concat(&dlv).unwrap();
        assert_eq!(q.strip_suffix(&dlv).unwrap(), n("example.com"));
        assert_eq!(q.strip_suffix(&n("other.org")), None);
        assert!(dlv.strip_suffix(&dlv).unwrap().is_root());
    }

    #[test]
    fn suffix_keeps_last_labels() {
        let name = n("a.b.c.d");
        assert_eq!(name.suffix(2), n("c.d"));
        assert!(name.suffix(0).is_root());
        assert_eq!(name.suffix(4), name);
    }

    #[test]
    #[should_panic(expected = "suffix")]
    fn suffix_out_of_range_panics() {
        n("a.b").suffix(3);
    }

    #[test]
    fn canonical_order_rfc4034_example() {
        // The worked example from RFC 4034 §6.1.
        let sorted = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "z.a.example.",
            "zabc.a.example.",
            "z.example.",
        ];
        let mut names: Vec<Name> = sorted.iter().map(|s| n(s)).collect();
        names.reverse();
        names.sort_by(|a, b| a.canonical_cmp(b));
        let out: Vec<String> = names.iter().map(|x| x.to_string()).collect();
        assert_eq!(out, sorted);
    }

    #[test]
    fn ord_matches_canonical() {
        let a = n("a.example");
        let b = n("z.example");
        assert!(a < b);
        assert!(n("example") < a);
    }

    #[test]
    fn wire_len_counts_octets() {
        assert_eq!(n("example.com").wire_len(), 1 + 7 + 1 + 3 + 1);
    }

    #[test]
    fn encode_uncompressed_layout() {
        let mut buf = Vec::new();
        n("ab.c").encode_uncompressed(&mut buf);
        assert_eq!(buf, vec![2, b'a', b'b', 1, b'c', 0]);
    }

    #[test]
    fn label_display_escapes_binary() {
        let l = Label::new(&[b'a', 0x01, b'.']).unwrap();
        assert_eq!(l.to_string(), "a\\001\\.");
    }
}
