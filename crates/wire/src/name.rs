//! Domain names in a compact, allocation-averse representation.
//!
//! A [`Name`] stores its labels as one contiguous run of lower-cased,
//! length-prefixed wire octets (the RFC 1035 §3.1 encoding minus the root
//! octet). Short names — the overwhelming majority of hostnames in the
//! study's corpora — live inline on the stack; longer names share an
//! `Arc<[u8]>` buffer, so `Clone` is O(1) either way and `parent()` /
//! [`Name::suffix`] on a shared name reuse the same buffer at a later
//! offset without copying. Borrowed views ([`LabelRef`], [`NameRef`],
//! [`Labels`]) let callers walk labels, compare canonically, and encode
//! without touching the heap, and a [`NameTable`] interns heap-backed
//! names per worker so hot paths hand out shared handles.

// lint:allow-file(panic::slice-index) -- all indices derive from label offsets validated when the Name was constructed (Repr invariants), and the corruption fuzz gate exercises the decode paths with arbitrary bytes

use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::WireError;

/// Maximum octets in a single label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name in wire form, including the root byte.
pub const MAX_NAME_LEN: usize = 255;

/// Wire octets (excluding the root byte) that fit in a [`Name`] without a
/// heap allocation. `www.example.com` is 16 octets; 22 keeps the whole
/// `Name` within 32 bytes.
const INLINE_LEN: usize = 22;

/// Most labels a legal name can carry: each costs at least two wire octets.
pub(crate) const MAX_LABELS: usize = MAX_NAME_LEN / 2;

fn fmt_label_bytes(f: &mut fmt::Formatter<'_>, bytes: &[u8]) -> fmt::Result {
    for &b in bytes {
        match b {
            b'.' | b'\\' => write!(f, "\\{}", b as char)?,
            0x21..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\{:03}", b)?,
        }
    }
    Ok(())
}

/// One label of a domain name, owned.
///
/// Labels are stored lower-cased: DNS name comparison is case-insensitive
/// (RFC 1035 §2.3.3, RFC 4343) and the study never depends on preserved case,
/// so normalising at construction keeps `Eq`/`Ord`/`Hash` cheap and
/// consistent. Hot paths use the borrowed [`LabelRef`] instead.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(Box<[u8]>);

impl Label {
    /// Creates a label from raw octets, lower-casing ASCII letters.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LabelTooLong`] if `bytes` exceeds 63 octets and
    /// [`WireError::BadNameSyntax`] if it is empty.
    pub fn new(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.is_empty() {
            return Err(WireError::BadNameSyntax("empty label".into()));
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(bytes.len()));
        }
        Ok(Label(bytes.to_ascii_lowercase().into_boxed_slice()))
    }

    /// The label's octets (already lower-cased).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Octet length of the label.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the label is empty (never true for constructed labels).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Canonical comparison: plain byte-wise on the lower-cased octets
    /// (RFC 4034 §6.1).
    pub fn canonical_cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_label_bytes(f, &self.0)
    }
}

/// A borrowed view of one label inside a [`Name`]'s buffer.
///
/// Zero-cost to produce and copy; the octets are already lower-cased.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelRef<'a>(&'a [u8]);

impl<'a> LabelRef<'a> {
    /// The label's octets (already lower-cased).
    pub fn as_bytes(&self) -> &'a [u8] {
        self.0
    }

    /// Octet length of the label.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the label is empty (never true inside a valid name).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Canonical comparison: byte-wise on the lower-cased octets
    /// (RFC 4034 §6.1).
    pub fn canonical_cmp(&self, other: &LabelRef<'_>) -> Ordering {
        self.0.cmp(other.0)
    }

    /// Copies the label out into an owned [`Label`].
    pub fn to_label(&self) -> Label {
        Label(self.0.into())
    }
}

impl fmt::Debug for LabelRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LabelRef({})", self)
    }
}

impl fmt::Display for LabelRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_label_bytes(f, self.0)
    }
}

/// The two storage classes of a [`Name`]; both hold the same byte layout.
#[derive(Clone)]
enum Repr {
    /// Short names: wire octets stored in place, `Clone` is a stack copy.
    Inline { len: u8, count: u8, buf: [u8; INLINE_LEN] },
    /// Long names: wire octets behind an `Arc`, `Clone` bumps a refcount.
    /// `start` lets `parent()`/`suffix()` share the ancestor's buffer.
    Shared { bytes: Arc<[u8]>, start: u16, count: u8 },
}

/// A fully-qualified domain name.
///
/// Stored as lower-cased, length-prefixed label octets (most-specific
/// first) without the trailing root byte; the root name is the empty
/// sequence. All names in this workspace are absolute. `Clone` never
/// allocates.
///
/// # Example
///
/// ```
/// use lookaside_wire::Name;
///
/// let n = Name::parse("www.Example.COM.")?;
/// assert_eq!(n.to_string(), "www.example.com.");
/// assert_eq!(n.label_count(), 3);
/// assert!(n.is_subdomain_of(&Name::parse("com.")?));
/// # Ok::<(), lookaside_wire::WireError>(())
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Name {
    repr: Repr,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { repr: Repr::Inline { len: 0, count: 0, buf: [0; INLINE_LEN] } }
    }

    /// Builds a name over already-validated, lower-cased wire label octets.
    fn from_wire(bytes: &[u8], count: usize) -> Self {
        debug_assert!(bytes.len() < MAX_NAME_LEN && count <= MAX_LABELS);
        if bytes.len() <= INLINE_LEN {
            let mut buf = [0u8; INLINE_LEN];
            buf[..bytes.len()].copy_from_slice(bytes);
            Name { repr: Repr::Inline { len: bytes.len() as u8, count: count as u8, buf } }
        } else {
            Name { repr: Repr::Shared { bytes: Arc::from(bytes), start: 0, count: count as u8 } }
        }
    }

    /// Parses a textual domain name.
    ///
    /// A trailing dot is optional; every name is treated as absolute. Escaped
    /// characters are not supported (the study's domain corpora are plain
    /// ASCII hostnames).
    ///
    /// # Errors
    ///
    /// Fails on empty labels (`a..b`), over-long labels, and over-long names.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut b = NameBuilder::new();
        for part in s.split('.') {
            b.push_label(part.as_bytes())?;
        }
        Ok(b.finish())
    }

    /// Builds a name from labels ordered most-specific first.
    ///
    /// # Errors
    ///
    /// Fails if the resulting name exceeds 255 wire octets.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, WireError> {
        let mut b = NameBuilder::new();
        for label in &labels {
            b.push_label(label.as_bytes())?;
        }
        Ok(b.finish())
    }

    /// The name's wire octets: lower-cased length-prefixed labels, without
    /// the trailing root byte. This is the canonical (RFC 4034 §6.2)
    /// encoding minus its terminator; `Eq`/`Hash` are defined over it.
    pub fn wire_labels(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, buf, .. } => &buf[..*len as usize],
            Repr::Shared { bytes, start, .. } => &bytes[*start as usize..],
        }
    }

    /// Whether the name is stored inline (no heap buffer).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// A borrowed view of the whole name.
    pub fn as_name_ref(&self) -> NameRef<'_> {
        NameRef { bytes: self.wire_labels(), count: self.label_count() as u8 }
    }

    /// Number of labels (the root name has zero).
    pub fn label_count(&self) -> usize {
        match &self.repr {
            Repr::Inline { count, .. } | Repr::Shared { count, .. } => *count as usize,
        }
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.label_count() == 0
    }

    /// Iterates the labels, most-specific first, without allocating.
    pub fn labels(&self) -> Labels<'_> {
        Labels { bytes: self.wire_labels(), count: self.label_count() }
    }

    /// The `i`-th label, most-specific first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.label_count()`.
    pub fn label(&self, i: usize) -> LabelRef<'_> {
        // lint:allow(panic::expect) -- documented contract panic (see "# Panics" above); callers index within label_count()
        self.labels().nth(i).expect("label index out of range")
    }

    /// Octet length of the name in (uncompressed) wire form.
    pub fn wire_len(&self) -> usize {
        self.wire_labels().len() + 1
    }

    /// The parent name (one label removed), or `None` for the root.
    ///
    /// This is the "strip the leading label and try again" step of RFC 5074
    /// §4.1 that the DLV validator uses when walking up toward an enclosing
    /// DLV record. On a shared name this re-slices the same buffer — no
    /// copy, no allocation.
    pub fn parent(&self) -> Option<Name> {
        match &self.repr {
            Repr::Inline { len, count, buf } => {
                if *count == 0 {
                    return None;
                }
                let skip = 1 + buf[0] as usize;
                let rest = &buf[skip..*len as usize];
                let mut nb = [0u8; INLINE_LEN];
                nb[..rest.len()].copy_from_slice(rest);
                Some(Name {
                    repr: Repr::Inline { len: rest.len() as u8, count: count - 1, buf: nb },
                })
            }
            Repr::Shared { bytes, start, count } => {
                let s = *start as usize;
                let skip = 1 + bytes[s] as usize;
                Some(Name {
                    repr: Repr::Shared {
                        bytes: Arc::clone(bytes),
                        start: (s + skip) as u16,
                        count: count - 1,
                    },
                })
            }
        }
    }

    /// The name formed by keeping only the last `n` labels.
    ///
    /// `suffix(0)` is the root; `suffix(label_count())` is `self`. On a
    /// shared name the result shares the same buffer.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.label_count()`.
    pub fn suffix(&self, n: usize) -> Name {
        let count = self.label_count();
        assert!(n <= count, "suffix({n}) of a {count}-label name");
        let drop = count - n;
        match &self.repr {
            Repr::Inline { len, buf, .. } => {
                let mut pos = 0usize;
                for _ in 0..drop {
                    pos += 1 + buf[pos] as usize;
                }
                let rest = &buf[pos..*len as usize];
                let mut nb = [0u8; INLINE_LEN];
                nb[..rest.len()].copy_from_slice(rest);
                Name { repr: Repr::Inline { len: rest.len() as u8, count: n as u8, buf: nb } }
            }
            Repr::Shared { bytes, start, .. } => {
                let mut pos = *start as usize;
                for _ in 0..drop {
                    pos += 1 + bytes[pos] as usize;
                }
                Name {
                    repr: Repr::Shared {
                        bytes: Arc::clone(bytes),
                        start: pos as u16,
                        count: n as u8,
                    },
                }
            }
        }
    }

    /// Whether `self` is equal to or a subdomain of `ancestor`.
    ///
    /// Allocation-free: skips `self`'s extra leading labels (so the byte
    /// comparison is label-boundary aligned) and compares the tails.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        self.as_name_ref().ends_with(ancestor.as_name_ref())
    }

    /// Concatenates `self` (kept most-specific) with `suffix`.
    ///
    /// Used to form DLV query names: `example.com` + `dlv.isc.org` =
    /// `example.com.dlv.isc.org` (RFC 5074 §4.1).
    ///
    /// # Errors
    ///
    /// Fails if the combined name exceeds 255 wire octets.
    pub fn concat(&self, suffix: &Name) -> Result<Name, WireError> {
        let a = self.wire_labels();
        let b = suffix.wire_labels();
        let total = a.len() + b.len();
        if total + 1 > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(total + 1));
        }
        let mut buf = [0u8; MAX_NAME_LEN];
        buf[..a.len()].copy_from_slice(a);
        buf[a.len()..total].copy_from_slice(b);
        Ok(Name::from_wire(&buf[..total], self.label_count() + suffix.label_count()))
    }

    /// Prepends a single textual label.
    ///
    /// # Errors
    ///
    /// Fails on invalid labels or over-long results.
    pub fn prepend(&self, label: &str) -> Result<Name, WireError> {
        let lb = label.as_bytes();
        if lb.is_empty() {
            return Err(WireError::BadNameSyntax("empty label".into()));
        }
        if lb.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(lb.len()));
        }
        let rest = self.wire_labels();
        let total = 1 + lb.len() + rest.len();
        if total + 1 > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(total + 1));
        }
        let mut buf = [0u8; MAX_NAME_LEN];
        buf[0] = lb.len() as u8;
        for (dst, &b) in buf[1..1 + lb.len()].iter_mut().zip(lb) {
            *dst = b.to_ascii_lowercase();
        }
        buf[1 + lb.len()..total].copy_from_slice(rest);
        Ok(Name::from_wire(&buf[..total], self.label_count() + 1))
    }

    /// Strips `suffix` from the end of the name, returning the relative part.
    ///
    /// Returns `None` when `self` is not a subdomain of `suffix`. Stripping a
    /// name from itself yields the root.
    pub fn strip_suffix(&self, suffix: &Name) -> Option<Name> {
        if !self.is_subdomain_of(suffix) {
            return None;
        }
        let bytes = self.wire_labels();
        let keep = bytes.len() - suffix.wire_labels().len();
        Some(Name::from_wire(&bytes[..keep], self.label_count() - suffix.label_count()))
    }

    /// Canonical DNS name ordering (RFC 4034 §6.1): sort by the right-most
    /// label first, byte-wise per label, with absent labels sorting first.
    ///
    /// This ordering defines NSEC chains, and NSEC chains define which DLV
    /// queries the aggressive negative cache suppresses — the mechanism
    /// behind Figs. 8 and 9 of the paper. Allocation-free: label offsets go
    /// on the stack.
    pub fn canonical_cmp(&self, other: &Name) -> Ordering {
        self.as_name_ref().canonical_cmp(other.as_name_ref())
    }

    /// Encodes the name, uncompressed, appending to `buf`.
    pub fn encode_uncompressed(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.wire_labels());
        buf.push(0);
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.wire_labels() == other.wire_labels()
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.wire_labels().hash(state);
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.as_name_ref(), f)
    }
}

impl FromStr for Name {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// `Ord` for `Name` *is* the canonical ordering, so that `BTreeMap<Name, _>`
/// iterates in NSEC-chain order.
impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

/// Iterator over a name's labels, most-specific first. Never allocates.
#[derive(Clone)]
pub struct Labels<'a> {
    bytes: &'a [u8],
    count: usize,
}

impl<'a> Iterator for Labels<'a> {
    type Item = LabelRef<'a>;

    fn next(&mut self) -> Option<LabelRef<'a>> {
        if self.bytes.is_empty() {
            return None;
        }
        let l = self.bytes[0] as usize;
        let (head, tail) = self.bytes.split_at(1 + l);
        self.bytes = tail;
        self.count -= 1;
        Some(LabelRef(&head[1..]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.count, Some(self.count))
    }
}

impl ExactSizeIterator for Labels<'_> {}

/// A borrowed view of a whole name: the wire label octets plus label count.
///
/// Everything a read path needs — canonical comparison, suffix tests, label
/// iteration, display — without owning or copying the bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameRef<'a> {
    bytes: &'a [u8],
    count: u8,
}

impl<'a> NameRef<'a> {
    /// The wire octets (lower-cased length-prefixed labels, no root byte).
    pub fn wire_labels(&self) -> &'a [u8] {
        self.bytes
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.count as usize
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.count == 0
    }

    /// Octet length in uncompressed wire form.
    pub fn wire_len(&self) -> usize {
        self.bytes.len() + 1
    }

    /// Iterates the labels, most-specific first.
    pub fn labels(&self) -> Labels<'a> {
        Labels { bytes: self.bytes, count: self.count as usize }
    }

    /// Whether `self` is equal to or a subdomain of `ancestor`.
    ///
    /// Byte-tail equality alone would be wrong (a tail can match without
    /// being label-aligned, e.g. the 2-octet label `\001b` ends with the
    /// encoding of `b.`), so the extra leading labels are skipped first.
    pub fn ends_with(&self, ancestor: NameRef<'_>) -> bool {
        if ancestor.count > self.count {
            return false;
        }
        let mut pos = 0usize;
        for _ in 0..self.count - ancestor.count {
            pos += 1 + self.bytes[pos] as usize;
        }
        self.bytes[pos..] == *ancestor.bytes
    }

    /// Canonical DNS name ordering (RFC 4034 §6.1), allocation-free.
    pub fn canonical_cmp(&self, other: NameRef<'_>) -> Ordering {
        let mut aoff = [0u8; MAX_LABELS];
        let mut boff = [0u8; MAX_LABELS];
        let an = label_offsets(self.bytes, &mut aoff);
        let bn = label_offsets(other.bytes, &mut boff);
        for i in 1..=an.min(bn) {
            let la = label_at(self.bytes, aoff[an - i]);
            let lb = label_at(other.bytes, boff[bn - i]);
            match la.cmp(lb) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        an.cmp(&bn)
    }

    /// Copies the view into an owned [`Name`].
    pub fn to_name(&self) -> Name {
        Name::from_wire(self.bytes, self.count as usize)
    }
}

impl fmt::Debug for NameRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NameRef({})", self)
    }
}

impl fmt::Display for NameRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for label in self.labels() {
            write!(f, "{}.", label)?;
        }
        Ok(())
    }
}

/// Writes each label's start offset into `out`; returns the label count.
pub(crate) fn label_offsets(bytes: &[u8], out: &mut [u8; MAX_LABELS]) -> usize {
    let mut n = 0usize;
    let mut pos = 0usize;
    while pos < bytes.len() {
        out[n] = pos as u8;
        n += 1;
        pos += 1 + bytes[pos] as usize;
    }
    n
}

fn label_at(bytes: &[u8], off: u8) -> &[u8] {
    let off = off as usize;
    let len = bytes[off] as usize;
    &bytes[off + 1..off + 1 + len]
}

/// Incrementally assembles a [`Name`] from labels on a stack buffer.
///
/// Used by [`Name::parse`] and the wire decoder so a name is validated and
/// lower-cased exactly once, with at most one heap allocation (none if the
/// result fits inline).
pub struct NameBuilder {
    buf: [u8; MAX_NAME_LEN],
    len: usize,
    count: usize,
}

impl NameBuilder {
    /// An empty builder (finishing it yields the root name).
    pub fn new() -> Self {
        NameBuilder { buf: [0; MAX_NAME_LEN], len: 0, count: 0 }
    }

    /// Appends one label, lower-casing while copying.
    ///
    /// # Errors
    ///
    /// Fails on empty or over-long labels and when the name would exceed
    /// 255 wire octets.
    pub fn push_label(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if bytes.is_empty() {
            return Err(WireError::BadNameSyntax("empty label".into()));
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(bytes.len()));
        }
        let new_len = self.len + 1 + bytes.len();
        if new_len + 1 > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(new_len + 1));
        }
        self.buf[self.len] = bytes.len() as u8;
        for (dst, &b) in self.buf[self.len + 1..new_len].iter_mut().zip(bytes) {
            *dst = b.to_ascii_lowercase();
        }
        self.len = new_len;
        self.count += 1;
        Ok(())
    }

    /// Wire length (including the root byte) of the name built so far.
    pub fn wire_len(&self) -> usize {
        self.len + 1
    }

    /// Finishes the name.
    pub fn finish(&self) -> Name {
        Name::from_wire(&self.buf[..self.len], self.count)
    }
}

impl Default for NameBuilder {
    fn default() -> Self {
        NameBuilder::new()
    }
}

/// A per-worker interner for heap-backed names.
///
/// Interning maps equal names onto one shared `Arc` buffer so hot paths
/// (packet captures, caches) hold refcounted handles instead of copies.
/// Inline names are returned as-is — their `Clone` is already a stack copy.
/// Tables are deliberately *not* global: each worker/shard owns its own, so
/// parallel runs share nothing and determinism is preserved (interning can
/// never change a name's value, only where its bytes live).
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    set: HashSet<Name>,
}

impl NameTable {
    /// An empty table.
    pub fn new() -> Self {
        NameTable::default()
    }

    /// Returns a handle equal to `name`, shared with every previous intern
    /// of the same name. O(1) and allocation-free for inline names and for
    /// already-interned names.
    pub fn intern(&mut self, name: &Name) -> Name {
        if name.is_inline() {
            return name.clone();
        }
        if let Some(existing) = self.set.get(name) {
            return existing.clone();
        }
        let handle = name.clone();
        self.set.insert(handle.clone());
        handle
    }

    /// Number of distinct heap-backed names interned.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Drops all interned names.
    pub fn clear(&mut self) {
        self.set.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["example.com.", "a.b.c.d.e.", "xn--caf-dma.org.", "."] {
            assert_eq!(n(s).to_string(), s);
        }
    }

    #[test]
    fn parse_without_trailing_dot() {
        assert_eq!(n("example.com"), n("example.com."));
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(n("ExAmPlE.CoM"), n("example.com"));
        assert_eq!(n("WWW.EXAMPLE.COM").to_string(), "www.example.com.");
    }

    #[test]
    fn empty_label_rejected() {
        assert!(matches!(Name::parse("a..b"), Err(WireError::BadNameSyntax(_))));
    }

    #[test]
    fn long_label_rejected() {
        let long = "a".repeat(64);
        assert!(matches!(Name::parse(&long), Err(WireError::LabelTooLong(64))));
        assert!(Name::parse(&"a".repeat(63)).is_ok());
    }

    #[test]
    fn long_name_rejected() {
        let label = "a".repeat(63);
        let four = format!("{label}.{label}.{label}.{label}");
        assert!(matches!(Name::parse(&four), Err(WireError::NameTooLong(_))));
    }

    #[test]
    fn root_properties() {
        let r = Name::root();
        assert!(r.is_root());
        assert_eq!(r.label_count(), 0);
        assert_eq!(r.wire_len(), 1);
        assert_eq!(r.parent(), None);
        assert_eq!(r.to_string(), ".");
    }

    #[test]
    fn parent_walks_to_root() {
        let mut cur = n("a.b.c");
        let mut seen = vec![cur.to_string()];
        while let Some(p) = cur.parent() {
            seen.push(p.to_string());
            cur = p;
        }
        assert_eq!(seen, ["a.b.c.", "b.c.", "c.", "."]);
    }

    #[test]
    fn subdomain_relation() {
        assert!(n("www.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&Name::root()));
        assert!(!n("example.com").is_subdomain_of(&n("www.example.com")));
        assert!(!n("notexample.com").is_subdomain_of(&n("example.com")));
    }

    #[test]
    fn subdomain_requires_label_alignment() {
        // "kb.c" ends (byte-wise) with the wire encoding of "b.c" only if
        // the comparison ignores label boundaries; it must not match.
        assert!(!n("kb.c").is_subdomain_of(&n("b.c")));
        assert!(n("a.b.c").is_subdomain_of(&n("b.c")));
    }

    #[test]
    fn concat_forms_dlv_names() {
        let q = n("example.com").concat(&n("dlv.isc.org")).unwrap();
        assert_eq!(q.to_string(), "example.com.dlv.isc.org.");
    }

    #[test]
    fn concat_overflow_is_error() {
        let label = "a".repeat(63);
        let big = Name::parse(&format!("{label}.{label}.{label}")).unwrap();
        assert!(big.concat(&big).is_err());
    }

    #[test]
    fn strip_suffix_inverse_of_concat() {
        let dlv = n("dlv.isc.org");
        let q = n("example.com").concat(&dlv).unwrap();
        assert_eq!(q.strip_suffix(&dlv).unwrap(), n("example.com"));
        assert_eq!(q.strip_suffix(&n("other.org")), None);
        assert!(dlv.strip_suffix(&dlv).unwrap().is_root());
    }

    #[test]
    fn suffix_keeps_last_labels() {
        let name = n("a.b.c.d");
        assert_eq!(name.suffix(2), n("c.d"));
        assert!(name.suffix(0).is_root());
        assert_eq!(name.suffix(4), name);
    }

    #[test]
    #[should_panic(expected = "suffix")]
    fn suffix_out_of_range_panics() {
        n("a.b").suffix(3);
    }

    #[test]
    fn canonical_order_rfc4034_example() {
        // The worked example from RFC 4034 §6.1.
        let sorted = [
            "example.",
            "a.example.",
            "yljkjljk.a.example.",
            "z.a.example.",
            "zabc.a.example.",
            "z.example.",
        ];
        let mut names: Vec<Name> = sorted.iter().map(|s| n(s)).collect();
        names.reverse();
        names.sort_by(|a, b| a.canonical_cmp(b));
        let out: Vec<String> = names.iter().map(|x| x.to_string()).collect();
        assert_eq!(out, sorted);
    }

    #[test]
    fn ord_matches_canonical() {
        let a = n("a.example");
        let b = n("z.example");
        assert!(a < b);
        assert!(n("example") < a);
    }

    #[test]
    fn wire_len_counts_octets() {
        assert_eq!(n("example.com").wire_len(), 1 + 7 + 1 + 3 + 1);
    }

    #[test]
    fn encode_uncompressed_layout() {
        let mut buf = Vec::new();
        n("ab.c").encode_uncompressed(&mut buf);
        assert_eq!(buf, vec![2, b'a', b'b', 1, b'c', 0]);
    }

    #[test]
    fn label_display_escapes_binary() {
        let l = Label::new(&[b'a', 0x01, b'.']).unwrap();
        assert_eq!(l.to_string(), "a\\001\\.");
    }

    #[test]
    fn name_stays_compact() {
        assert!(std::mem::size_of::<Name>() <= 32, "{}", std::mem::size_of::<Name>());
    }

    #[test]
    fn short_names_are_inline_long_names_shared() {
        assert!(n("www.example.com").is_inline());
        assert!(Name::root().is_inline());
        assert!(!n("quite-long-subdomain.of.an.example.domain.test").is_inline());
    }

    #[test]
    fn inline_and_shared_compare_equal() {
        // Force a shared repr for a short logical value by slicing a long one.
        let long = n("extremely-long-prefix-padding-padding.example.com");
        let tail = long.suffix(2);
        assert!(!long.is_inline());
        assert_eq!(tail, n("example.com"));
        assert_eq!(tail.canonical_cmp(&n("example.com")), Ordering::Equal);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |name: &Name| {
            let mut s = DefaultHasher::new();
            name.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&tail), h(&n("example.com")));
    }

    #[test]
    fn shared_parent_reuses_buffer() {
        let name = n("deep.label.chain.for-a-heap-backed.example.name");
        assert!(!name.is_inline());
        let parent = name.parent().unwrap();
        // The parent's bytes are the same allocation, just offset.
        let skip = 1 + name.wire_labels()[0] as usize;
        assert!(std::ptr::eq(parent.wire_labels().as_ptr(), name.wire_labels()[skip..].as_ptr()));
    }

    #[test]
    fn labels_iterator_and_indexing() {
        let name = n("www.example.com");
        let parts: Vec<String> = name.labels().map(|l| l.to_string()).collect();
        assert_eq!(parts, ["www", "example", "com"]);
        assert_eq!(name.labels().len(), 3);
        assert_eq!(name.label(0).as_bytes(), b"www");
        assert_eq!(name.label(2).as_bytes(), b"com");
    }

    #[test]
    fn name_ref_matches_owned_semantics() {
        let a = n("a.example.com");
        let b = n("example.com");
        assert!(a.as_name_ref().ends_with(b.as_name_ref()));
        assert!(!b.as_name_ref().ends_with(a.as_name_ref()));
        assert_eq!(a.as_name_ref().canonical_cmp(b.as_name_ref()), Ordering::Greater);
        assert_eq!(a.as_name_ref().to_name(), a);
        assert_eq!(a.as_name_ref().to_string(), a.to_string());
    }

    #[test]
    fn interning_shares_storage() {
        let mut table = NameTable::new();
        let a = n("some-rather-long-host.subdomain.example.org");
        let b = n("some-rather-long-host.subdomain.example.org");
        let ia = table.intern(&a);
        let ib = table.intern(&b);
        assert_eq!(table.len(), 1);
        assert_eq!(ia, ib);
        assert!(std::ptr::eq(ia.wire_labels().as_ptr(), ib.wire_labels().as_ptr()));
        // Inline names bypass the table entirely.
        let short = table.intern(&n("a.com"));
        assert_eq!(short, n("a.com"));
        assert_eq!(table.len(), 1);
    }
}
