//! Protocol extensions proposed by the paper (§6.2) as remedies for DLV
//! privacy leakage.
//!
//! Three remedies are modelled:
//!
//! * **TXT signaling** — the authoritative server publishes a TXT record
//!   containing [`TXT_SIGNAL_PRESENT`] (`dlv=1`) or [`TXT_SIGNAL_ABSENT`]
//!   (`dlv=0`); the resolver queries it before deciding whether a DLV lookup
//!   can be useful.
//! * **Z-bit signaling** — the authoritative server sets the spare header
//!   Z bit in its responses when a DLV record is deposited; no extra queries
//!   are needed, which is why Fig. 11 shows near-zero overhead.
//! * **Hashed (privacy-preserving) DLV** — the resolver queries
//!   `crypto_hash(domain).dlv-zone` instead of `domain.dlv-zone`, so a DLV
//!   server that holds no record for the domain learns only a digest.
//!
//! This module defines the mode switch and the TXT payload grammar; the
//! behavioural halves live in `lookaside-server` and `lookaside-resolver`.

use serde::{Deserialize, Serialize};

/// TXT payload advertising a deposited DLV record.
pub const TXT_SIGNAL_PRESENT: &str = "dlv=1";
/// TXT payload advertising that no DLV record is deposited.
pub const TXT_SIGNAL_ABSENT: &str = "dlv=0";

/// Which of the paper's §6.2 remedies is active in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RemedyMode {
    /// Standard DLV behaviour: no signaling, the resolver may leak (the
    /// paper's measured baseline).
    #[default]
    None,
    /// DLV-aware DNS via TXT records (§6.2.1, "Using TXT Record").
    TxtSignal,
    /// DLV-aware DNS via the spare header Z bit (§6.2.1, "Using Z Bit").
    ZBit,
    /// Privacy-preserving DLV via hashed query names (§6.2.2).
    HashedDlv,
}

impl RemedyMode {
    /// All modes, in the order Fig. 11 compares them.
    pub const ALL: [RemedyMode; 4] =
        [RemedyMode::None, RemedyMode::TxtSignal, RemedyMode::ZBit, RemedyMode::HashedDlv];

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RemedyMode::None => "DLV",
            RemedyMode::TxtSignal => "TXT",
            RemedyMode::ZBit => "Z-bit",
            RemedyMode::HashedDlv => "hashed-DLV",
        }
    }

    /// Whether this mode adds signaling on the authoritative path.
    pub fn signals_on_path(self) -> bool {
        matches!(self, RemedyMode::TxtSignal | RemedyMode::ZBit)
    }
}

/// Parses a TXT signaling payload.
///
/// Returns `Some(true)` for `dlv=1`, `Some(false)` for `dlv=0`, and `None`
/// for anything else (unsignalled zones — the common case during incremental
/// deployment, which §6.2.3 identifies as the source of the remedy's residual
/// latency overhead).
pub fn parse_txt_signal(segments: &[String]) -> Option<bool> {
    for seg in segments {
        match seg.trim() {
            TXT_SIGNAL_PRESENT => return Some(true),
            TXT_SIGNAL_ABSENT => return Some(false),
            _ => {}
        }
    }
    None
}

/// Renders the TXT signaling payload for a zone.
pub fn txt_signal(present: bool) -> String {
    if present {
        TXT_SIGNAL_PRESENT.into()
    } else {
        TXT_SIGNAL_ABSENT.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_signal_variants() {
        assert_eq!(parse_txt_signal(&["dlv=1".into()]), Some(true));
        assert_eq!(parse_txt_signal(&["dlv=0".into()]), Some(false));
        assert_eq!(parse_txt_signal(&["v=spf1 -all".into()]), None);
        assert_eq!(parse_txt_signal(&[]), None);
        assert_eq!(parse_txt_signal(&["other".into(), "dlv=1".into()]), Some(true));
    }

    #[test]
    fn txt_signal_round_trips_through_parser() {
        assert_eq!(parse_txt_signal(&[txt_signal(true)]), Some(true));
        assert_eq!(parse_txt_signal(&[txt_signal(false)]), Some(false));
    }

    #[test]
    fn labels_are_figure11_names() {
        let labels: Vec<&str> = RemedyMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, ["DLV", "TXT", "Z-bit", "hashed-DLV"]);
    }

    #[test]
    fn only_txt_and_zbit_signal_on_path() {
        assert!(!RemedyMode::None.signals_on_path());
        assert!(RemedyMode::TxtSignal.signals_on_path());
        assert!(RemedyMode::ZBit.signals_on_path());
        assert!(!RemedyMode::HashedDlv.signals_on_path());
    }
}
