use std::fmt;

use serde::{Deserialize, Serialize};

use crate::codec::{Reader, Writer};
use crate::{Flags, Header, Name, Rcode, Record, RrClass, RrType, WireError};

/// The question section entry of a query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub rrtype: RrType,
    /// Queried class.
    pub class: RrClass,
}

/// Identifies one of the three record sections of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Section {
    /// Answer section.
    Answer,
    /// Authority section.
    Authority,
    /// Additional section.
    Additional,
}

/// EDNS(0) parameters, modelled at the message level.
///
/// On the wire this is the OPT pseudo-record (RFC 6891). The `DO` bit is how
/// a security-aware resolver signals DNSSEC capability (§2.2 of the paper);
/// `padding` models the RFC 7830 EDNS padding option discussed under related
/// work for hiding query sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edns {
    /// Advertised UDP payload size.
    pub udp_size: u16,
    /// The DNSSEC OK bit.
    pub do_bit: bool,
    /// Octets of RFC 7830 padding to include.
    pub padding: u16,
}

impl Default for Edns {
    fn default() -> Self {
        Edns { udp_size: 4096, do_bit: false, padding: 0 }
    }
}

impl Edns {
    /// An EDNS block with the `DO` bit set, as sent by validating resolvers.
    pub fn dnssec_ok() -> Self {
        Edns { do_bit: true, ..Edns::default() }
    }
}

/// A complete DNS message.
///
/// # Example
///
/// ```
/// use lookaside_wire::{Message, Name, Rcode, RrType};
///
/// let query = Message::query(7, Name::parse("example.com.")?, RrType::Dlv);
/// let mut response = query.response();
/// response.header.flags.rcode = Rcode::NxDomain;
/// assert!(response.is_nxdomain());
/// # Ok::<(), lookaside_wire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Header (counts are recomputed on encode).
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (excluding the OPT pseudo-record).
    pub additionals: Vec<Record>,
    /// EDNS(0) parameters, if present.
    pub edns: Option<Edns>,
}

impl Message {
    /// Builds a recursive-desired query for `name`/`rrtype`.
    pub fn query(id: u16, name: Name, rrtype: RrType) -> Self {
        Message {
            header: Header {
                id,
                flags: Flags { rd: true, ..Flags::default() },
                ..Header::default()
            },
            questions: vec![Question { name, rrtype, class: RrClass::In }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: None,
        }
    }

    /// Builds a query with the EDNS `DO` bit set, as a security-aware
    /// resolver sends.
    pub fn dnssec_query(id: u16, name: Name, rrtype: RrType) -> Self {
        let mut m = Message::query(id, name, rrtype);
        m.edns = Some(Edns::dnssec_ok());
        m
    }

    /// Creates an empty response skeleton for this query: same id and
    /// question, `qr` set, `rd` copied.
    pub fn response(&self) -> Message {
        Message {
            header: Header {
                id: self.header.id,
                flags: Flags {
                    qr: true,
                    rd: self.header.flags.rd,
                    cd: self.header.flags.cd,
                    ..Flags::default()
                },
                ..Header::default()
            },
            questions: self.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: self.edns.map(|e| Edns { padding: 0, ..e }),
        }
    }

    /// The first (and in this study, only) question.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Whether the query/response advertises DNSSEC capability.
    pub fn do_bit(&self) -> bool {
        self.edns.is_some_and(|e| e.do_bit)
    }

    /// The response code.
    pub fn rcode(&self) -> Rcode {
        self.header.flags.rcode
    }

    /// Whether this is an NXDOMAIN ("No such name") response.
    pub fn is_nxdomain(&self) -> bool {
        self.rcode() == Rcode::NxDomain
    }

    /// All answer records of the given type.
    pub fn answers_of(&self, rrtype: RrType) -> impl Iterator<Item = &Record> {
        self.answers.iter().filter(move |r| r.rrtype == rrtype)
    }

    /// All authority records of the given type.
    pub fn authorities_of(&self, rrtype: RrType) -> impl Iterator<Item = &Record> {
        self.authorities.iter().filter(move |r| r.rrtype == rrtype)
    }

    /// All additional records of the given type.
    pub fn additionals_of(&self, rrtype: RrType) -> impl Iterator<Item = &Record> {
        self.additionals.iter().filter(move |r| r.rrtype == rrtype)
    }

    /// Appends a record to `section`.
    pub fn push(&mut self, section: Section, record: Record) {
        match section {
            Section::Answer => self.answers.push(record),
            Section::Authority => self.authorities.push(record),
            Section::Additional => self.additionals.push(record),
        }
    }

    /// Encodes to wire bytes, recomputing section counts and materialising
    /// the OPT record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.render_with(&mut w);
        w.into_bytes()
    }

    /// Encodes into an existing [`Writer`] (call [`Writer::reset`] first to
    /// reuse one) — the allocation-free rendering path behind
    /// [`crate::RenderArena`]. Produces exactly the bytes of
    /// [`Message::to_bytes`].
    // lint:entry(hot-path)
    pub fn render_with(&self, w: &mut Writer) {
        let mut header = self.header;
        header.qdcount = self.questions.len() as u16;
        header.ancount = self.answers.len() as u16;
        header.nscount = self.authorities.len() as u16;
        header.arcount = (self.additionals.len() + usize::from(self.edns.is_some())) as u16;

        // The header is six big-endian u16 fields (RFC 1035 §4.1.1),
        // written directly so rendering borrows no scratch buffer.
        w.write_u16(header.id);
        w.write_u16(header.flags.to_u16());
        w.write_u16(header.qdcount);
        w.write_u16(header.ancount);
        w.write_u16(header.nscount);
        w.write_u16(header.arcount);

        for q in &self.questions {
            w.write_name(&q.name);
            w.write_u16(q.rrtype.code());
            w.write_u16(q.class.code());
        }
        for rec in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            rec.encode(w);
        }
        if let Some(edns) = self.edns {
            // OPT pseudo-record: root owner, type 41, class = udp size,
            // ttl = extended rcode/flags with DO at bit 15 of the low half.
            w.write_u8(0); // root name
            w.write_u16(RrType::Opt.code());
            w.write_u16(edns.udp_size);
            let ttl: u32 = if edns.do_bit { 0x0000_8000 } else { 0 };
            w.write_u32(ttl);
            if edns.padding > 0 {
                // One option: code 12 (padding), given length of zeros.
                w.write_u16(4 + edns.padding);
                w.write_u16(12);
                w.write_u16(edns.padding);
                w.write_bytes(&vec![0u8; edns.padding as usize]);
            } else {
                w.write_u16(0);
            }
        }
    }

    /// Size of the encoded message in octets.
    ///
    /// Allocates a fresh buffer per call; hot paths that size many
    /// messages should prefer [`crate::RenderArena::measure`], which
    /// reuses one.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Decodes a message from wire bytes.
    ///
    /// # Errors
    ///
    /// Fails on any truncation, malformed name, or malformed RDATA.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() > u16::MAX as usize {
            return Err(WireError::MessageTooLong(bytes.len()));
        }
        let header = Header::decode(bytes)?;
        let mut r = Reader::new(bytes);
        r.seek(Header::WIRE_LEN)?;

        let mut questions = Vec::with_capacity(header.qdcount as usize);
        for found in 0..header.qdcount {
            if r.remaining() == 0 {
                // The header promised more questions than the body holds:
                // diagnose the count mismatch rather than a bare
                // truncation, so corrupted-count datagrams classify
                // distinctly (RFC 1035 §4.1.1 counts are untrusted input).
                return Err(WireError::CountMismatch {
                    section: "question",
                    declared: header.qdcount,
                    found,
                });
            }
            let name = r.read_name()?;
            let rrtype = RrType::from_code(r.read_u16("question type")?);
            let class = RrClass::from_code(r.read_u16("question class")?);
            questions.push(Question { name, rrtype, class });
        }

        let read_section = |section: &'static str,
                            count: u16,
                            r: &mut Reader<'_>|
         -> Result<Vec<Record>, WireError> {
            let mut records = Vec::with_capacity(count as usize);
            for found in 0..count {
                if r.remaining() == 0 {
                    return Err(WireError::CountMismatch { section, declared: count, found });
                }
                records.push(Record::decode(r)?);
            }
            Ok(records)
        };
        let answers = read_section("answer", header.ancount, &mut r)?;
        let authorities = read_section("authority", header.nscount, &mut r)?;
        let raw_additionals = read_section("additional", header.arcount, &mut r)?;

        let mut additionals = Vec::with_capacity(raw_additionals.len());
        let mut edns = None;
        for rec in raw_additionals {
            if rec.rrtype == RrType::Opt {
                let udp_size = rec.class.code();
                let do_bit = rec.ttl & 0x0000_8000 != 0;
                let padding = match &rec.rdata {
                    crate::RData::Unknown(bytes) => match bytes.as_slice() {
                        [c0, c1, l0, l1, ..] => {
                            let code = u16::from_be_bytes([*c0, *c1]);
                            let len = u16::from_be_bytes([*l0, *l1]);
                            if code == 12 {
                                len
                            } else {
                                0
                            }
                        }
                        _ => 0,
                    },
                    _ => 0,
                };
                edns = Some(Edns { udp_size, do_bit, padding });
            } else {
                additionals.push(rec);
            }
        }

        Ok(Message { header, questions, answers, authorities, additionals, edns })
    }
}

/// A fluent builder for responses, used by the simulated servers.
///
/// # Example
///
/// ```
/// use lookaside_wire::{Message, MessageBuilder, Name, RData, Rcode, RrType, Record};
///
/// let query = Message::query(9, Name::parse("example.com.")?, RrType::A);
/// let resp = MessageBuilder::respond_to(&query)
///     .authoritative(true)
///     .answer(Record::new(
///         Name::parse("example.com.")?,
///         300,
///         RData::A("192.0.2.1".parse().unwrap()),
///     ))
///     .build();
/// assert_eq!(resp.rcode(), Rcode::NoError);
/// assert_eq!(resp.answers.len(), 1);
/// # Ok::<(), lookaside_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct MessageBuilder {
    message: Message,
}

impl MessageBuilder {
    /// Starts a response to `query`.
    pub fn respond_to(query: &Message) -> Self {
        MessageBuilder { message: query.response() }
    }

    /// Sets the response code.
    pub fn rcode(mut self, rcode: Rcode) -> Self {
        self.message.header.flags.rcode = rcode;
        self
    }

    /// Sets the authoritative-answer bit.
    pub fn authoritative(mut self, aa: bool) -> Self {
        self.message.header.flags.aa = aa;
        self
    }

    /// Sets the recursion-available bit.
    pub fn recursion_available(mut self, ra: bool) -> Self {
        self.message.header.flags.ra = ra;
        self
    }

    /// Sets the authenticated-data bit.
    pub fn authenticated(mut self, ad: bool) -> Self {
        self.message.header.flags.ad = ad;
        self
    }

    /// Sets the reserved Z bit (the paper's §6.2.1 remedy signal).
    pub fn z_bit(mut self, z: bool) -> Self {
        self.message.header.flags.z = z;
        self
    }

    /// Appends an answer record.
    pub fn answer(mut self, record: Record) -> Self {
        self.message.answers.push(record);
        self
    }

    /// Appends several answer records.
    pub fn answers<I: IntoIterator<Item = Record>>(mut self, records: I) -> Self {
        self.message.answers.extend(records);
        self
    }

    /// Appends an authority record.
    pub fn authority(mut self, record: Record) -> Self {
        self.message.authorities.push(record);
        self
    }

    /// Appends several authority records.
    pub fn authorities<I: IntoIterator<Item = Record>>(mut self, records: I) -> Self {
        self.message.authorities.extend(records);
        self
    }

    /// Appends an additional record.
    pub fn additional(mut self, record: Record) -> Self {
        self.message.additionals.push(record);
        self
    }

    /// Finishes the response.
    pub fn build(self) -> Message {
        self.message
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.header.flags.qr { "response" } else { "query" };
        write!(f, "{} id={} {}", kind, self.header.id, self.rcode())?;
        if let Some(q) = self.question() {
            write!(f, " {} {}", q.name, q.rrtype)?;
        }
        write!(
            f,
            " [{} ans, {} auth, {} add]",
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RData;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(42, n("example.com"), RrType::A);
        let back = Message::from_bytes(&q.to_bytes()).unwrap();
        assert_eq!(back.header.id, 42);
        assert_eq!(back.question().unwrap().name, n("example.com"));
        assert_eq!(back.question().unwrap().rrtype, RrType::A);
        assert!(back.header.flags.rd);
        assert!(back.edns.is_none());
    }

    #[test]
    fn dnssec_query_carries_do_bit() {
        let q = Message::dnssec_query(1, n("example.com"), RrType::A);
        assert!(q.do_bit());
        let back = Message::from_bytes(&q.to_bytes()).unwrap();
        assert!(back.do_bit());
        assert_eq!(back.edns.unwrap().udp_size, 4096);
    }

    #[test]
    fn dlv_query_round_trips_type_code() {
        let q = Message::dnssec_query(2, n("example.com.dlv.isc.org"), RrType::Dlv);
        let back = Message::from_bytes(&q.to_bytes()).unwrap();
        assert_eq!(back.question().unwrap().rrtype, RrType::Dlv);
        assert_eq!(back.question().unwrap().rrtype.code(), 32769);
    }

    #[test]
    fn full_response_round_trip() {
        let q = Message::dnssec_query(3, n("www.example.com"), RrType::A);
        let resp = MessageBuilder::respond_to(&q)
            .authoritative(true)
            .authenticated(true)
            .answer(Record::new(n("www.example.com"), 300, RData::A(Ipv4Addr::new(192, 0, 2, 8))))
            .authority(Record::new(n("example.com"), 3600, RData::Ns(n("ns1.example.com"))))
            .additional(Record::new(
                n("ns1.example.com"),
                3600,
                RData::A(Ipv4Addr::new(192, 0, 2, 53)),
            ))
            .build();
        let bytes = resp.to_bytes();
        let back = Message::from_bytes(&bytes).unwrap();
        assert_eq!(
            back,
            Message {
                header: Header { qdcount: 1, ancount: 1, nscount: 1, arcount: 2, ..back.header },
                ..resp
            }
        );
        assert!(back.header.flags.aa);
        assert!(back.header.flags.ad);
        assert_eq!(back.answers.len(), 1);
        assert_eq!(back.authorities.len(), 1);
        assert_eq!(back.additionals.len(), 1);
    }

    #[test]
    fn z_bit_survives_round_trip() {
        let q = Message::query(4, n("example.com"), RrType::A);
        let resp = MessageBuilder::respond_to(&q).z_bit(true).build();
        let back = Message::from_bytes(&resp.to_bytes()).unwrap();
        assert!(back.header.flags.z);
    }

    #[test]
    fn padding_inflates_wire_size() {
        let mut q = Message::query(5, n("example.com"), RrType::A);
        q.edns = Some(Edns { udp_size: 4096, do_bit: false, padding: 0 });
        let plain = q.wire_len();
        q.edns = Some(Edns { udp_size: 4096, do_bit: false, padding: 64 });
        let padded = q.wire_len();
        assert_eq!(padded, plain + 64 + 4);
        let back = Message::from_bytes(&q.to_bytes()).unwrap();
        assert_eq!(back.edns.unwrap().padding, 64);
    }

    #[test]
    fn compression_shrinks_messages() {
        let q = Message::query(6, n("www.example.com"), RrType::A);
        let mut resp = MessageBuilder::respond_to(&q)
            .answer(Record::new(n("www.example.com"), 300, RData::A(Ipv4Addr::new(192, 0, 2, 1))))
            .build();
        let compressed = resp.wire_len();
        // Rough check: the repeated owner name costs 2 (pointer) not 17.
        resp.answers[0].name = n("xxx.example.net");
        let less_compressed = resp.wire_len();
        assert!(compressed < less_compressed);
    }

    #[test]
    fn response_copies_question_and_id() {
        let q = Message::query(77, n("a.b"), RrType::Mx);
        let r = q.response();
        assert_eq!(r.header.id, 77);
        assert!(r.header.flags.qr);
        assert_eq!(r.question(), q.question());
    }

    #[test]
    fn decode_garbage_is_error_not_panic() {
        for len in 0..32 {
            let junk = vec![0xffu8; len];
            let _ = Message::from_bytes(&junk); // must not panic
        }
        assert!(Message::from_bytes(&[0xff; 11]).is_err());
    }

    #[test]
    fn inflated_section_count_is_a_count_mismatch() {
        let query = Message::query(7, Name::parse("example.com.").unwrap(), RrType::A);
        let mut bytes = query.to_bytes();
        // Claim 3 answers; the body holds none.
        bytes[6] = 0;
        bytes[7] = 3;
        match Message::from_bytes(&bytes) {
            Err(WireError::CountMismatch { section, declared, found }) => {
                assert_eq!(section, "answer");
                assert_eq!(declared, 3);
                assert_eq!(found, 0);
            }
            other => panic!("expected CountMismatch, got {other:?}"),
        }
        // An inflated question count classifies the same way.
        let mut bytes = query.to_bytes();
        bytes[4] = 0;
        bytes[5] = 9;
        assert!(matches!(
            Message::from_bytes(&bytes),
            Err(WireError::CountMismatch { section: "question", .. })
        ));
    }
}
