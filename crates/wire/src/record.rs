use std::fmt;

use serde::{Deserialize, Serialize};

use crate::codec::{Reader, Writer};
use crate::{Name, RData, RrClass, RrType, WireError};

/// A single resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Record type. Kept explicitly so `RData::Unknown` records preserve
    /// their type code.
    pub rrtype: RrType,
    /// Record class.
    pub class: RrClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl Record {
    /// Creates an `IN`-class record, taking the type from the data.
    ///
    /// # Panics
    ///
    /// Panics if `rdata` is [`RData::Unknown`]; use the struct literal and
    /// supply the type code explicitly for unknown data.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        let rrtype = rdata
            .rrtype()
            // lint:allow(panic::expect) -- documented contract panic (see "# Panics" above): RData::Unknown must use the struct literal
            .expect("Record::new requires typed rdata; construct unknown records explicitly");
        Record { name, rrtype, class: RrClass::In, ttl, rdata }
    }

    /// Encodes the record, appending to `w`. The owner name may be
    /// compressed against earlier names in the message.
    pub fn encode(&self, w: &mut Writer) {
        w.write_name(&self.name);
        w.write_u16(self.rrtype.code());
        w.write_u16(self.class.code());
        w.write_u32(self.ttl);
        let len_pos = w.reserve_u16();
        let before = w.len();
        self.rdata.encode(w);
        let rdlen = w.len() - before;
        w.patch_u16(len_pos, rdlen as u16);
    }

    /// Decodes one record at the reader's position.
    ///
    /// # Errors
    ///
    /// Propagates any [`WireError`] from name or RDATA decoding.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = r.read_name()?;
        let rrtype = RrType::from_code(r.read_u16("record type")?);
        let class = RrClass::from_code(r.read_u16("record class")?);
        let ttl = r.read_u32("record ttl")?;
        let rdlen = r.read_u16("rdata length")? as usize;
        let rdata = RData::decode(rrtype, r, rdlen)?;
        Ok(Record { name, rrtype, class, ttl, rdata })
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {} {}", self.name, self.ttl, self.class, self.rrtype, self.rdata)
    }
}

/// A set of records sharing an owner name, type, and class (RFC 2181 §5).
///
/// RRsets are the unit of DNSSEC signing: one RRSIG covers one RRset, and
/// caches store whole RRsets.
///
/// # Example
///
/// ```
/// use lookaside_wire::{Name, RData, RrSet};
///
/// let mut set = RrSet::single(
///     Name::parse("example.com.")?,
///     300,
///     RData::A("192.0.2.1".parse().unwrap()),
/// );
/// set.push(RData::A("192.0.2.2".parse().unwrap()));
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.to_records().len(), 2);
/// # Ok::<(), lookaside_wire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrSet {
    /// Owner name.
    pub name: Name,
    /// Set type.
    pub rrtype: RrType,
    /// TTL shared by all members.
    pub ttl: u32,
    /// The member data, in insertion order.
    pub rdatas: Vec<RData>,
}

impl RrSet {
    /// Creates an RRset with a single member.
    pub fn single(name: Name, ttl: u32, rdata: RData) -> Self {
        // lint:allow(panic::expect) -- contract panic mirroring Record::new: untyped rdata must construct the set explicitly
        let rrtype = rdata.rrtype().expect("RrSet::single requires typed rdata");
        RrSet { name, rrtype, ttl, rdatas: vec![rdata] }
    }

    /// Creates an empty RRset of the given type.
    pub fn empty(name: Name, rrtype: RrType, ttl: u32) -> Self {
        RrSet { name, rrtype, ttl, rdatas: Vec::new() }
    }

    /// Adds a member.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the member's type disagrees with the set's.
    pub fn push(&mut self, rdata: RData) {
        debug_assert_eq!(rdata.rrtype(), Some(self.rrtype));
        self.rdatas.push(rdata);
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.rdatas.len()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.rdatas.is_empty()
    }

    /// Expands the set into individual [`Record`]s.
    pub fn to_records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.rdatas.len());
        self.append_records_into(&mut out);
        out
    }

    /// Appends the set's members to `out` as individual [`Record`]s — the
    /// buffer-reusing form of [`RrSet::to_records`], for callers that hold
    /// a scratch `Vec` across queries (the streaming steady state).
    pub fn append_records_into(&self, out: &mut Vec<Record>) {
        out.reserve(self.rdatas.len());
        for rd in &self.rdatas {
            out.push(Record {
                name: self.name.clone(),
                rrtype: self.rrtype,
                class: RrClass::In,
                ttl: self.ttl,
                rdata: rd.clone(),
            });
        }
    }

    /// The canonical signing input for this RRset (RFC 4034 §3.1.8.1):
    /// each member as `owner | type | class | ttl | rdlen | rdata`, with the
    /// members sorted by their canonical RDATA encoding.
    pub fn canonical_signing_input(&self) -> Vec<u8> {
        let mut encoded: Vec<Vec<u8>> = self
            .rdatas
            .iter()
            .map(|rd| {
                let mut w = Writer::new();
                rd.encode(&mut w);
                w.into_bytes()
            })
            .collect();
        encoded.sort();
        let mut out = Vec::new();
        for rdata in encoded {
            self.name.encode_uncompressed(&mut out);
            out.extend_from_slice(&self.rrtype.code().to_be_bytes());
            out.extend_from_slice(&RrClass::In.code().to_be_bytes());
            out.extend_from_slice(&self.ttl.to_be_bytes());
            out.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
            out.extend_from_slice(&rdata);
        }
        out
    }
}

impl FromIterator<Record> for Vec<RrSet> {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        let mut sets: Vec<RrSet> = Vec::new();
        for rec in iter {
            if let Some(set) =
                sets.iter_mut().find(|s| s.name == rec.name && s.rrtype == rec.rrtype)
            {
                set.rdatas.push(rec.rdata);
            } else {
                sets.push(RrSet {
                    name: rec.name,
                    rrtype: rec.rrtype,
                    ttl: rec.ttl,
                    rdatas: vec![rec.rdata],
                });
            }
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a(s: &str, last: u8) -> Record {
        Record::new(name(s), 300, RData::A(Ipv4Addr::new(192, 0, 2, last)))
    }

    #[test]
    fn record_round_trip() {
        let rec = a("www.example.com", 1);
        let mut w = Writer::new();
        rec.encode(&mut w);
        let bytes = w.into_bytes();
        let back = Record::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn record_display_is_zone_file_like() {
        let rec = a("www.example.com", 1);
        assert_eq!(rec.to_string(), "www.example.com. 300 IN A 192.0.2.1");
    }

    #[test]
    fn rrset_groups_records() {
        let records = vec![a("x.com", 1), a("x.com", 2), a("y.com", 1)];
        let sets: Vec<RrSet> = records.into_iter().collect();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].len(), 2);
        assert_eq!(sets[1].len(), 1);
    }

    #[test]
    fn canonical_signing_input_is_order_independent() {
        let mut s1 = RrSet::single(name("x.com"), 60, RData::A(Ipv4Addr::new(192, 0, 2, 9)));
        s1.push(RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        let mut s2 = RrSet::single(name("x.com"), 60, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        s2.push(RData::A(Ipv4Addr::new(192, 0, 2, 9)));
        assert_eq!(s1.canonical_signing_input(), s2.canonical_signing_input());
    }

    #[test]
    fn canonical_signing_input_binds_name_and_type() {
        let s1 = RrSet::single(name("x.com"), 60, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        let s2 = RrSet::single(name("y.com"), 60, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        assert_ne!(s1.canonical_signing_input(), s2.canonical_signing_input());
    }

    #[test]
    fn to_records_preserves_fields() {
        let mut set = RrSet::single(name("x.com"), 60, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        set.push(RData::A(Ipv4Addr::new(192, 0, 2, 2)));
        let recs = set.to_records();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.name == name("x.com") && r.ttl == 60));
    }
}
