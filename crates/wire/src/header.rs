use std::fmt;

use serde::{Deserialize, Serialize};

use crate::WireError;

/// DNS message opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Opcode {
    /// Standard query (0).
    #[default]
    Query,
    /// Any other opcode the simulator does not model.
    Other(u8),
}

impl Opcode {
    /// Numeric opcode.
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(c) => c,
        }
    }

    /// Maps an opcode value back.
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => Opcode::Query,
            other => Opcode::Other(other),
        }
    }
}

/// DNS response codes.
///
/// The DLV server only ever answers `NoError` ("the queried domain is
/// validated by DLV records deposited in the DLV server") or `NxDomain`
/// ("No such name"), which is exactly how §5.3 of the paper classifies
/// validation utility versus leakage.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum Rcode {
    /// No error (0).
    #[default]
    NoError,
    /// Format error (1).
    FormErr,
    /// Server failure (2) — what a validating resolver returns for bogus or
    /// indeterminate answers.
    ServFail,
    /// Non-existent domain (3).
    NxDomain,
    /// Not implemented (4).
    NotImp,
    /// Query refused (5).
    Refused,
    /// Any other rcode.
    Other(u8),
}

impl Rcode {
    /// Numeric rcode.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c,
        }
    }

    /// Maps an rcode value back.
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Other(c) => write!(f, "RCODE{c}"),
        }
    }
}

/// The flag bits of a DNS header.
///
/// Besides the classic RFC 1035 bits this models:
///
/// * `ad` / `cd` — the DNSSEC Authenticated Data and Checking Disabled bits
///   (RFC 4035 §3.2),
/// * `z` — the single remaining reserved bit. §6.2.1 of the paper proposes
///   using it ("Using Z Bit") in responses to signal that the zone has a DLV
///   record deposited, so the resolver knows whether a DLV query is useful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Flags {
    /// Query (false) or response (true).
    pub qr: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncation.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// The reserved "Z" bit — the paper's proposed DLV-presence signal.
    pub z: bool,
    /// Authenticated data (set by a validating resolver on secure answers).
    pub ad: bool,
    /// Checking disabled (set by clients that do their own validation).
    pub cd: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Flags {
    /// Packs the flags into the 16-bit wire representation.
    pub fn to_u16(self) -> u16 {
        let mut v = 0u16;
        if self.qr {
            v |= 0x8000;
        }
        v |= ((self.opcode.code() & 0x0f) as u16) << 11;
        if self.aa {
            v |= 0x0400;
        }
        if self.tc {
            v |= 0x0200;
        }
        if self.rd {
            v |= 0x0100;
        }
        if self.ra {
            v |= 0x0080;
        }
        if self.z {
            v |= 0x0040;
        }
        if self.ad {
            v |= 0x0020;
        }
        if self.cd {
            v |= 0x0010;
        }
        v |= (self.rcode.code() & 0x0f) as u16;
        v
    }

    /// Unpacks the 16-bit wire representation.
    pub fn from_u16(v: u16) -> Self {
        Flags {
            qr: v & 0x8000 != 0,
            opcode: Opcode::from_code(((v >> 11) & 0x0f) as u8),
            aa: v & 0x0400 != 0,
            tc: v & 0x0200 != 0,
            rd: v & 0x0100 != 0,
            ra: v & 0x0080 != 0,
            z: v & 0x0040 != 0,
            ad: v & 0x0020 != 0,
            cd: v & 0x0010 != 0,
            rcode: Rcode::from_code((v & 0x0f) as u8),
        }
    }
}

/// A DNS message header (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Header {
    /// Transaction identifier.
    pub id: u16,
    /// Flag bits.
    pub flags: Flags,
    /// Question count.
    pub qdcount: u16,
    /// Answer count.
    pub ancount: u16,
    /// Authority count.
    pub nscount: u16,
    /// Additional count.
    pub arcount: u16,
}

impl Header {
    /// Wire size of a header, always 12 octets.
    pub const WIRE_LEN: usize = 12;

    /// Encodes the header, appending to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_be_bytes());
        buf.extend_from_slice(&self.flags.to_u16().to_be_bytes());
        buf.extend_from_slice(&self.qdcount.to_be_bytes());
        buf.extend_from_slice(&self.ancount.to_be_bytes());
        buf.extend_from_slice(&self.nscount.to_be_bytes());
        buf.extend_from_slice(&self.arcount.to_be_bytes());
    }

    /// Decodes a header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than 12 octets are present.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let [i0, i1, f0, f1, q0, q1, a0, a1, n0, n1, r0, r1, ..] = *bytes else {
            return Err(WireError::Truncated { context: "header" });
        };
        Ok(Header {
            id: u16::from_be_bytes([i0, i1]),
            flags: Flags::from_u16(u16::from_be_bytes([f0, f1])),
            qdcount: u16::from_be_bytes([q0, q1]),
            ancount: u16::from_be_bytes([a0, a1]),
            nscount: u16::from_be_bytes([n0, n1]),
            arcount: u16::from_be_bytes([r0, r1]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_round_trip_every_bit() {
        for bit in 0..10 {
            let mut f = Flags::default();
            match bit {
                0 => f.qr = true,
                1 => f.aa = true,
                2 => f.tc = true,
                3 => f.rd = true,
                4 => f.ra = true,
                5 => f.z = true,
                6 => f.ad = true,
                7 => f.cd = true,
                8 => f.rcode = Rcode::NxDomain,
                _ => f.opcode = Opcode::Other(2),
            }
            assert_eq!(Flags::from_u16(f.to_u16()), f, "bit {bit}");
        }
    }

    #[test]
    fn z_bit_is_0x40() {
        let f = Flags { z: true, ..Flags::default() };
        assert_eq!(f.to_u16(), 0x0040);
    }

    #[test]
    fn header_round_trip() {
        let h = Header {
            id: 0xbeef,
            flags: Flags { qr: true, ra: true, ad: true, ..Flags::default() },
            qdcount: 1,
            ancount: 2,
            nscount: 3,
            arcount: 4,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), Header::WIRE_LEN);
        assert_eq!(Header::decode(&buf).unwrap(), h);
    }

    #[test]
    fn header_decode_truncated() {
        assert!(matches!(Header::decode(&[0; 11]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn rcode_display() {
        assert_eq!(Rcode::NxDomain.to_string(), "NXDOMAIN");
        assert_eq!(Rcode::NoError.to_string(), "NOERROR");
    }
}
