//! Property-based tests for the wire layer: parsing, canonical ordering,
//! and codec round-trips over arbitrary inputs.

use proptest::prelude::*;

use lookaside_wire::codec::{Reader, Writer};
use lookaside_wire::{Message, Name, RData, Record, RrType, TypeBitmap};

fn label_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14}[a-z0-9])?").expect("valid regex")
}

fn name_strategy() -> impl Strategy<Value = Name> {
    proptest::collection::vec(label_strategy(), 1..6)
        .prop_map(|labels| Name::parse(&labels.join(".")).expect("generated names are valid"))
}

fn mixed_case_label_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9]([a-zA-Z0-9-]{0,14}[a-zA-Z0-9])?")
        .expect("valid regex")
}

fn mixed_case_name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(mixed_case_label_strategy(), 1..6).prop_map(|labels| labels.join("."))
}

/// RFC 4034 §6.1 canonical ordering over an explicit label-vector model —
/// the representation (and semantics) `Name` had before the compact byte
/// buffer: compare label sequences right to left, each label as
/// lower-cased raw bytes, with a missing (shorter) sequence sorting first.
fn reference_canonical_cmp(a: &Name, b: &Name) -> std::cmp::Ordering {
    let la: Vec<Vec<u8>> = a.labels().map(|l| l.as_bytes().to_ascii_lowercase()).collect();
    let lb: Vec<Vec<u8>> = b.labels().map(|l| l.as_bytes().to_ascii_lowercase()).collect();
    for (x, y) in la.iter().rev().zip(lb.iter().rev()) {
        match x.cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    la.len().cmp(&lb.len())
}

proptest! {
    #[test]
    fn parse_display_round_trip(name in name_strategy()) {
        let text = name.to_string();
        let back = Name::parse(&text).unwrap();
        prop_assert_eq!(back, name);
    }

    #[test]
    fn wire_round_trip_uncompressed(name in name_strategy()) {
        let mut buf = Vec::new();
        name.encode_uncompressed(&mut buf);
        prop_assert_eq!(buf.len(), name.wire_len());
        let mut reader = Reader::new(&buf);
        prop_assert_eq!(reader.read_name().unwrap(), name);
    }

    #[test]
    fn compressed_names_round_trip(names in proptest::collection::vec(name_strategy(), 1..8)) {
        let mut w = Writer::new();
        for name in &names {
            w.write_name(name);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for name in &names {
            prop_assert_eq!(&r.read_name().unwrap(), name);
        }
    }

    #[test]
    fn canonical_order_is_total_and_consistent(
        a in name_strategy(),
        b in name_strategy(),
        c in name_strategy(),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.canonical_cmp(&b), b.canonical_cmp(&a).reverse());
        // Reflexivity via equality.
        prop_assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
        // Transitivity (spot form): if a<=b and b<=c then a<=c.
        if a.canonical_cmp(&b) != Ordering::Greater && b.canonical_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.canonical_cmp(&c), Ordering::Greater);
        }
    }

    #[test]
    fn parent_is_strictly_smaller_suffix(name in name_strategy()) {
        if let Some(parent) = name.parent() {
            prop_assert!(name.is_subdomain_of(&parent));
            prop_assert!(!parent.is_subdomain_of(&name) || parent == name);
            prop_assert_eq!(parent.label_count() + 1, name.label_count());
        }
    }

    #[test]
    fn concat_strip_inverse(a in name_strategy(), b in name_strategy()) {
        if let Ok(joined) = a.concat(&b) {
            prop_assert_eq!(joined.strip_suffix(&b).unwrap(), a);
            prop_assert!(joined.is_subdomain_of(&b));
        }
    }

    #[test]
    fn type_bitmap_round_trip(codes in proptest::collection::btree_set(0u16..=40_000, 0..40)) {
        let bm: TypeBitmap = codes.iter().map(|&c| RrType::from_code(c)).collect();
        let mut buf = Vec::new();
        bm.encode(&mut buf);
        let back = TypeBitmap::decode(&buf).unwrap();
        prop_assert_eq!(back, bm);
    }

    #[test]
    fn message_round_trip_with_records(
        qname in name_strategy(),
        owners in proptest::collection::vec(name_strategy(), 0..6),
        ttl in 0u32..1_000_000,
    ) {
        let mut msg = Message::dnssec_query(1, qname, RrType::A);
        msg.header.flags.qr = true;
        for (i, owner) in owners.iter().enumerate() {
            msg.answers.push(Record::new(
                owner.clone(),
                ttl,
                RData::A(std::net::Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
            ));
        }
        let back = Message::from_bytes(&msg.to_bytes()).unwrap();
        prop_assert_eq!(back.answers.len(), msg.answers.len());
        for (a, b) in back.answers.iter().zip(&msg.answers) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn canonical_order_matches_label_vector_model(
        a in name_strategy(),
        b in name_strategy(),
    ) {
        prop_assert_eq!(a.canonical_cmp(&b), reference_canonical_cmp(&a, &b));
    }

    #[test]
    fn mixed_case_names_normalise_and_round_trip(text in mixed_case_name_strategy()) {
        let name = Name::parse(&text).unwrap();
        let lower = Name::parse(&text.to_ascii_lowercase()).unwrap();
        // The compact representation lower-cases at construction, exactly
        // as the old `Label`-vector Eq/Ord did at comparison time.
        prop_assert_eq!(&name, &lower);
        prop_assert_eq!(name.canonical_cmp(&lower), std::cmp::Ordering::Equal);

        // Codec round-trip: uncompressed and compressed forms both decode
        // back to the same (normalised) name.
        let mut buf = Vec::new();
        name.encode_uncompressed(&mut buf);
        prop_assert_eq!(Reader::new(&buf).read_name().unwrap(), name.clone());
        let mut w = Writer::new();
        w.write_name(&name);
        w.write_name(&lower); // second write must compress against the first
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.read_name().unwrap(), name.clone());
        prop_assert_eq!(r.read_name().unwrap(), name);
    }

    #[test]
    fn decoder_never_panics_on_junk(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::from_bytes(&bytes);
    }

    #[test]
    fn truncating_valid_messages_never_panics(
        qname in name_strategy(),
        cut in 0usize..64,
    ) {
        let msg = Message::dnssec_query(7, qname, RrType::Dlv);
        let bytes = msg.to_bytes();
        let cut = cut.min(bytes.len());
        let _ = Message::from_bytes(&bytes[..cut]);
    }

    #[test]
    fn corrupted_messages_decode_to_typed_errors_or_valid_messages(
        qname in name_strategy(),
        owners in proptest::collection::vec(name_strategy(), 0..5),
        salt in any::<u64>(),
    ) {
        let bytes = rendered_message(&qname, &owners).to_bytes();
        let mangled = mutate(&bytes, salt);
        // Either a typed error or a message that itself survives a full
        // re-encode/decode cycle: corruption must never panic or hang,
        // whatever it hits (counts, names, pointers, rdata lengths).
        if let Ok(msg) = Message::from_bytes(&mangled) {
            prop_assert!(Message::from_bytes(&msg.to_bytes()).is_ok());
        }
    }
}

/// A representative rendered response: question + EDNS + a mix of rdata
/// shapes (addresses, text, names) so mutations can strike every decoder.
fn rendered_message(qname: &Name, owners: &[Name]) -> Message {
    let mut msg = Message::dnssec_query(0x1cef, qname.clone(), RrType::A);
    msg.header.flags.qr = true;
    for (i, owner) in owners.iter().enumerate() {
        let rdata = match i % 3 {
            0 => RData::A(std::net::Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
            1 => RData::Txt(vec![format!("segment-{i}")]),
            _ => RData::Cname(qname.clone()),
        };
        msg.answers.push(Record::new(owner.clone(), 300, rdata));
    }
    msg
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Applies a seeded mutation: bit flips, byte overwrites, or a truncation
/// — the same corruption classes the netsim fault plane injects.
fn mutate(bytes: &[u8], salt: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    match salt % 3 {
        0 => {
            // Flip 1–8 seeded bits anywhere in the datagram.
            for i in 0..=(salt % 8) {
                let roll = splitmix64(salt.wrapping_add(i));
                let pos = (roll as usize) % out.len();
                out[pos] ^= 1 << ((roll >> 32) % 8);
            }
        }
        1 => {
            // Overwrite a seeded run of bytes with seeded garbage.
            let start = (splitmix64(salt) as usize) % out.len();
            let len = 1 + (splitmix64(salt ^ 0xb0b) as usize) % 8;
            for (i, b) in out.iter_mut().skip(start).take(len).enumerate() {
                *b = (splitmix64(salt.wrapping_add(i as u64)) & 0xff) as u8;
            }
        }
        _ => {
            // Truncate at a seeded cut point.
            let cut = (splitmix64(salt) as usize) % out.len();
            out.truncate(cut);
        }
    }
    out
}

/// The CI gate: 10 000 seeded corruption cases over a fixed corpus, fully
/// deterministic (no proptest RNG involved), asserting the decoder neither
/// panics nor loops. Bit-flip cases can strike compression pointers; the
/// reader's jump bound keeps decoding finite.
#[test]
fn corruption_fuzz_fixed_seed_10k() {
    let qname = Name::parse("registry.example.dlv.isc.org.").unwrap();
    let owners: Vec<Name> =
        (0..4).map(|i| Name::parse(&format!("host-{i}.example.org.")).unwrap()).collect();
    let corpus = [
        rendered_message(&qname, &owners).to_bytes(),
        rendered_message(&qname, &[]).to_bytes(),
        Message::dnssec_query(0x5eed, qname.clone(), RrType::Dlv).to_bytes(),
    ];
    let mut decoded = 0u32;
    let mut rejected = 0u32;
    for case in 0..10_000u64 {
        let salt = splitmix64(0xdecade ^ case);
        let bytes = &corpus[(case % corpus.len() as u64) as usize];
        match Message::from_bytes(&mutate(bytes, salt)) {
            Ok(msg) => {
                decoded += 1;
                assert!(Message::from_bytes(&msg.to_bytes()).is_ok());
            }
            Err(_) => rejected += 1,
        }
    }
    assert_eq!(decoded + rejected, 10_000);
    assert!(rejected > 0, "some corruptions must be rejected");
    assert!(decoded > 0, "some corruptions must still decode");
}
