//! The 45 DNSSEC-secured domains of the paper's §4.2 (the "Huque list").
//!
//! The original list is no longer retrievable; what matters for §5.2 is its
//! composition: 45 signed domains, of which 5 lack a DS in their parent
//! zone — islands of security — and are therefore sent to the DLV server
//! even under a fully correct configuration.

use lookaside_wire::Name;
use serde::{Deserialize, Serialize};

/// One domain of the secured list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HuqueDomain {
    /// Domain name (`huqueNN.<tld>`).
    pub name: Name,
    /// Always signed.
    pub signed: bool,
    /// DS present in the parent (false for the 5 islands).
    pub ds_in_parent: bool,
    /// Whether the island deposited a DLV record (2 of the 5 do, so both
    /// Case-1 and Case-2 island behaviour is exercised).
    pub deposited: bool,
    /// Seed for the zone's signing keys.
    pub key_seed: u64,
}

/// Builds the 45-domain corpus: indices 0–4 are islands (0 and 2
/// deposited), 5–44 are fully secured.
pub fn huque45() -> Vec<HuqueDomain> {
    let tlds = ["com", "net", "org", "edu"];
    (0..45)
        .map(|i| {
            let tld = tlds[i % tlds.len()];
            let island = i < 5;
            HuqueDomain {
                name: Name::parse(&format!("huque{i:02}.{tld}.")).expect("valid name"),
                signed: true,
                ds_in_parent: !island,
                deposited: island && (i == 0 || i == 2),
                key_seed: 0x4855_0000 + i as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_shape_matches_section_5_2() {
        let corpus = huque45();
        assert_eq!(corpus.len(), 45);
        assert!(corpus.iter().all(|d| d.signed));
        let islands: Vec<&HuqueDomain> = corpus.iter().filter(|d| !d.ds_in_parent).collect();
        assert_eq!(islands.len(), 5, "five islands of security");
        assert_eq!(islands.iter().filter(|d| d.deposited).count(), 2);
        assert!(corpus.iter().filter(|d| d.ds_in_parent).all(|d| !d.deposited));
    }

    #[test]
    fn names_are_unique() {
        let corpus = huque45();
        let mut names: Vec<String> = corpus.iter().map(|d| d.name.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 45);
    }
}
