//! The synthetic ranked domain population.
//!
//! Domains are named `d{rank:07}.{tld}` with zero-padded ranks so that
//! numeric and canonical DNS order coincide — which makes the DLV
//! registry's NSEC spans align with rank intervals and keeps the
//! repository-density calibration analytic (see [`RepoDensity`]).

use std::net::Ipv4Addr;

use lookaside_wire::Name;
use serde::{Deserialize, Serialize};

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One TLD of the synthetic mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TldInfo {
    /// TLD label (no dots).
    pub label: &'static str,
    /// Popularity weight, per mille.
    pub weight_milli: u16,
    /// Whether the TLD zone is DNSSEC-signed (≈85 % of TLDs were in 2016).
    pub signed: bool,
}

/// The default TLD mix: 15 TLDs, 12 signed (80 %), com-heavy like the real
/// Alexa list.
pub const TLDS: [TldInfo; 15] = [
    TldInfo { label: "com", weight_milli: 480, signed: true },
    TldInfo { label: "net", weight_milli: 120, signed: true },
    TldInfo { label: "org", weight_milli: 90, signed: true },
    TldInfo { label: "info", weight_milli: 50, signed: true },
    TldInfo { label: "ru", weight_milli: 45, signed: false },
    TldInfo { label: "de", weight_milli: 40, signed: true },
    TldInfo { label: "uk", weight_milli: 35, signed: true },
    TldInfo { label: "cn", weight_milli: 30, signed: false },
    TldInfo { label: "biz", weight_milli: 25, signed: true },
    TldInfo { label: "edu", weight_milli: 20, signed: true },
    TldInfo { label: "jp", weight_milli: 15, signed: false },
    TldInfo { label: "fr", weight_milli: 15, signed: true },
    TldInfo { label: "nl", weight_milli: 12, signed: true },
    TldInfo { label: "br", weight_milli: 12, signed: true },
    TldInfo { label: "io", weight_milli: 11, signed: false },
];

/// Rank-dependent inclusion density of the DLV repository's entries.
///
/// The repository holds "neighbour" zones whose names sit canonically next
/// to ranked query names. A rank `r` neighbour is included with probability
/// `clamp(a − b·log10(r), 0.02, 0.95)`. Because every included neighbour
/// starts a fresh NSEC span, the number of *distinct spans* the top-N
/// queries touch — i.e. the leaked-query count of Fig. 8 — is ≈
/// `Σ_{r≤N} π(r)`, whose proportion decays linearly in `log N` exactly as
/// Fig. 9 reports. Defaults are calibrated to the paper's anchors
/// (≈84 % at N=100, ≈6.8 % at N=1M).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepoDensity {
    /// Intercept of the density line.
    pub a: f64,
    /// Slope per decade of rank.
    pub b: f64,
}

impl Default for RepoDensity {
    fn default() -> Self {
        // Calibrated against the paper's anchors: leaked(100) ≈ 84,
        // leaked(1k) ≈ 647, leaked(10k) ≈ 4 539, leaked(100k) ≈ 26 111,
        // leaked(1M) ≈ 67 838 (Figs. 8–9). The published proportions are
        // almost exactly linear in log10(N), so a two-point fit recovers
        // the whole series.
        RepoDensity { a: 1.21, b: 0.2045 }
    }
}

impl RepoDensity {
    /// Inclusion probability of the rank-`r` neighbour.
    pub fn pi(&self, rank: usize) -> f64 {
        let r = rank.max(1) as f64;
        (self.a - self.b * r.log10()).clamp(0.005, 0.95)
    }
}

/// Parameters of the synthetic population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationParams {
    /// Number of ranked domains.
    pub size: usize,
    /// Master seed.
    pub seed: u64,
    /// Per-mille of SLDs that are DNSSEC-signed (paper §1: ≈3 %).
    pub signed_milli: u16,
    /// Per-mille of signed SLDs that also have a DS in the parent; the rest
    /// are islands of security.
    pub ds_given_signed_milli: u16,
    /// Per-mille of islands that deposited a DLV record (Case-1 density).
    pub deposited_given_island_milli: u16,
    /// Per-mille of domains that run their own (in-bailiwick, glued) name
    /// servers; the rest use a hosting provider (glueless).
    pub self_hosted_milli: u16,
    /// Number of hosting providers.
    pub hoster_pool: usize,
    /// Zipf exponent of hoster popularity.
    pub hoster_zipf_s: f64,
    /// DLV repository neighbour density.
    pub repo: RepoDensity,
}

impl Default for PopulationParams {
    fn default() -> Self {
        PopulationParams {
            size: 1_000_000,
            seed: 2016,
            signed_milli: 30,
            ds_given_signed_milli: 600,
            deposited_given_island_milli: 300,
            self_hosted_milli: 350,
            hoster_pool: 3000,
            hoster_zipf_s: 0.8,
            repo: RepoDensity::default(),
        }
    }
}

/// Attributes of one ranked domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DomainAttrs {
    /// 1-based popularity rank.
    pub rank: usize,
    /// The domain name, e.g. `d0000042.com.`.
    pub name: Name,
    /// Its TLD label.
    pub tld: &'static str,
    /// DNSSEC-signed?
    pub signed: bool,
    /// DS published in the parent (only meaningful when signed)?
    pub ds_in_parent: bool,
    /// DLV record deposited (only islands deposit)?
    pub deposited: bool,
    /// Seed for the zone's signing keys.
    pub key_seed: u64,
    /// Runs its own name servers (glued at the TLD)?
    pub self_hosted: bool,
    /// Hosting provider index when not self-hosted.
    pub hoster: Option<usize>,
    /// Address its zone content is served from.
    pub server_addr: Ipv4Addr,
}

/// Attributes of one hosting provider (its own SLD zone, serving
/// `ns1`/`ns2` host records for customers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HosterAttrs {
    /// Provider index.
    pub index: usize,
    /// The provider's domain, e.g. `h0042.net.`.
    pub name: Name,
    /// Its TLD label.
    pub tld: &'static str,
    /// DNSSEC-signed?
    pub signed: bool,
    /// DS in parent?
    pub ds_in_parent: bool,
    /// Seed for its signing keys.
    pub key_seed: u64,
    /// Address its zone (and its customers' NS hosts) are served from.
    pub server_addr: Ipv4Addr,
}

/// Anything the population recognises by name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum PopEntry {
    /// A ranked domain.
    Domain(DomainAttrs),
    /// A hosting provider's own domain.
    Hoster(HosterAttrs),
}

impl PopEntry {
    /// The entry's SLD apex.
    pub fn apex(&self) -> &Name {
        match self {
            PopEntry::Domain(d) => &d.name,
            PopEntry::Hoster(h) => &h.name,
        }
    }
}

/// The synthetic ranked population (see module docs).
///
/// # Example
///
/// ```
/// use lookaside_workload::{DomainPopulation, PopEntry, PopulationParams};
///
/// let pop = DomainPopulation::new(PopulationParams { size: 1_000, ..Default::default() });
/// let name = pop.domain(1);
/// let attrs = pop.attributes(1);
/// assert_eq!(attrs.name, name);
/// // Names invert back to their entries, even for subdomains.
/// match pop.entry_of(&name.prepend("www").unwrap()) {
///     Some(PopEntry::Domain(d)) => assert_eq!(d.rank, 1),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct DomainPopulation {
    params: PopulationParams,
    tld_cum: Vec<(u16, usize)>, // cumulative weight → TLD index
    hoster_zipf: crate::zipf::Zipf,
}

impl DomainPopulation {
    /// Builds a population.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds 9 999 999 (the rank field is
    /// seven digits).
    pub fn new(params: PopulationParams) -> Self {
        assert!(params.size > 0 && params.size <= 9_999_999, "size out of range");
        let mut tld_cum = Vec::with_capacity(TLDS.len());
        let mut acc = 0u16;
        for (i, tld) in TLDS.iter().enumerate() {
            acc += tld.weight_milli;
            tld_cum.push((acc, i));
        }
        debug_assert_eq!(acc, 1000);
        let hoster_zipf = crate::zipf::Zipf::new(params.hoster_pool, params.hoster_zipf_s);
        DomainPopulation { params, tld_cum, hoster_zipf }
    }

    /// The parameters in force.
    pub fn params(&self) -> &PopulationParams {
        &self.params
    }

    /// Number of ranked domains.
    pub fn size(&self) -> usize {
        self.params.size
    }

    fn tld_of_rank(&self, rank: usize) -> &'static TldInfo {
        let roll = (mix(self.params.seed ^ 0x746c64, rank as u64) % 1000) as u16;
        let idx = self
            .tld_cum
            .iter()
            .find(|(cum, _)| roll < *cum)
            .map(|(_, i)| *i)
            .unwrap_or(TLDS.len() - 1);
        &TLDS[idx]
    }

    fn roll(&self, salt: u64, key: u64, milli: u16) -> bool {
        mix(self.params.seed ^ salt, key) % 1000 < u64::from(milli)
    }

    /// The rank-`r` domain name.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is 0 or beyond the population size.
    pub fn domain(&self, rank: usize) -> Name {
        assert!(rank >= 1 && rank <= self.params.size, "rank {rank} out of range");
        let tld = self.tld_of_rank(rank);
        Name::parse(&format!("d{rank:07}.{}", tld.label)).expect("generated name is valid")
    }

    /// Full attributes of the rank-`r` domain.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn attributes(&self, rank: usize) -> DomainAttrs {
        let name = self.domain(rank);
        let tld = self.tld_of_rank(rank);
        let signed = self.roll(0x7369, rank as u64, self.params.signed_milli);
        let ds_in_parent = signed
            && tld.signed
            && self.roll(0x6473, rank as u64, self.params.ds_given_signed_milli);
        let island = signed && !ds_in_parent;
        let deposited =
            island && self.roll(0x646c76, rank as u64, self.params.deposited_given_island_milli);
        let self_hosted = self.roll(0x6e73, rank as u64, self.params.self_hosted_milli);
        let hoster = if self_hosted {
            None
        } else {
            Some(self.hoster_zipf.sample_hash(mix(self.params.seed ^ 0x686f73, rank as u64)) - 1)
        };
        DomainAttrs {
            rank,
            name,
            tld: tld.label,
            signed,
            ds_in_parent,
            deposited,
            key_seed: mix(self.params.seed ^ 0x6b6579, rank as u64),
            self_hosted,
            hoster,
            server_addr: Self::addr_from(mix(self.params.seed ^ 0x61646472, rank as u64)),
        }
    }

    /// Attributes of hosting provider `index` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index` is beyond the pool size.
    pub fn hoster(&self, index: usize) -> HosterAttrs {
        assert!(index < self.params.hoster_pool, "hoster {index} out of range");
        let tld = {
            let roll = (mix(self.params.seed ^ 0x6874_6c64, index as u64) % 1000) as u16;
            let idx =
                self.tld_cum.iter().find(|(cum, _)| roll < *cum).map(|(_, i)| *i).unwrap_or(0);
            &TLDS[idx]
        };
        let signed = self.roll(0x687369, index as u64, 100);
        let ds_in_parent = signed && tld.signed && self.roll(0x686473, index as u64, 500);
        HosterAttrs {
            index,
            name: Name::parse(&format!("h{index:04}.{}", tld.label)).expect("valid hoster name"),
            tld: tld.label,
            signed,
            ds_in_parent,
            key_seed: mix(self.params.seed ^ 0x686b6579, index as u64),
            server_addr: Self::addr_from(mix(self.params.seed ^ 0x68616464, index as u64) | 0x8000),
        }
    }

    fn addr_from(h: u64) -> Ipv4Addr {
        // 10.64.0.0/10-ish content range, away from the infrastructure
        // addresses the harness assigns.
        let b = 64 + ((h >> 16) % 64) as u8;
        let c = ((h >> 8) & 0xff) as u8;
        let d = 1 + (h % 254) as u8;
        Ipv4Addr::new(10, b, c, d)
    }

    /// Parses a name back into a population entry: the SLD apex of `qname`
    /// must be `d{rank:07}.{tld}` or `h{idx:04}.{tld}` with a matching TLD
    /// assignment.
    pub fn entry_of(&self, qname: &Name) -> Option<PopEntry> {
        if qname.label_count() < 2 {
            return None;
        }
        let apex = qname.suffix(2);
        let sld = apex.label(0).to_string();
        let tld = apex.label(1).to_string();
        let rest = &sld[1..];
        if sld.starts_with('d') && rest.len() == 7 && rest.bytes().all(|b| b.is_ascii_digit()) {
            let rank: usize = rest.parse().ok()?;
            if rank == 0 || rank > self.params.size {
                return None;
            }
            let attrs = self.attributes(rank);
            if attrs.tld != tld {
                return None;
            }
            return Some(PopEntry::Domain(attrs));
        }
        if sld.starts_with('h') && rest.len() == 4 && rest.bytes().all(|b| b.is_ascii_digit()) {
            let index: usize = rest.parse().ok()?;
            if index >= self.params.hoster_pool {
                return None;
            }
            let attrs = self.hoster(index);
            if attrs.tld != tld {
                return None;
            }
            return Some(PopEntry::Hoster(attrs));
        }
        None
    }

    /// Whether the rank-`r` repository *neighbour* is included in the DLV
    /// registry (see [`RepoDensity`]).
    pub fn repo_neighbour_included(&self, rank: usize) -> bool {
        let p = self.params.repo.pi(rank);
        let roll = mix(self.params.seed ^ 0x7265706f, rank as u64) % 1_000_000;
        (roll as f64) < p * 1_000_000.0
    }

    /// The repository neighbour name for rank `r`: canonically immediately
    /// after `d{rank:07}.{tld}` (the trailing `x` sorts after every digit).
    pub fn repo_neighbour_name(&self, rank: usize) -> Name {
        let tld = self.tld_of_rank(rank);
        Name::parse(&format!("d{rank:07}x.{}", tld.label)).expect("valid neighbour name")
    }

    /// Key seed for a repository neighbour's fictional zone keys.
    pub fn repo_neighbour_key_seed(&self, rank: usize) -> u64 {
        mix(self.params.seed ^ 0x726b6579, rank as u64)
    }

    /// Iterates all included repository neighbour ranks up to `limit`.
    pub fn repo_neighbours(&self, limit: usize) -> impl Iterator<Item = usize> + '_ {
        (1..=limit.min(self.params.size)).filter(move |&r| self.repo_neighbour_included(r))
    }

    /// Iterates ranked domains deposited in the registry, up to `limit`.
    pub fn deposited_ranks(&self, limit: usize) -> impl Iterator<Item = usize> + '_ {
        (1..=limit.min(self.params.size)).filter(move |&r| self.attributes(r).deposited)
    }

    /// Borrowed iterator over the names of a half-open rank range
    /// `lo..hi` (1-based ranks, `hi` exclusive) — the shard-friendly view
    /// of the query list. Concatenating `rank_range` over a partition of
    /// `1..n+1` in order yields exactly [`DomainPopulation::top`]`(n)`,
    /// because each name is a pure function of its rank.
    ///
    /// # Panics
    ///
    /// Panics if the range starts at rank 0 or ends beyond `size + 1`.
    pub fn rank_range(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = Name> + '_ {
        assert!(range.start >= 1, "ranks are 1-based");
        assert!(range.end <= self.params.size + 1, "range end {} out of range", range.end);
        range.map(|r| self.domain(r))
    }

    /// The top-`n` query list (ranks 1..=n).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the population size.
    pub fn top(&self, n: usize) -> Vec<Name> {
        assert!(n <= self.params.size);
        self.rank_range(1..n + 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(size: usize) -> DomainPopulation {
        DomainPopulation::new(PopulationParams { size, ..PopulationParams::default() })
    }

    #[test]
    fn names_are_zero_padded_and_parse_back() {
        let p = pop(100_000);
        for rank in [1usize, 42, 9_999, 100_000] {
            let name = p.domain(rank);
            let sld = name.label(0).to_string();
            assert_eq!(sld.len(), 8, "d + 7 digits in {name}");
            match p.entry_of(&name) {
                Some(PopEntry::Domain(attrs)) => assert_eq!(attrs.rank, rank),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn entry_of_rejects_foreign_names() {
        let p = pop(1000);
        for s in ["example.com.", "d0001001.com.", "d01.com.", "h9999.com.", "dabcdefg.com."] {
            let name = Name::parse(s).unwrap();
            // d0001001 exceeds size 1000; others malformed or wrong TLD.
            if let Some(entry) = p.entry_of(&name) {
                panic!("{s} should not resolve to {entry:?}");
            }
        }
    }

    #[test]
    fn entry_of_handles_subdomains() {
        let p = pop(1000);
        let name = p.domain(7);
        let www = name.prepend("www").unwrap();
        match p.entry_of(&www) {
            Some(PopEntry::Domain(attrs)) => assert_eq!(attrs.rank, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attributes_are_deterministic() {
        let a = pop(10_000);
        let b = pop(10_000);
        for rank in 1..200 {
            assert_eq!(a.attributes(rank), b.attributes(rank));
        }
    }

    #[test]
    fn deployment_rates_are_near_targets() {
        let p = pop(200_000);
        let n = 50_000;
        let mut signed = 0usize;
        let mut islands = 0usize;
        let mut deposited = 0usize;
        let mut self_hosted = 0usize;
        for rank in 1..=n {
            let a = p.attributes(rank);
            signed += usize::from(a.signed);
            islands += usize::from(a.signed && !a.ds_in_parent);
            deposited += usize::from(a.deposited);
            self_hosted += usize::from(a.self_hosted);
        }
        let pct = |x: usize| x as f64 / n as f64 * 100.0;
        assert!((2.5..3.5).contains(&pct(signed)), "signed {}%", pct(signed));
        // Islands: signed × (1 − ds|signed ≈ 0.6 of *signed-TLD* domains);
        // unsigned TLDs make every signed child an island, so expect a bit
        // above 40 % of signed.
        assert!(islands > signed * 35 / 100 && islands < signed * 65 / 100);
        assert!(deposited < islands && deposited > islands / 10);
        assert!((30.0..40.0).contains(&pct(self_hosted)));
    }

    #[test]
    fn tld_mix_is_com_heavy() {
        let p = pop(100_000);
        let n = 20_000;
        let com = (1..=n).filter(|&r| p.attributes(r).tld == "com").count();
        let frac = com as f64 / n as f64;
        assert!((0.44..0.52).contains(&frac), "com fraction {frac}");
    }

    #[test]
    fn repo_density_decays_with_rank() {
        let d = RepoDensity::default();
        assert!(d.pi(1) > d.pi(100));
        assert!(d.pi(100) > d.pi(1_000_000));
        assert!(d.pi(1_000_000) >= 0.005);
        assert!(d.pi(1) <= 0.95);
    }

    #[test]
    fn repo_neighbour_sorts_immediately_after_domain() {
        let p = pop(10_000);
        for rank in [1usize, 500, 10_000] {
            let d = p.domain(rank);
            let nb = p.repo_neighbour_name(rank);
            assert_eq!(d.canonical_cmp(&nb), std::cmp::Ordering::Less);
            if rank < p.size() {
                // The next ranked domain in the same TLD must sort after the
                // neighbour; spot-check with rank+1 when TLDs happen to match.
                let next = p.domain(rank + 1);
                if p.attributes(rank + 1).tld == p.attributes(rank).tld {
                    assert_eq!(nb.canonical_cmp(&next), std::cmp::Ordering::Less);
                }
            }
        }
    }

    #[test]
    fn repo_inclusion_matches_density_roughly() {
        let p = pop(1_000_000);
        let included_top100 = p.repo_neighbours(100).count();
        // π̄ over 1..100 ≈ 0.87 with clamping; allow sampling slack.
        assert!((75..95).contains(&included_top100), "top-100 inclusions {included_top100}");
        let included_10k = p.repo_neighbours(10_000).count();
        assert!((4_200..5_200).contains(&included_10k), "top-10k inclusions {included_10k}");
    }

    #[test]
    fn hosters_have_stable_attrs_and_valid_names() {
        let p = pop(1000);
        let h = p.hoster(42);
        assert_eq!(h.index, 42);
        assert_eq!(h.name.to_string(), format!("h0042.{}.", h.tld));
        match p.entry_of(&h.name.prepend("ns1").unwrap()) {
            Some(PopEntry::Hoster(back)) => assert_eq!(back, h),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn addresses_avoid_infrastructure_range() {
        let p = pop(10_000);
        for rank in 1..500 {
            let addr = p.attributes(rank).server_addr;
            let oct = addr.octets();
            assert_eq!(oct[0], 10);
            assert!((64..128).contains(&oct[1]), "{addr}");
            assert_ne!(oct[3], 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_zero_panics() {
        pop(10).domain(0);
    }
}
