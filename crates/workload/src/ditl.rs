//! A DITL-style recursive-resolver trace (Fig. 12 of the paper).
//!
//! The paper uses a 7-hour Day-In-The-Life capture: per-minute query rates
//! fluctuating between 160 000 and 360 000 queries/minute, totalling
//! 92 705 013 queries. The trace itself is unavailable, so this module
//! generates one with the same envelope and exact total.

use serde::{Deserialize, Serialize};

/// Total queries of the paper's trace.
pub const DITL_TOTAL_QUERIES: u64 = 92_705_013;
/// Trace length in minutes (7 hours).
pub const DITL_MINUTES: usize = 420;

const RATE_MIN: u64 = 160_000;
const RATE_MAX: u64 = 360_000;

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A generated per-minute query-volume trace.
///
/// # Example
///
/// ```
/// use lookaside_workload::{DitlTrace, DITL_TOTAL_QUERIES};
///
/// let trace = DitlTrace::generate(1);
/// assert_eq!(trace.total(), DITL_TOTAL_QUERIES);
/// assert_eq!(trace.per_minute().len(), 420);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DitlTrace {
    per_minute: Vec<u64>,
}

impl DitlTrace {
    /// Generates a 420-minute trace with a diurnal-ish envelope plus noise,
    /// clipped to the paper's 160k–360k band, scaled to the exact total.
    pub fn generate(seed: u64) -> Self {
        let mut raw: Vec<f64> = (0..DITL_MINUTES)
            .map(|t| {
                let phase = t as f64 / DITL_MINUTES as f64 * std::f64::consts::TAU;
                let envelope = 250_000.0 + 70_000.0 * (phase - 0.8).sin();
                let noise = (mix(seed, t as u64) % 60_000) as f64 - 30_000.0;
                envelope + noise
            })
            .collect();
        // Scale to the target total, then clip and absorb the residue in a
        // few mid-range minutes so every value stays inside the band.
        let sum: f64 = raw.iter().sum();
        let scale = DITL_TOTAL_QUERIES as f64 / sum;
        for v in &mut raw {
            *v = (*v * scale).clamp((RATE_MIN + 1_000) as f64, (RATE_MAX - 1_000) as f64);
        }
        let mut per_minute: Vec<u64> = raw.iter().map(|v| *v as u64).collect();
        let mut diff = DITL_TOTAL_QUERIES as i64 - per_minute.iter().sum::<u64>() as i64;
        let mut idx = 0usize;
        while diff != 0 {
            let step = diff.signum();
            let v = &mut per_minute[idx % DITL_MINUTES];
            let candidate = (*v as i64 + step) as u64;
            if (RATE_MIN..=RATE_MAX).contains(&candidate) {
                *v = candidate;
                diff -= step;
            }
            idx += 1;
        }
        DitlTrace { per_minute }
    }

    /// Per-minute query counts (420 entries).
    pub fn per_minute(&self) -> &[u64] {
        &self.per_minute
    }

    /// Total query count (always [`DITL_TOTAL_QUERIES`]).
    pub fn total(&self) -> u64 {
        self.per_minute.iter().sum()
    }

    /// Cumulative query counts per minute — Fig. 12b.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.per_minute
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect()
    }

    /// Mean query rate per second.
    pub fn mean_qps(&self) -> f64 {
        self.total() as f64 / (DITL_MINUTES as f64 * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_exact() {
        let trace = DitlTrace::generate(1);
        assert_eq!(trace.total(), DITL_TOTAL_QUERIES);
        assert_eq!(trace.per_minute().len(), DITL_MINUTES);
    }

    #[test]
    fn rates_stay_in_the_paper_band() {
        let trace = DitlTrace::generate(2);
        for (t, &v) in trace.per_minute().iter().enumerate() {
            assert!((RATE_MIN..=RATE_MAX).contains(&v), "minute {t}: {v}");
        }
    }

    #[test]
    fn rates_fluctuate() {
        let trace = DitlTrace::generate(3);
        let min = *trace.per_minute().iter().min().unwrap();
        let max = *trace.per_minute().iter().max().unwrap();
        assert!(max - min > 50_000, "envelope should vary (min {min}, max {max})");
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_total() {
        let trace = DitlTrace::generate(4);
        let cum = trace.cumulative();
        assert!(cum.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*cum.last().unwrap(), DITL_TOTAL_QUERIES);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(DitlTrace::generate(7), DitlTrace::generate(7));
        assert_ne!(DitlTrace::generate(7), DitlTrace::generate(8));
    }

    #[test]
    fn mean_qps_matches_paper_range() {
        // Paper: 2,667–6,000 qps; 92.7M over 7h ≈ 3,678 qps.
        let qps = DitlTrace::generate(5).mean_qps();
        assert!((3_600.0..3_760.0).contains(&qps), "qps {qps}");
    }
}
