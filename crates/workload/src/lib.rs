//! Synthetic workloads for the DLV privacy study.
//!
//! The paper measures against datasets this environment cannot reach
//! (Alexa's top 1M of 2016, the live ISC DLV repository, a DITL trace), so
//! this crate generates statistically calibrated stand-ins:
//!
//! * [`DomainPopulation`] — a ranked domain universe with a realistic TLD
//!   mix, DNSSEC deployment rates from the paper (§1, §6.1.1), island-of-
//!   security and DLV-deposit densities, and a hosting-provider model that
//!   produces the glueless-NS traffic of Table 4,
//! * repository calibration — the DLV registry's contents are placed so
//!   that the *mechanistic* NSEC-span caching reproduces the decaying leak
//!   proportion of Figs. 8–9 (see [`population::RepoDensity`]),
//! * [`huque45`] — the 45 DNSSEC-secured domains of §4.2/§5.2 (40 with DS,
//!   5 islands of security),
//! * [`DitlTrace`] — a 7-hour, 92.7M-query recursive-resolver trace with
//!   the per-minute rate envelope of Fig. 12,
//! * [`survey`] — the DNS-OARC 2015 operator survey responses of §5.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ditl;
mod huque;
mod population;
mod survey;
mod zipf;

pub use ditl::{DitlTrace, DITL_MINUTES, DITL_TOTAL_QUERIES};
pub use huque::{huque45, HuqueDomain};
pub use population::{
    DomainAttrs, DomainPopulation, HosterAttrs, PopEntry, PopulationParams, RepoDensity, TldInfo,
    TLDS,
};
pub use survey::{survey, Survey};
pub use zipf::Zipf;
