//! The DNS-OARC 2015 operator survey reported in §5.2 of the paper.

use serde::{Deserialize, Serialize};

/// The published survey results: 56 operators running their own recursive
/// resolvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Survey {
    /// Total respondents.
    pub total: u32,
    /// Use package-installer defaults (apt-get or yum).
    pub package_defaults: u32,
    /// Use defaults after a manual install.
    pub manual_defaults: u32,
    /// Use their own configuration.
    pub own_config: u32,
    /// Use ISC's DLV server.
    pub isc_dlv: u32,
    /// Use other trust anchors.
    pub other_anchors: u32,
}

/// The paper's reported numbers.
pub fn survey() -> Survey {
    Survey {
        total: 56,
        package_defaults: 17,
        manual_defaults: 5,
        own_config: 34,
        isc_dlv: 35,
        other_anchors: 21,
    }
}

impl Survey {
    /// Percentage helper.
    pub fn pct(&self, count: u32) -> f64 {
        f64::from(count) / f64::from(self.total) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_sum_to_total() {
        let s = survey();
        assert_eq!(s.package_defaults + s.manual_defaults + s.own_config, s.total);
        assert_eq!(s.isc_dlv + s.other_anchors, s.total);
    }

    #[test]
    fn percentages_match_paper() {
        let s = survey();
        assert!((s.pct(s.package_defaults) - 30.35).abs() < 0.1);
        assert!((s.pct(s.manual_defaults) - 8.9).abs() < 0.1);
        assert!((s.pct(s.own_config) - 60.7).abs() < 0.1);
        assert!((s.pct(s.isc_dlv) - 62.5).abs() < 0.1);
    }
}
