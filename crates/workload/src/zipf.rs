//! A simple Zipf sampler over ranks `1..=n`.

/// Zipf distribution with exponent `s` over `1..=n`, sampled by CDF
/// inversion.
///
/// # Example
///
/// ```
/// use lookaside_workload::Zipf;
///
/// let zipf = Zipf::new(100, 1.0);
/// assert_eq!(zipf.sample(0.0), 1); // lowest ranks dominate
/// assert!(zipf.sample_hash(u64::MAX / 2) <= 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `1..=n` from a uniform `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf")) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Samples from a hash value (uniform over `u64`).
    pub fn sample_hash(&self, h: u64) -> usize {
        self.sample(h as f64 / u64::MAX as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_ends_at_one() {
        let z = Zipf::new(100, 1.0);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_bounds() {
        let z = Zipf::new(50, 0.8);
        assert_eq!(z.sample(0.0), 1);
        assert_eq!(z.sample(1.0), 50);
        for i in 0..1000 {
            let u = i as f64 / 1000.0;
            let k = z.sample(u);
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut head = 0usize;
        for i in 0..10_000u64 {
            let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
            if z.sample_hash(h) <= 10 {
                head += 1;
            }
        }
        // Top-10 mass of Zipf(1) over 1000 ≈ 39%.
        assert!((2_500..5_500).contains(&head), "head draws {head}");
    }

    #[test]
    fn monotone_in_u() {
        let z = Zipf::new(20, 1.2);
        let mut last = 0;
        for i in 0..=100 {
            let k = z.sample(i as f64 / 100.0);
            assert!(k >= last);
            last = k;
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zero_support_panics() {
        Zipf::new(0, 1.0);
    }
}
