use lookaside_workload::{DomainPopulation, PopulationParams};
fn main() {
    let p =
        DomainPopulation::new(PopulationParams { size: 1_000_000, ..PopulationParams::default() });
    for n in [100usize, 1000, 10_000, 100_000, 1_000_000] {
        let inc = p.repo_neighbours(n).count();
        let dep = p.deposited_ranks(n).count();
        println!("N={n}: included={inc} deposited={dep}");
    }
}
