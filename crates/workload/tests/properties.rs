//! Property-based tests for the workload generators.

use proptest::prelude::*;

use lookaside_workload::{DitlTrace, DomainPopulation, PopEntry, PopulationParams, Zipf};

fn pop(size: usize, seed: u64) -> DomainPopulation {
    DomainPopulation::new(PopulationParams { size, seed, ..PopulationParams::default() })
}

proptest! {
    #[test]
    fn entry_of_inverts_domain(seed in any::<u64>(), rank in 1usize..5_000) {
        let p = pop(5_000, seed);
        let name = p.domain(rank);
        match p.entry_of(&name) {
            Some(PopEntry::Domain(attrs)) => {
                prop_assert_eq!(attrs.rank, rank);
                prop_assert_eq!(attrs.name, name);
            }
            other => prop_assert!(false, "expected domain, got {:?}", other),
        }
    }

    #[test]
    fn attributes_respect_structural_invariants(seed in any::<u64>(), rank in 1usize..5_000) {
        let p = pop(5_000, seed);
        let a = p.attributes(rank);
        // DS implies signed; deposits imply islands.
        prop_assert!(!a.ds_in_parent || a.signed);
        prop_assert!(!a.deposited || (a.signed && !a.ds_in_parent));
        // Hosted domains name a hoster inside the pool.
        if let Some(h) = a.hoster {
            prop_assert!(!a.self_hosted);
            prop_assert!(h < p.params().hoster_pool);
        } else {
            prop_assert!(a.self_hosted);
        }
    }

    #[test]
    fn repo_neighbour_brackets_rank(seed in any::<u64>(), rank in 1usize..4_999) {
        let p = pop(5_000, seed);
        let domain = p.domain(rank);
        let neighbour = p.repo_neighbour_name(rank);
        prop_assert_eq!(domain.canonical_cmp(&neighbour), std::cmp::Ordering::Less);
        // No ranked domain may ever sort between a domain and its neighbour.
        let next_rank = rank + 1;
        let next = p.domain(next_rank);
        if p.attributes(next_rank).tld == p.attributes(rank).tld {
            prop_assert_eq!(neighbour.canonical_cmp(&next), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn concatenated_rank_shards_equal_full_iteration(
        seed in any::<u64>(),
        n in 1usize..3_000,
        shards in 1usize..9,
    ) {
        let p = pop(3_000, seed);
        let full: Vec<_> = p.rank_range(1..n + 1).collect();
        prop_assert_eq!(&full, &p.top(n));
        // Split 1..n+1 into `shards` contiguous pieces (earlier pieces take
        // the remainder, mirroring the engine's ShardPlan::split_range) and
        // check the concatenation reproduces the full iteration exactly.
        let len = n;
        let k = shards.min(len);
        let base = len / k;
        let extra = len % k;
        let mut concatenated = Vec::with_capacity(len);
        let mut lo = 1usize;
        for id in 0..k {
            let take = base + usize::from(id < extra);
            concatenated.extend(p.rank_range(lo..lo + take));
            lo += take;
        }
        prop_assert_eq!(lo, n + 1);
        prop_assert_eq!(concatenated, full);
    }

    #[test]
    fn zipf_samples_stay_in_support(n in 1usize..5_000, s in 0.1f64..2.0, h in any::<u64>()) {
        let z = Zipf::new(n, s);
        let k = z.sample_hash(h);
        prop_assert!((1..=n).contains(&k));
    }

    #[test]
    fn ditl_traces_always_hit_the_exact_total(seed in any::<u64>()) {
        let trace = DitlTrace::generate(seed);
        prop_assert_eq!(trace.total(), lookaside_workload::DITL_TOTAL_QUERIES);
        for &v in trace.per_minute() {
            prop_assert!((160_000..=360_000).contains(&v));
        }
    }
}
