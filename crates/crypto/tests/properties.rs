//! Property-based tests for the crypto substrate.

use proptest::prelude::*;

use lookaside_crypto::{hashed_dlv_label, sha256, KeyPair, Sha256, Signature};
use lookaside_wire::Name;

proptest! {
    #[test]
    fn sha256_incremental_matches_one_shot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        let mut cuts: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut start = 0;
        for cut in cuts {
            h.update(&data[start..cut]);
            start = cut;
        }
        h.update(&data[start..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn signatures_verify_and_bind_message(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let key = KeyPair::generate_zsk(seed);
        let sig = key.sign(&msg);
        prop_assert!(key.public().verify(&msg, &sig));
        let mut other = msg.clone();
        other.push(0x01);
        prop_assert!(!key.public().verify(&other, &sig));
    }

    #[test]
    fn signatures_bind_key(seed_a in any::<u64>(), seed_b in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 1..128)) {
        let a = KeyPair::generate_zsk(seed_a);
        let b = KeyPair::generate_zsk(seed_b);
        prop_assume!(a.public() != b.public());
        let sig = a.sign(&msg);
        prop_assert!(!b.public().verify(&msg, &sig));
    }

    #[test]
    fn signature_serialisation_round_trips(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let key = KeyPair::generate_ksk(seed);
        let sig = key.sign(&msg);
        let bytes = sig.to_bytes();
        prop_assert_eq!(Signature::from_bytes(&bytes), Some(sig));
    }

    #[test]
    fn signature_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Signature::from_bytes(&bytes);
    }

    #[test]
    fn hashed_labels_are_stable_and_distinct(a in "[a-z]{3,12}", b in "[a-z]{3,12}") {
        let na = Name::parse(&format!("{a}.com")).unwrap();
        let nb = Name::parse(&format!("{b}.net")).unwrap();
        prop_assert_eq!(hashed_dlv_label(&na), hashed_dlv_label(&na));
        prop_assert_ne!(hashed_dlv_label(&na), hashed_dlv_label(&nb));
        prop_assert_eq!(hashed_dlv_label(&na).len(), 32);
    }
}
