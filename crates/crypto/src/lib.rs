//! Cryptographic substrate for the DLV privacy study.
//!
//! The paper's experiments require working DNSSEC signing and validation —
//! RRSIGs that verify only when the chain of trust is intact, DS digests
//! that bind parent to child, and key tags — but never rely on the
//! *strength* of the cryptography. This crate therefore implements:
//!
//! * [`sha256`](mod@sha256) — a from-scratch SHA-256 (FIPS 180-4), used for DS digests,
//!   deterministic nonces, and the hashed privacy-preserving DLV remedy of
//!   §6.2.2,
//! * [`schnorr`] — Schnorr signatures over a 49-bit safe-prime group.
//!   Structurally this is a genuine public-key signature scheme (separate
//!   signing and verification keys, real verification equation); the group
//!   is deliberately tiny so a simulator can sign millions of RRsets
//!   cheaply. **It provides no security margin** — see `DESIGN.md`,
//! * [`keys`] — the DNSSEC key model (ZSK/KSK flags, RFC 4034 key tags),
//! * [`digest`] — DS/DLV digest construction and the hashed-DLV query label.
//!
//! # Example
//!
//! ```
//! use lookaside_crypto::KeyPair;
//!
//! let key = KeyPair::generate_zsk(42);
//! let sig = key.sign(b"rrset bytes");
//! assert!(key.public().verify(b"rrset bytes", &sig));
//! assert!(!key.public().verify(b"tampered", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod field;
pub mod keys;
pub mod schnorr;
pub mod sha256;

/// Reads a big-endian `u64` from the front of `bytes` without indexing.
///
/// Returns `None` when fewer than eight bytes are available, so callers on
/// the resolver hot path stay panic-free on truncated key or signature
/// material.
pub(crate) fn be_u64_head(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < 8 {
        return None;
    }
    let mut word = [0u8; 8];
    for (dst, src) in word.iter_mut().zip(bytes) {
        *dst = *src;
    }
    Some(u64::from_be_bytes(word))
}

pub use digest::{
    digest_matches, dlv_rdata, ds_digest, ds_rdata, hashed_dlv_label, DIGEST_TYPE_SIM_SHA256,
};
pub use keys::{
    KeyPair, KeyRole, PublicKey, ALGORITHM_SIM_SCHNORR, FLAG_REVOKE, FLAG_SEP, FLAG_ZONE_KEY,
};
pub use schnorr::Signature;
pub use sha256::{sha256, Sha256};
