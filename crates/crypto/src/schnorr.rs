//! Schnorr signatures over the small safe-prime group of [`crate::field`].
//!
//! * Secret key: `x ∈ [1, q)`.
//! * Public key: `y = g^x mod p`.
//! * Sign: derive a deterministic nonce `k` (RFC 6979-style, from SHA-256 of
//!   the secret key and message), compute `r = g^k mod p`,
//!   `e = H(r ‖ msg) mod q`, `s = k − x·e mod q`; the signature is `(e, s)`.
//! * Verify: recompute `r' = g^s · y^e mod p` and accept iff
//!   `H(r' ‖ msg) mod q == e`.
//!
//! Signatures serialise to [`SIGNATURE_LEN`] bytes: the 8-byte big-endian
//! `e` and `s`, zero-padded to 64 bytes so that wire-format RRSIG sizes are
//! comparable to a real ECDSA-P256 deployment (traffic volumes in Table 5 /
//! Figs. 10–12 depend on realistic message sizes).

use crate::field::{mul_mod, pow_mod, sub_mod, G, P, Q};
use crate::sha256::Sha256;

/// Serialised signature length in octets.
pub const SIGNATURE_LEN: usize = 64;
/// Serialised public key length in octets (zero-padded, ECDSA-P256-like).
pub const PUBLIC_KEY_LEN: usize = 32;

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Challenge scalar.
    pub e: u64,
    /// Response scalar.
    pub s: u64,
}

impl Signature {
    /// Serialises to the padded 64-byte wire form.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SIGNATURE_LEN);
        out.extend_from_slice(&self.e.to_be_bytes());
        out.extend_from_slice(&self.s.to_be_bytes());
        out.resize(SIGNATURE_LEN, 0);
        out
    }

    /// Parses the padded wire form. Returns `None` if `bytes` is too short
    /// or the scalars are out of range.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let e = crate::be_u64_head(bytes)?;
        let s = crate::be_u64_head(bytes.get(8..)?)?;
        if e >= Q || s >= Q {
            return None;
        }
        Some(Signature { e, s })
    }
}

/// Derives the secret scalar from a seed, uniformly-ish in `[1, q)`.
pub(crate) fn secret_from_seed(seed: u64) -> u64 {
    let mut h = Sha256::new();
    h.update(b"lookaside-secret-key");
    h.update(&seed.to_be_bytes());
    let d = h.finalize();
    let v = crate::be_u64_head(&d).unwrap_or(0);
    1 + v % (Q - 1)
}

/// Computes the public key for a secret scalar.
pub(crate) fn public_from_secret(x: u64) -> u64 {
    pow_mod(G, x, P)
}

fn challenge(r: u64, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(b"lookaside-schnorr-e");
    h.update(&r.to_be_bytes());
    h.update(msg);
    let d = h.finalize();
    crate::be_u64_head(&d).unwrap_or(0) % Q
}

fn nonce(x: u64, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(b"lookaside-schnorr-k");
    h.update(&x.to_be_bytes());
    h.update(msg);
    let d = h.finalize();
    1 + crate::be_u64_head(&d).unwrap_or(0) % (Q - 1)
}

/// Signs `msg` with secret scalar `x`.
pub(crate) fn sign(x: u64, msg: &[u8]) -> Signature {
    let k = nonce(x, msg);
    let r = pow_mod(G, k, P);
    let e = challenge(r, msg);
    let s = sub_mod(k, mul_mod(x, e, Q), Q);
    Signature { e, s }
}

/// Verifies `sig` over `msg` against public key `y`.
pub(crate) fn verify(y: u64, msg: &[u8], sig: &Signature) -> bool {
    if sig.e >= Q || sig.s >= Q || y == 0 || y >= P {
        return false;
    }
    let r = mul_mod(pow_mod(G, sig.s, P), pow_mod(y, sig.e, P), P);
    challenge(r, msg) == sig.e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let x = secret_from_seed(1);
        let y = public_from_secret(x);
        let sig = sign(x, b"hello dlv");
        assert!(verify(y, b"hello dlv", &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let x = secret_from_seed(2);
        let y = public_from_secret(x);
        let sig = sign(x, b"original");
        assert!(!verify(y, b"tampered", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let x1 = secret_from_seed(3);
        let x2 = secret_from_seed(4);
        let sig = sign(x1, b"msg");
        assert!(!verify(public_from_secret(x2), b"msg", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let x = secret_from_seed(5);
        let y = public_from_secret(x);
        let sig = sign(x, b"msg");
        let bad_e = Signature { e: (sig.e + 1) % Q, ..sig };
        let bad_s = Signature { s: (sig.s + 1) % Q, ..sig };
        assert!(!verify(y, b"msg", &bad_e));
        assert!(!verify(y, b"msg", &bad_s));
    }

    #[test]
    fn signing_is_deterministic() {
        let x = secret_from_seed(6);
        assert_eq!(sign(x, b"msg"), sign(x, b"msg"));
        assert_ne!(sign(x, b"msg"), sign(x, b"msg2"));
    }

    #[test]
    fn serialisation_round_trip() {
        let x = secret_from_seed(7);
        let sig = sign(x, b"bytes");
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), SIGNATURE_LEN);
        assert_eq!(Signature::from_bytes(&bytes), Some(sig));
    }

    #[test]
    fn from_bytes_rejects_short_and_out_of_range() {
        assert_eq!(Signature::from_bytes(&[0; 15]), None);
        let mut bytes = vec![0u8; 64];
        bytes[0..8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert_eq!(Signature::from_bytes(&bytes), None);
    }

    #[test]
    fn verify_rejects_degenerate_public_keys() {
        let x = secret_from_seed(8);
        let sig = sign(x, b"m");
        assert!(!verify(0, b"m", &sig));
        assert!(!verify(P, b"m", &sig));
    }
}
