//! DS/DLV digest construction (RFC 4034 §5.1.4, RFC 4431) and the hashed
//! query name used by the privacy-preserving DLV remedy (§6.2.2 of the
//! paper).

use lookaside_wire::{Name, RData};

use crate::keys::{PublicKey, ALGORITHM_SIM_SCHNORR};
use crate::sha256::{sha256, to_hex, Sha256};

/// Digest-type identifier carried in DS/DLV records produced here. The IANA
/// value 2 means SHA-256, which is what this simulator computes.
pub const DIGEST_TYPE_SIM_SHA256: u8 = 2;

/// Computes the DS digest for `owner`'s key: `SHA-256(owner_wire ‖ DNSKEY
/// RDATA)` per RFC 4034 §5.1.4.
pub fn ds_digest(owner: &Name, key: &PublicKey) -> Vec<u8> {
    let mut h = Sha256::new();
    let mut owner_wire = Vec::with_capacity(owner.wire_len());
    owner.encode_uncompressed(&mut owner_wire);
    h.update(&owner_wire);
    let mut w = lookaside_wire::codec::Writer::new();
    key.dnskey_rdata().encode(&mut w);
    h.update(&w.into_bytes());
    h.finalize().to_vec()
}

/// Builds the DS RDATA a parent zone publishes for `owner`'s KSK.
pub fn ds_rdata(owner: &Name, key: &PublicKey) -> RData {
    RData::Ds {
        key_tag: key.key_tag(),
        algorithm: ALGORITHM_SIM_SCHNORR,
        digest_type: DIGEST_TYPE_SIM_SHA256,
        digest: ds_digest(owner, key),
    }
}

/// Builds the DLV RDATA deposited in a DLV registry for `owner`'s KSK.
/// RFC 4431 defines DLV RDATA as byte-identical to DS RDATA.
pub fn dlv_rdata(owner: &Name, key: &PublicKey) -> RData {
    RData::Dlv {
        key_tag: key.key_tag(),
        algorithm: ALGORITHM_SIM_SCHNORR,
        digest_type: DIGEST_TYPE_SIM_SHA256,
        digest: ds_digest(owner, key),
    }
}

/// Whether a DS/DLV digest matches `owner`'s key.
pub fn digest_matches(owner: &Name, key: &PublicKey, digest: &[u8]) -> bool {
    ds_digest(owner, key) == digest
}

/// The hashed query label of the privacy-preserving DLV remedy (§6.2.2):
/// `crypto_hash(domain_name)` rendered as a single DNS label.
///
/// The paper sends `$hash.dlv.isc.org` instead of
/// `example.com.dlv.isc.org`. A full SHA-256 hex digest (64 chars) exceeds
/// the 63-octet label limit, so we truncate to 128 bits (32 hex chars) —
/// still far beyond dictionary-attack-by-accident territory for the §6.2.4
/// analysis, and small enough to be a legal label.
///
/// # Example
///
/// ```
/// use lookaside_crypto::hashed_dlv_label;
/// use lookaside_wire::Name;
///
/// let label = hashed_dlv_label(&Name::parse("example.com.")?);
/// assert_eq!(label.len(), 32);
/// assert!(Name::parse(&format!("{label}.dlv.isc.org.")).is_ok());
/// # Ok::<(), lookaside_wire::WireError>(())
/// ```
pub fn hashed_dlv_label(domain: &Name) -> String {
    let mut wire = Vec::with_capacity(domain.wire_len());
    domain.encode_uncompressed(&mut wire);
    let digest = sha256(&wire);
    let mut label = to_hex(&digest);
    label.truncate(32);
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn ds_digest_binds_owner_and_key() {
        let k1 = KeyPair::generate_ksk(1).public();
        let k2 = KeyPair::generate_ksk(2).public();
        let a = ds_digest(&name("example.com"), &k1);
        assert_eq!(a.len(), 32);
        assert_ne!(a, ds_digest(&name("example.net"), &k1));
        assert_ne!(a, ds_digest(&name("example.com"), &k2));
        assert!(digest_matches(&name("example.com"), &k1, &a));
        assert!(!digest_matches(&name("example.com"), &k2, &a));
    }

    #[test]
    fn ds_and_dlv_rdata_share_digest() {
        let k = KeyPair::generate_ksk(3).public();
        let owner = name("island.com");
        match (ds_rdata(&owner, &k), dlv_rdata(&owner, &k)) {
            (
                RData::Ds { key_tag: t1, digest: d1, .. },
                RData::Dlv { key_tag: t2, digest: d2, .. },
            ) => {
                assert_eq!(t1, t2);
                assert_eq!(d1, d2);
                assert_eq!(t1, k.key_tag());
            }
            other => panic!("unexpected rdata {other:?}"),
        }
    }

    #[test]
    fn hashed_label_is_legal_and_stable() {
        let l = hashed_dlv_label(&name("example.com"));
        assert_eq!(l.len(), 32);
        assert!(l.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(l, hashed_dlv_label(&name("EXAMPLE.com")), "case-insensitive");
        assert_ne!(l, hashed_dlv_label(&name("example.net")));
        // Must form a valid DNS label.
        assert!(Name::parse(&format!("{l}.dlv.isc.org")).is_ok());
    }
}
