//! Modular arithmetic over the simulator's Schnorr group.
//!
//! The group is the order-`q` subgroup of `Z_p^*` where `p = 2q + 1` is a
//! safe prime: `q = 0x1_0000_0000_02fb` (≈2⁴⁸) and `p = 0x2_0000_0000_05f7`.
//! The generator `G = 4` generates the subgroup of quadratic residues, which
//! has prime order `q`. These constants are verified by Miller–Rabin in the
//! unit tests.

/// The subgroup order `q` (prime).
pub const Q: u64 = 0x1_0000_0000_02fb;
/// The field modulus `p = 2q + 1` (safe prime).
pub const P: u64 = 0x2_0000_0000_05f7;
/// Generator of the order-`q` subgroup.
pub const G: u64 = 4;

/// `(a * b) mod m` without overflow.
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `(a + b) mod m` without overflow.
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 + b as u128) % m as u128) as u64
}

/// `(a - b) mod m`, always non-negative.
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    let (a, b) = (a % m, b % m);
    if a >= b {
        a - b
    } else {
        a + (m - b)
    }
}

/// `base^exp mod m` by square-and-multiply.
pub fn pow_mod(base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 1);
    let mut result = 1u64;
    let mut base = base % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mul_mod(result, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    result
}

/// Multiplicative inverse mod a prime `m` (Fermat).
///
/// # Panics
///
/// Panics if `a` is zero mod `m` (no inverse exists).
pub fn inv_mod(a: u64, m: u64) -> u64 {
    assert!(!a.is_multiple_of(m), "zero has no inverse");
    pow_mod(a, m - 2, m)
}

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs
/// (uses the first twelve primes as witnesses).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_constants_are_a_safe_prime_pair() {
        assert!(is_prime(Q), "q must be prime");
        assert!(is_prime(P), "p must be prime");
        assert_eq!(P, 2 * Q + 1, "p must equal 2q+1");
    }

    #[test]
    fn generator_has_order_q() {
        assert_eq!(pow_mod(G, Q, P), 1, "g^q must be 1");
        assert_ne!(pow_mod(G, 1, P), 1);
        assert_ne!(pow_mod(G, 2, P), 1);
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_003), 1024);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
        assert_eq!(pow_mod(7, 3, 7), 0);
    }

    #[test]
    fn inv_mod_is_inverse() {
        for a in [1u64, 2, 3, 12345, Q - 1] {
            assert_eq!(mul_mod(a, inv_mod(a, Q), Q), 1);
        }
    }

    #[test]
    #[should_panic(expected = "inverse")]
    fn inv_mod_zero_panics() {
        inv_mod(0, Q);
    }

    #[test]
    fn sub_mod_wraps() {
        assert_eq!(sub_mod(3, 5, 7), 5);
        assert_eq!(sub_mod(5, 3, 7), 2);
        assert_eq!(sub_mod(5, 5, 7), 0);
    }

    #[test]
    fn is_prime_classifies_small_numbers() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]);
    }

    #[test]
    fn is_prime_carmichael_and_large() {
        assert!(!is_prime(561)); // Carmichael
        assert!(!is_prime(41041));
        assert!(is_prime(2_305_843_009_213_693_951)); // 2^61 - 1
        assert!(!is_prime(u64::MAX));
    }

    #[test]
    fn mul_mod_no_overflow_at_extremes() {
        let m = u64::MAX - 58; // 2^64 - 59 (prime)
        assert_eq!(mul_mod(m - 1, m - 1, m), 1);
    }
}
