//! DNSSEC key model: zone-signing and key-signing keys, DNSKEY RDATA, and
//! RFC 4034 Appendix B key tags.

use lookaside_wire::RData;
use serde::{Deserialize, Serialize};

use crate::schnorr::{self, Signature, PUBLIC_KEY_LEN};

/// The private-use algorithm number (RFC 4034 §A.1.1 reserves 253) carried
/// in DNSKEY/DS/RRSIG records produced by this simulator.
pub const ALGORITHM_SIM_SCHNORR: u8 = 253;

/// DNSKEY protocol field, always 3 (RFC 4034 §2.1.2).
pub const DNSKEY_PROTOCOL: u8 = 3;

/// DNSKEY flag for "zone key" (bit 7, value 0x0100).
pub const FLAG_ZONE_KEY: u16 = 0x0100;
/// DNSKEY flag for "secure entry point" (bit 15, value 0x0001) — marks KSKs.
pub const FLAG_SEP: u16 = 0x0001;
/// DNSKEY flag for "revoked" (RFC 5011 §2.1, bit 8, value 0x0080). A
/// trust-anchor-managing resolver that sees a validly signed DNSKEY with
/// this bit set must stop trusting the key permanently.
pub const FLAG_REVOKE: u16 = 0x0080;

/// Whether a key signs record sets (ZSK) or other keys (KSK).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyRole {
    /// Zone-signing key: signs the zone's RRsets.
    Zsk,
    /// Key-signing key: signs the DNSKEY RRset; its digest becomes the DS
    /// (or DLV) record in the parent (or DLV registry).
    Ksk,
}

impl KeyRole {
    /// DNSKEY flags field for the role.
    pub fn flags(self) -> u16 {
        match self {
            KeyRole::Zsk => FLAG_ZONE_KEY,
            KeyRole::Ksk => FLAG_ZONE_KEY | FLAG_SEP,
        }
    }
}

/// The public half of a key, as distributed in DNSKEY records and trust
/// anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    y: u64,
    role: KeyRole,
}

impl PublicKey {
    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        schnorr::verify(self.y, msg, sig)
    }

    /// Verifies a serialised signature over `msg`.
    pub fn verify_bytes(&self, msg: &[u8], sig_bytes: &[u8]) -> bool {
        match Signature::from_bytes(sig_bytes) {
            Some(sig) => self.verify(msg, &sig),
            None => false,
        }
    }

    /// The key's role.
    pub fn role(&self) -> KeyRole {
        self.role
    }

    /// Serialises the public key material (padded to 32 octets).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PUBLIC_KEY_LEN);
        out.extend_from_slice(&self.y.to_be_bytes());
        out.resize(PUBLIC_KEY_LEN, 0);
        out
    }

    /// Reconstructs a public key from DNSKEY RDATA fields.
    ///
    /// Returns `None` if the material is malformed or the flags encode
    /// neither a ZSK nor a KSK.
    pub fn from_dnskey(flags: u16, key_bytes: &[u8]) -> Option<Self> {
        if key_bytes.len() < 8 {
            return None;
        }
        let y = crate::be_u64_head(key_bytes)?;
        let role = if flags & FLAG_SEP != 0 {
            KeyRole::Ksk
        } else if flags & FLAG_ZONE_KEY != 0 {
            KeyRole::Zsk
        } else {
            return None;
        };
        Some(PublicKey { y, role })
    }

    /// The DNSKEY RDATA for this key.
    pub fn dnskey_rdata(&self) -> RData {
        self.dnskey_rdata_with_flags(self.role.flags())
    }

    /// The DNSKEY RDATA with an explicit flags field — used by the key
    /// lifecycle machinery to publish revoked keys (RFC 5011 §2.1:
    /// role flags plus [`FLAG_REVOKE`]).
    pub fn dnskey_rdata_with_flags(&self, flags: u16) -> RData {
        RData::Dnskey {
            flags,
            protocol: DNSKEY_PROTOCOL,
            algorithm: ALGORITHM_SIM_SCHNORR,
            public_key: self.to_bytes(),
        }
    }

    /// RFC 4034 Appendix B key tag over the DNSKEY RDATA.
    pub fn key_tag(&self) -> u16 {
        let rdata = self.dnskey_rdata();
        let mut wire = lookaside_wire::codec::Writer::new();
        rdata.encode(&mut wire);
        key_tag_over(&wire.into_bytes())
    }
}

/// Computes the RFC 4034 Appendix B key tag over raw DNSKEY RDATA.
pub fn key_tag_over(rdata: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    for (i, &b) in rdata.iter().enumerate() {
        if i & 1 == 0 {
            acc += (b as u32) << 8;
        } else {
            acc += b as u32;
        }
    }
    acc += (acc >> 16) & 0xffff;
    (acc & 0xffff) as u16
}

/// A full signing key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    x: u64,
    public: PublicKey,
}

impl KeyPair {
    /// Deterministically generates a key of the given role from a seed.
    pub fn generate(seed: u64, role: KeyRole) -> Self {
        let x = schnorr::secret_from_seed(seed);
        let y = schnorr::public_from_secret(x);
        KeyPair { x, public: PublicKey { y, role } }
    }

    /// Generates a zone-signing key.
    pub fn generate_zsk(seed: u64) -> Self {
        KeyPair::generate(seed, KeyRole::Zsk)
    }

    /// Generates a key-signing key.
    pub fn generate_ksk(seed: u64) -> Self {
        KeyPair::generate(seed, KeyRole::Ksk)
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `msg`, returning the signature.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        schnorr::sign(self.x, msg)
    }

    /// Signs `msg`, returning serialised signature bytes for RRSIG RDATA.
    pub fn sign_to_bytes(&self, msg: &[u8]) -> Vec<u8> {
        self.sign(msg).to_bytes()
    }

    /// Key tag of the public half.
    pub fn key_tag(&self) -> u16 {
        self.public.key_tag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_set_expected_flags() {
        assert_eq!(KeyRole::Zsk.flags(), 0x0100);
        assert_eq!(KeyRole::Ksk.flags(), 0x0101);
        assert_eq!(FLAG_REVOKE, 0x0080);
    }

    #[test]
    fn revoked_dnskey_still_parses_to_same_key() {
        let kp = KeyPair::generate_ksk(13);
        let revoked = kp.public().dnskey_rdata_with_flags(KeyRole::Ksk.flags() | FLAG_REVOKE);
        match revoked {
            RData::Dnskey { flags, public_key, .. } => {
                assert_eq!(flags & FLAG_REVOKE, FLAG_REVOKE);
                let back = PublicKey::from_dnskey(flags, &public_key).unwrap();
                assert_eq!(back, kp.public());
            }
            other => panic!("unexpected rdata {other:?}"),
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = KeyPair::generate_zsk(1);
        let b = KeyPair::generate_zsk(1);
        let c = KeyPair::generate_zsk(2);
        assert_eq!(a, b);
        assert_ne!(a.public(), c.public());
    }

    #[test]
    fn sign_verify_through_public() {
        let kp = KeyPair::generate_ksk(10);
        let sig = kp.sign(b"dnskey rrset");
        assert!(kp.public().verify(b"dnskey rrset", &sig));
        assert!(!kp.public().verify(b"other", &sig));
    }

    #[test]
    fn verify_bytes_handles_garbage() {
        let kp = KeyPair::generate_zsk(11);
        assert!(!kp.public().verify_bytes(b"msg", &[]));
        assert!(!kp.public().verify_bytes(b"msg", &[0u8; 64]));
        let good = kp.sign_to_bytes(b"msg");
        assert!(kp.public().verify_bytes(b"msg", &good));
    }

    #[test]
    fn dnskey_rdata_round_trips_public_key() {
        let kp = KeyPair::generate_ksk(12);
        match kp.public().dnskey_rdata() {
            RData::Dnskey { flags, protocol, algorithm, public_key } => {
                assert_eq!(protocol, DNSKEY_PROTOCOL);
                assert_eq!(algorithm, ALGORITHM_SIM_SCHNORR);
                let back = PublicKey::from_dnskey(flags, &public_key).unwrap();
                assert_eq!(back, kp.public());
            }
            other => panic!("unexpected rdata {other:?}"),
        }
    }

    #[test]
    fn from_dnskey_rejects_bad_input() {
        assert!(PublicKey::from_dnskey(0x0100, &[1, 2]).is_none());
        assert!(PublicKey::from_dnskey(0x0000, &[0u8; 32]).is_none());
    }

    #[test]
    fn key_tags_differ_between_keys() {
        let tags: std::collections::HashSet<u16> =
            (0..50).map(|s| KeyPair::generate_zsk(s).key_tag()).collect();
        // A few collisions are possible in principle; most must be distinct.
        assert!(tags.len() > 45);
    }

    #[test]
    fn key_tag_over_rfc_accumulator() {
        // Odd-length RDATA exercises the trailing-byte path.
        assert_eq!(key_tag_over(&[0x01]), 0x0100);
        assert_eq!(key_tag_over(&[0x01, 0x02]), 0x0102);
        assert_eq!(key_tag_over(&[0xff, 0xff, 0xff, 0xff]), ((0x1fffe + 1) as u16));
    }
}
