//! Semantic-pass fixture: a wall-clock read one call below a
//! result-bearing sink. Classified outside the RESULT_BEARING crates the
//! lexical `determinism::*` rules stay out of the way; only the taint
//! pass connects merge → stamp.

// lint:sink(determinism)
pub fn canary_merge(acc: &mut u64) {
    *acc += canary_stamp();
}

fn canary_stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_micros() as u64
}
