//! Known-bad fixture: bare `unwrap` on a hot path. Scanned as if it
//! lived at `crates/wire/src/bad_unwrap.rs`.

pub fn first_byte(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap()
}
