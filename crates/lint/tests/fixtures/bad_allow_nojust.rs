//! Known-bad fixture: a suppression without the mandatory
//! ` -- <justification>`. Scanned as if it lived at
//! `crates/core/src/bad_allow_nojust.rs`.

use std::collections::HashSet; // lint:allow(determinism::hash-collection)

pub fn dedup(xs: &[u32]) -> usize {
    xs.iter().collect::<HashSet<_>>().len()
}
