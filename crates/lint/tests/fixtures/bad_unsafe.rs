//! Known-bad fixture: an `unsafe` block in a zero-unsafe workspace.
//! Scanned as if it lived at `crates/crypto/src/bad_unsafe.rs`.

pub fn reinterpret(x: u32) -> [u8; 4] {
    unsafe { std::mem::transmute(x) }
}
