// lint:checkpoint-codec
//! Known-bad fixture: a journal serialization module that leaks
//! nondeterminism into the checkpoint format — hash-ordered records,
//! wall-clock stamps, and native-endian integer encoding.

use std::collections::HashMap;
use std::time::SystemTime;

pub fn banned_hash_records(records: &HashMap<u64, Vec<u8>>) -> Vec<u8> {
    let mut out = Vec::new();
    for (id, payload) in records {
        out.extend_from_slice(&id.to_ne_bytes());
        out.extend_from_slice(payload);
    }
    out
}

pub fn banned_wall_clock_stamp(out: &mut Vec<u8>) {
    let _ = SystemTime::now();
    out.push(0);
}

pub fn banned_native_decode(bytes: [u8; 8]) -> u64 {
    u64::from_ne_bytes(bytes)
}
