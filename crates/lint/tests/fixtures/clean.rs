//! Known-good fixture: deterministic collections, seeded randomness,
//! typed errors, bounds-checked access, a justified suppression, and
//! test-only unwraps — zero findings expected when scanned as
//! `crates/core/src/clean.rs`.

use std::collections::BTreeMap;

/// Comments mentioning HashMap, Instant::now(), and unsafe are invisible
/// to the lexer, as are literals: "HashMap::new()".
pub fn count(input: &[(String, u64)]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for (name, n) in input {
        *counts.entry(name.clone()).or_insert(0) += n;
    }
    counts
}

pub fn first(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}

pub fn profile_label() -> &'static str {
    // lint:allow(determinism::wall-clock) -- demonstrates a justified waiver
    let _elapsed = std::time::Instant::now();
    "timing-only, never reduced into results"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_in_tests_are_exempt() {
        let m = count(&[("a".to_string(), 1)]);
        assert_eq!(*m.get("a").unwrap(), 1);
    }
}
