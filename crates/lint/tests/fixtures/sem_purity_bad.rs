//! Semantic-pass fixture: direct filesystem I/O in a sim crate. The
//! purity wall confines `std::{fs,io,net}` effects to engine::checkpoint,
//! engine::diag, and the bench/lint/daemon crates; a `fs::` call here
//! must fire `semantic::purity-wall` at the site.

pub fn canary_snapshot(path: &str) -> usize {
    std::fs::read(path).map(|b| b.len()).unwrap_or(0)
}
