//! Known-bad fixture: hash-ordered collection (and its iteration) in a
//! result-bearing crate. Scanned as if it lived at
//! `crates/core/src/bad_hashmap.rs`; also used by ci.sh as the canary
//! proving the lint gate bites.

use std::collections::HashMap;

pub fn leak_ordering(input: &[(String, u64)]) -> Vec<String> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for (name, n) in input {
        *counts.entry(name.clone()).or_insert(0) += n;
    }
    // Iteration order is RandomState-seeded: this Vec differs run to run.
    counts.into_iter().map(|(name, _)| name).collect()
}
