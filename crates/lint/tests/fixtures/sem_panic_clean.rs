//! Semantic-pass fixture: the same entry → mid → deep call shape as
//! `sem_panic_bad.rs` with the panic replaced by a defaulted value —
//! the panic-reachability pass must stay silent.

// lint:entry(hot-path)
pub fn canary_entry(q: &[u8]) -> u8 {
    canary_mid(q)
}

fn canary_mid(q: &[u8]) -> u8 {
    canary_deep(q.first().copied())
}

fn canary_deep(b: Option<u8>) -> u8 {
    b.unwrap_or(0)
}
