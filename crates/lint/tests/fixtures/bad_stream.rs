// lint:stream-hot-path
//! Known-bad fixture: a module tagged as a streaming hot path that
//! allocates in live code. Exercises all three banned constructs plus
//! the allow escape hatch and the `#[cfg(test)]` exemption.

pub fn banned_format(n: u32) -> String {
    format!("q{n}")
}

pub fn banned_to_string(name: &str) -> String {
    name.to_string()
}

pub fn banned_vec() -> Vec<u8> {
    Vec::new()
}

pub fn allowed_cold_path() -> String {
    // lint:allow(stream::hot-path) -- cold boot banner, runs once per process
    "boot".to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let mut v = Vec::new();
        v.push(super::banned_format(7));
        assert_eq!(v[0], format!("q{}", 7).to_string());
    }
}
