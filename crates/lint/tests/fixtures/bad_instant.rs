//! Known-bad fixture: wall-clock read in a result-bearing crate.
//! Scanned as if it lived at `crates/netsim/src/bad_instant.rs`.

use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos()
}
