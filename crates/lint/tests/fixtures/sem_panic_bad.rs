//! Semantic-pass fixture: a panic two calls below a hot-path entry.
//! The `.unwrap()` sits in a helper the lexical `panic::*` rules never
//! see when this file is classified outside the HOT_PATH crates — only
//! the transitive panic-reachability pass can connect entry → mid →
//! deep and flag it.

// lint:entry(hot-path)
pub fn canary_entry(q: &[u8]) -> u8 {
    canary_mid(q)
}

fn canary_mid(q: &[u8]) -> u8 {
    canary_deep(q.first().copied())
}

fn canary_deep(b: Option<u8>) -> u8 {
    b.unwrap()
}
