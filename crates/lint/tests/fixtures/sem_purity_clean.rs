//! Semantic-pass fixture: a sim-crate function that stays pure (no
//! filesystem, socket, or stdio reach) — the purity wall must stay
//! silent.

pub fn canary_snapshot(bytes: &[u8]) -> usize {
    bytes.iter().filter(|b| **b != 0).count()
}
