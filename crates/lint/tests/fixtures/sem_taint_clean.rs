//! Semantic-pass fixture: the same sink → helper shape as
//! `sem_taint_bad.rs` with the wall clock replaced by a pure counter —
//! the determinism-taint pass must stay silent.

// lint:sink(determinism)
pub fn canary_merge(acc: &mut u64) {
    *acc += canary_stamp(7);
}

fn canary_stamp(tick: u64) -> u64 {
    tick.wrapping_mul(0x9e37)
}
