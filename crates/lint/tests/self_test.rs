//! Fixture-based self-tests: one known-bad snippet per rule asserting
//! the exact rule IDs that fire, a known-good snippet asserting zero
//! findings, a bad + clean fixture per transitive semantic pass, and a
//! byte-stability check on the JSON report.

use lookaside_lint::{analyze, scan_source, FileClass, Report, SourceFile};

/// Scans a fixture as if it lived at `virtual_path` inside the
/// workspace.
fn scan_fixture(virtual_path: &str, src: &str) -> lookaside_lint::ScanOutcome {
    let class = FileClass::classify(virtual_path).expect("fixture path must classify");
    scan_source(&class, src)
}

/// Runs the full workspace analysis over fixtures at virtual paths.
fn analyze_fixtures(files: &[(&str, &str)]) -> lookaside_lint::Analysis {
    analyze(
        files
            .iter()
            .map(|(path, src)| SourceFile {
                class: FileClass::classify(path).expect("fixture path must classify"),
                src: (*src).to_string(),
            })
            .collect(),
    )
}

fn rules_of(outcome: &lookaside_lint::ScanOutcome) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = outcome.findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn bad_hashmap_fires_hash_collection() {
    let out =
        scan_fixture("crates/core/src/bad_hashmap.rs", include_str!("fixtures/bad_hashmap.rs"));
    assert_eq!(rules_of(&out), vec!["determinism::hash-collection"]);
    // Both the `use` and the two constructor/type mentions are caught.
    assert!(out.findings.len() >= 2, "{:?}", out.findings);
}

#[test]
fn bad_instant_fires_wall_clock() {
    let out =
        scan_fixture("crates/netsim/src/bad_instant.rs", include_str!("fixtures/bad_instant.rs"));
    assert_eq!(rules_of(&out), vec!["determinism::wall-clock"]);
    assert_eq!(out.findings[0].line, 7, "{:?}", out.findings);
}

#[test]
fn bad_unwrap_fires_panic_unwrap() {
    let out = scan_fixture("crates/wire/src/bad_unwrap.rs", include_str!("fixtures/bad_unwrap.rs"));
    assert_eq!(rules_of(&out), vec!["panic::unwrap"]);
}

#[test]
fn bad_allow_without_justification_fires_meta_rule() {
    let out = scan_fixture(
        "crates/core/src/bad_allow_nojust.rs",
        include_str!("fixtures/bad_allow_nojust.rs"),
    );
    let rules = rules_of(&out);
    assert!(rules.contains(&"allow::missing-justification"), "{rules:?}");
    // The malformed allow must NOT silence the underlying violation.
    assert!(rules.contains(&"determinism::hash-collection"), "{rules:?}");
}

#[test]
fn bad_unsafe_fires_unsafe_token() {
    let out =
        scan_fixture("crates/crypto/src/bad_unsafe.rs", include_str!("fixtures/bad_unsafe.rs"));
    assert_eq!(rules_of(&out), vec!["unsafe::token"]);
}

#[test]
fn bad_stream_fires_hot_path_with_allow_and_test_exemptions() {
    let out =
        scan_fixture("crates/netsim/src/bad_stream.rs", include_str!("fixtures/bad_stream.rs"));
    // Exactly the three live allocation sites — the `lint:allow` site and
    // the whole `#[cfg(test)]` module stay silent.
    assert_eq!(rules_of(&out), vec!["stream::hot-path"]);
    assert_eq!(out.findings.len(), 3, "{:#?}", out.findings);
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].rule, "stream::hot-path");
    assert_eq!(out.suppressed[0].justification, "cold boot banner, runs once per process");
}

#[test]
fn bad_checkpoint_fires_codec_rule_on_every_nondeterminism_class() {
    // Classified under `wire` so the generic determinism rules stay out
    // of the way and only the tag-driven codec wall fires.
    let out = scan_fixture(
        "crates/wire/src/bad_checkpoint.rs",
        include_str!("fixtures/bad_checkpoint.rs"),
    );
    assert_eq!(rules_of(&out), vec!["checkpoint::codec"]);
    let messages: Vec<&str> = out.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("hash order")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("wall clock")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("little-endian")), "{messages:?}");
}

#[test]
fn untagged_checkpoint_source_is_exempt_from_codec_rules() {
    let src = include_str!("fixtures/bad_checkpoint.rs");
    let untagged: String = src.lines().skip(1).map(|l| format!("{l}\n")).collect();
    let out = scan_fixture("crates/wire/src/bad_checkpoint.rs", &untagged);
    let rules = rules_of(&out);
    assert!(!rules.contains(&"checkpoint::codec"), "{rules:?}");
}

#[test]
fn untagged_files_are_exempt_from_stream_rules() {
    // Strip the line-1 tag: the same allocation-heavy source must no
    // longer trip the stream family (the now-pointless allow is flagged
    // as unused instead).
    let src = include_str!("fixtures/bad_stream.rs");
    let untagged: String = src.lines().skip(1).map(|l| format!("{l}\n")).collect();
    let out = scan_fixture("crates/netsim/src/bad_stream.rs", &untagged);
    let rules = rules_of(&out);
    assert!(!rules.contains(&"stream::hot-path"), "{rules:?}");
    assert!(rules.contains(&"allow::unused"), "{rules:?}");
}

#[test]
fn clean_fixture_has_zero_findings_and_one_used_suppression() {
    let out = scan_fixture("crates/core/src/clean.rs", include_str!("fixtures/clean.rs"));
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].rule, "determinism::wall-clock");
    assert_eq!(out.suppressed[0].justification, "demonstrates a justified waiver");
}

#[test]
fn known_bad_fixtures_fail_under_their_canary_classification() {
    // ci.sh copies bad_hashmap.rs into crates/core/src/ to prove the
    // gate bites; the fixture must fail under exactly that path shape.
    let out =
        scan_fixture("crates/core/src/__lint_canary.rs", include_str!("fixtures/bad_hashmap.rs"));
    assert!(!out.findings.is_empty());
}

#[test]
fn json_report_is_byte_stable_across_runs() {
    let render = || {
        let mut report = Report::default();
        for (path, src) in [
            ("crates/core/src/bad_hashmap.rs", include_str!("fixtures/bad_hashmap.rs")),
            ("crates/netsim/src/bad_instant.rs", include_str!("fixtures/bad_instant.rs")),
            ("crates/wire/src/bad_unwrap.rs", include_str!("fixtures/bad_unwrap.rs")),
            ("crates/core/src/clean.rs", include_str!("fixtures/clean.rs")),
        ] {
            let out = scan_fixture(path, src);
            report.findings.extend(out.findings);
            report.suppressed.extend(out.suppressed);
            report.files_scanned += 1;
        }
        report.canonicalize();
        report.render_json()
    };
    let first = render();
    let second = render();
    assert_eq!(first, second, "JSON report must be byte-identical across runs");
    assert!(first.contains("\"schema\": \"lookaside-lint/2\""));
}

// ---------------------------------------------------------------------------
// Semantic passes (call-graph fixtures)
// ---------------------------------------------------------------------------

#[test]
fn sem_panic_bad_fires_two_calls_deep() {
    // `workload` is outside HOT_PATH, so the lexical panic rules are
    // blind here; only the transitive pass connects entry → mid → deep.
    let analysis = analyze_fixtures(&[(
        "crates/workload/src/sem_panic_bad.rs",
        include_str!("fixtures/sem_panic_bad.rs"),
    )]);
    let f = &analysis.report.findings;
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "semantic::panic-reachable");
    let quals: Vec<&str> = f[0].chain.iter().map(|s| s.qual.as_str()).collect();
    assert_eq!(
        quals,
        vec!["workload::canary_entry", "workload::canary_mid", "workload::canary_deep"],
        "chain evidence must walk the full two-call-deep path"
    );
}

#[test]
fn sem_panic_clean_is_silent() {
    let analysis = analyze_fixtures(&[(
        "crates/workload/src/sem_panic_clean.rs",
        include_str!("fixtures/sem_panic_clean.rs"),
    )]);
    assert!(analysis.report.findings.is_empty(), "{:#?}", analysis.report.findings);
}

#[test]
fn sem_taint_bad_fires_through_the_helper() {
    let analysis = analyze_fixtures(&[(
        "crates/wire/src/sem_taint_bad.rs",
        include_str!("fixtures/sem_taint_bad.rs"),
    )]);
    let f = &analysis.report.findings;
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "semantic::taint-flow");
    assert!(f[0].message.contains("canary_merge"), "{}", f[0].message);
}

#[test]
fn sem_taint_clean_is_silent() {
    let analysis = analyze_fixtures(&[(
        "crates/wire/src/sem_taint_clean.rs",
        include_str!("fixtures/sem_taint_clean.rs"),
    )]);
    assert!(analysis.report.findings.is_empty(), "{:#?}", analysis.report.findings);
}

#[test]
fn sem_purity_bad_fires_at_the_io_site() {
    let analysis = analyze_fixtures(&[(
        "crates/netsim/src/sem_purity_bad.rs",
        include_str!("fixtures/sem_purity_bad.rs"),
    )]);
    let f = &analysis.report.findings;
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "semantic::purity-wall");
}

#[test]
fn sem_purity_clean_is_silent() {
    let analysis = analyze_fixtures(&[(
        "crates/netsim/src/sem_purity_clean.rs",
        include_str!("fixtures/sem_purity_clean.rs"),
    )]);
    assert!(analysis.report.findings.is_empty(), "{:#?}", analysis.report.findings);
}

#[test]
fn sem_panic_crosses_crate_boundaries() {
    // Entry in resolver, panic in a workload helper reached through a
    // cross-crate `use` — the pass must follow the import.
    let analysis = analyze_fixtures(&[
        (
            "crates/resolver/src/entry.rs",
            "// lint:entry(hot-path)\npub fn resolve_canary() { \
             lookaside_workload::canary_entry(&[]); }",
        ),
        ("crates/workload/src/sem_panic_bad.rs", include_str!("fixtures/sem_panic_bad.rs")),
    ]);
    let chains: Vec<usize> = analysis.report.findings.iter().map(|f| f.chain.len()).collect();
    // Both entries root a path to the same unwrap; the multi-source BFS
    // reports it once with the shortest chain.
    assert_eq!(analysis.report.findings.len(), 1, "{:#?}", analysis.report.findings);
    assert!(chains[0] >= 3, "{chains:?}");
}

#[test]
fn semantic_findings_serialize_chains_into_json() {
    let analysis = analyze_fixtures(&[(
        "crates/workload/src/sem_panic_bad.rs",
        include_str!("fixtures/sem_panic_bad.rs"),
    )]);
    let json = analysis.report.render_json();
    assert!(json.contains("\"chain\": [{\"fn\": \"workload::canary_entry\""), "{json}");
    let dot = analysis.graph.render_dot();
    assert!(dot.contains("doublecircle"), "entry must be marked in the DOT dump:\n{dot}");
}

#[test]
fn fixture_paths_are_excluded_from_real_scans() {
    assert!(FileClass::classify("crates/lint/tests/fixtures/bad_hashmap.rs").is_none());
}
