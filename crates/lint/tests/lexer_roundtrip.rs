//! Property test: the lexer's token shapes survive a render → re-lex
//! round trip for arbitrary streams of edge-case fragments.
//!
//! Each vocabulary fragment is a snippet whose token shapes are known by
//! construction — raw strings, nested block comments, lifetime-vs-char
//! ambiguity, byte chars, raw identifiers. A generated source is the
//! space-joined concatenation of fragments, so its expected shape stream
//! is the concatenation of the fragments' shapes. The lexed stream must
//! match, and rendering those tokens back to canonical text and lexing
//! again must reproduce the same shapes (comments drop out by design).

use lookaside_lint::lexer::{lex, Tok};
use proptest::prelude::*;

/// The shape of a token: everything the rule engine matches on.
/// Identifier spelling is carried so the round trip checks it too.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    Ident(String),
    Lifetime,
    Literal,
    ColonColon,
    Punct(u8),
}

fn shape(tok: &Tok) -> Shape {
    match tok {
        Tok::Ident(s) => Shape::Ident(s.clone()),
        Tok::Lifetime => Shape::Lifetime,
        Tok::Literal => Shape::Literal,
        Tok::ColonColon => Shape::ColonColon,
        Tok::Punct(b) => Shape::Punct(*b),
    }
}

/// What one vocabulary fragment lexes to: at most one token (plus any
/// number of comments, which carry no token).
#[derive(Debug, Clone, Copy)]
enum Kind {
    /// An identifier spelled as the fragment text minus any `r#` sigil.
    Ident,
    Lifetime,
    Literal,
    ColonColon,
    Punct(u8),
    /// A comment: no token, one comment record.
    Comment,
}

const VOCAB: &[(&str, Kind)] = &[
    ("foo", Kind::Ident),
    ("r#type", Kind::Ident),
    ("'a", Kind::Lifetime),
    ("'_", Kind::Lifetime),
    ("'static", Kind::Lifetime),
    ("'x'", Kind::Literal),
    ("'\\n'", Kind::Literal),
    ("'\\''", Kind::Literal),
    ("b'q'", Kind::Literal),
    ("b'\\\\'", Kind::Literal),
    ("\"plain string\"", Kind::Literal),
    ("\"esc \\\" quote\"", Kind::Literal),
    ("r\"raw\"", Kind::Literal),
    ("r#\"raw with \"quotes\" inside\"#", Kind::Literal),
    ("r##\"nested \"# hash\"##", Kind::Literal),
    ("b\"bytes\"", Kind::Literal),
    ("br\"raw bytes\"", Kind::Literal),
    ("42", Kind::Literal),
    ("0xff_u64", Kind::Literal),
    ("1_000", Kind::Literal),
    ("3.25", Kind::Literal),
    ("::", Kind::ColonColon),
    ("(", Kind::Punct(b'(')),
    (")", Kind::Punct(b')')),
    ("[", Kind::Punct(b'[')),
    ("]", Kind::Punct(b']')),
    ("{", Kind::Punct(b'{')),
    ("}", Kind::Punct(b'}')),
    (".", Kind::Punct(b'.')),
    (",", Kind::Punct(b',')),
    (";", Kind::Punct(b';')),
    ("&", Kind::Punct(b'&')),
    ("#", Kind::Punct(b'#')),
    ("/", Kind::Punct(b'/')),
    ("<", Kind::Punct(b'<')),
    (">", Kind::Punct(b'>')),
    ("// line comment\n", Kind::Comment),
    ("/* block */", Kind::Comment),
    ("/* outer /* nested */ tail */", Kind::Comment),
];

/// Canonical rendering of a shape stream: spelled idents, `'a` for
/// lifetimes, `0` for literals, the punctuation byte itself. Tokens are
/// space-joined, so adjacent renders can never fuse into a comment or a
/// wider token.
fn render(shapes: &[Shape]) -> String {
    let mut out = String::new();
    for s in shapes {
        match s {
            Shape::Ident(name) => out.push_str(name),
            Shape::Lifetime => out.push_str("'a"),
            Shape::Literal => out.push('0'),
            Shape::ColonColon => out.push_str("::"),
            Shape::Punct(b) => out.push(char::from(*b)),
        }
        out.push(' ');
    }
    out
}

proptest! {
    #[test]
    fn token_shapes_survive_render_and_relex(
        picks in proptest::collection::vec(0usize..39, 0..48),
    ) {
        let mut src = String::new();
        let mut expected: Vec<Shape> = Vec::new();
        let mut expected_comments = 0usize;
        for &p in &picks {
            let (text, kind) = VOCAB[p % VOCAB.len()];
            src.push_str(text);
            src.push(' ');
            match kind {
                Kind::Ident => expected.push(Shape::Ident(
                    text.strip_prefix("r#").unwrap_or(text).to_string(),
                )),
                Kind::Lifetime => expected.push(Shape::Lifetime),
                Kind::Literal => expected.push(Shape::Literal),
                Kind::ColonColon => expected.push(Shape::ColonColon),
                Kind::Punct(b) => expected.push(Shape::Punct(b)),
                Kind::Comment => expected_comments += 1,
            }
        }

        let lexed = lex(&src);
        let got: Vec<Shape> = lexed.tokens.iter().map(|t| shape(&t.tok)).collect();
        prop_assert_eq!(&got, &expected, "first lex of {:?}", src);
        prop_assert_eq!(lexed.comments.len(), expected_comments);

        let relexed = lex(&render(&got));
        let again: Vec<Shape> = relexed.tokens.iter().map(|t| shape(&t.tok)).collect();
        prop_assert_eq!(&again, &expected, "re-lex of render");
        prop_assert_eq!(relexed.comments.len(), 0, "canonical render has no comments");
    }
}
