//! The three transitive dataflow passes over the workspace call graph
//! (DESIGN.md §15): panic-reachability, determinism taint, and the
//! purity wall. Each pass walks [`crate::graph::CallGraph`] edges from
//! tagged roots, carries the full call chain as finding evidence, and
//! honors per-edge / per-site suppressions:
//!
//! * a `lint:allow(semantic::<pass>)` on a **call-site** line cuts that
//!   edge for the pass — the traversal simply does not cross it, so an
//!   allow on an edge the pass never reaches is flagged `allow::unused`
//!   (that is how stale suppressions die);
//! * a `lint:allow(semantic::<pass>)` on a **violating-site** line waives
//!   that one site;
//! * a justified *lexical* allow (`panic::unwrap`, `determinism::*`, …)
//!   on a site also waives the corresponding semantic finding — one
//!   justification per site, not two.
//!
//! Pass semantics:
//!
//! 1. **panic-reachability** — no function reachable from a
//!    `lint:entry(hot-path)` root may contain `unwrap`/`expect`/
//!    `panic!`-family macros/slice indexing, in any crate. The lexical
//!    `panic::*` rules only see the [`crate::rules::HOT_PATH`] crates; this
//!    pass follows calls out of them.
//! 2. **determinism taint** — no function reachable from a
//!    `lint:sink(determinism)` root (merges, folds, report/checkpoint
//!    serialization) may read a nondeterminism source: wall clocks,
//!    ambient entropy, environment, hash-ordered iteration, thread
//!    identity. The engine's seed plumbing
//!    ([`crate::rules::ENV_SANCTIONED_FILES`]) is the one blessed source.
//! 3. **purity wall** — `std::{fs,io,net}` effects are confined to
//!    [`DIRECT_EFFECT_ALLOWED`] files and [`EFFECT_CRATES`]; only
//!    [`EFFECT_REACH_CRATES`] may *call into* functions that reach those
//!    effects. This keeps the sim crates (resolver, netsim, wire, zone,
//!    population, workload, server) free of I/O so the daemon-ize
//!    roadmap item can split them out behind an IPC boundary without
//!    dragging file handles and sockets along.
//!
//! Findings stay *at the wall*: a purity violation is reported at the
//! direct effect site (outside the sanctioned files) or at the single
//! crossing edge where a sim crate first calls into effectful code —
//! never cascaded up through every ancestor.

use std::collections::BTreeMap;

use crate::graph::{CallGraph, GraphFile};
use crate::lexer::Tok;
use crate::parse::FnTag;
use crate::report::{ChainStep, Finding, Suppressed};
use crate::rules::{
    method_call, path_call, Allow, ENTROPY_IDENTS, ENV_SANCTIONED_FILES, HASH_IDENTS,
    NON_INDEX_KEYWORDS,
};

/// Files where direct `std::{fs,io,net}` effects are sanctioned: journal
/// persistence and the stderr diagnostics sink.
pub const DIRECT_EFFECT_ALLOWED: &[&str] =
    &["crates/engine/src/checkpoint.rs", "crates/engine/src/diag.rs"];

/// Crates that are tooling/drivers rather than simulation: every file in
/// them may perform effects directly (`bench` owns the `repro` binary,
/// `lint` is this analyzer, `daemon` is the roadmap's service split).
pub const EFFECT_CRATES: &[&str] = &["bench", "lint", "daemon"];

/// Crates allowed to *call into* effectful functions (the orchestration
/// layer plus the effect crates themselves). Everything else — the sim
/// crates — must stay transitively effect-free.
pub const EFFECT_REACH_CRATES: &[&str] = &["core", "engine", "bench", "lint", "daemon", "<root>"];

/// One extracted fact site inside a symbol's body.
#[derive(Debug, Clone)]
struct Site {
    line: u32,
    /// What the site does, for messages (e.g. "`.unwrap()`").
    desc: String,
    /// The lexical rule whose allow also waives this site, if any.
    lexical_rule: Option<&'static str>,
}

/// Per-symbol facts feeding the passes.
#[derive(Debug, Default)]
struct Facts {
    panics: Vec<Site>,
    sources: Vec<Site>,
    effects: Vec<Site>,
}

/// What [`run`] produced.
#[derive(Debug, Default)]
pub struct SemanticOutcome {
    /// Unsuppressed semantic findings (with chains).
    pub findings: Vec<Finding>,
    /// Sites and edges silenced by justified allows.
    pub suppressed: Vec<Suppressed>,
}

/// Runs all three passes. `allows` is parallel to `files`; used allows
/// are marked so the caller's stale-suppression check sees them.
pub(crate) fn run(
    files: &[GraphFile],
    graph: &CallGraph,
    allows: &mut [Vec<Allow>],
) -> SemanticOutcome {
    let facts = extract_facts(files, graph);
    let mut out = SemanticOutcome::default();
    panic_pass(files, graph, &facts, allows, &mut out);
    taint_pass(files, graph, &facts, allows, &mut out);
    purity_pass(files, graph, &facts, allows, &mut out);
    out
}

/// Effect APIs recognized as `Type::method(` path calls.
const EFFECT_TYPE_CALLS: &[(&str, &[&str])] = &[
    ("File", &["open", "create", "create_new", "options"]),
    ("OpenOptions", &["new"]),
    ("TcpStream", &["connect"]),
    ("TcpListener", &["bind"]),
    ("UdpSocket", &["bind"]),
];

/// Walks every Src file's tokens once, attributing panic sites,
/// nondeterminism sources, and I/O effects to their owning symbol via
/// the parser's owner map.
fn extract_facts(files: &[GraphFile], graph: &CallGraph) -> Vec<Facts> {
    let mut facts: Vec<Facts> = (0..graph.symbols.len()).map(|_| Facts::default()).collect();
    let sym_of: BTreeMap<(usize, usize), usize> =
        graph.symbols.iter().enumerate().map(|(i, s)| ((s.file_idx, s.fn_idx), i)).collect();

    for (file_idx, gf) in files.iter().enumerate() {
        if gf.class.role != crate::rules::Role::Src {
            continue;
        }
        let rel = gf.class.rel_path.as_str();
        // The seed plumbing is the blessed nondeterminism source; the
        // bench crate is the CLI boundary (reads env/args by design).
        let sources_blessed =
            ENV_SANCTIONED_FILES.contains(&rel) || gf.class.crate_dir.as_deref() == Some("bench");
        let toks = &gf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            let Some(fn_idx) = gf.parsed.owner.get(i).copied().flatten() else { continue };
            let Some(&sym) = sym_of.get(&(file_idx, fn_idx)) else { continue };
            let fx = &mut facts[sym];

            if t.tok == Tok::Punct(b'[') && i > 0 {
                let indexes = match &toks[i - 1].tok {
                    Tok::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    Tok::Punct(b')') | Tok::Punct(b']') => true,
                    _ => false,
                };
                if indexes {
                    fx.panics.push(Site {
                        line: t.line,
                        desc: "slice/array indexing".into(),
                        lexical_rule: Some("panic::slice-index"),
                    });
                }
                continue;
            }
            let Tok::Ident(id) = &t.tok else { continue };

            // --- panic sites ---
            match id.as_str() {
                "unwrap" if method_call(toks, i) => fx.panics.push(Site {
                    line: t.line,
                    desc: "`.unwrap()`".into(),
                    lexical_rule: Some("panic::unwrap"),
                }),
                "expect" if method_call(toks, i) => fx.panics.push(Site {
                    line: t.line,
                    desc: "`.expect()`".into(),
                    lexical_rule: Some("panic::expect"),
                }),
                "panic" | "todo" | "unimplemented" | "unreachable"
                    if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(b'!'))) =>
                {
                    fx.panics.push(Site {
                        line: t.line,
                        desc: format!("`{id}!`"),
                        lexical_rule: Some("panic::panic-macro"),
                    })
                }
                _ => {}
            }

            // --- nondeterminism sources ---
            if !sources_blessed {
                if HASH_IDENTS.contains(&id.as_str()) {
                    fx.sources.push(Site {
                        line: t.line,
                        desc: format!("hash-ordered iteration (`{id}`)"),
                        lexical_rule: Some("determinism::hash-collection"),
                    });
                }
                if (id == "Instant" || id == "SystemTime") && path_call(toks, i, "now") {
                    fx.sources.push(Site {
                        line: t.line,
                        desc: format!("wall clock (`{id}::now`)"),
                        lexical_rule: Some("determinism::wall-clock"),
                    });
                }
                if ENTROPY_IDENTS.contains(&id.as_str()) {
                    fx.sources.push(Site {
                        line: t.line,
                        desc: format!("ambient entropy (`{id}`)"),
                        lexical_rule: Some("determinism::ambient-entropy"),
                    });
                }
                if id == "thread" && path_call(toks, i, "current") {
                    fx.sources.push(Site {
                        line: t.line,
                        desc: "thread identity (`thread::current`)".into(),
                        lexical_rule: Some("determinism::ambient-entropy"),
                    });
                }
                if id == "env"
                    && (path_call(toks, i, "var")
                        || path_call(toks, i, "var_os")
                        || path_call(toks, i, "vars"))
                {
                    fx.sources.push(Site {
                        line: t.line,
                        desc: "environment read (`env::var`)".into(),
                        lexical_rule: Some("determinism::env-read"),
                    });
                }
            }

            // --- I/O effects ---
            for (ty, methods) in EFFECT_TYPE_CALLS {
                if id == ty && methods.iter().any(|m| path_call(toks, i, m)) {
                    fx.effects.push(Site {
                        line: t.line,
                        desc: format!("`{ty}::…`"),
                        lexical_rule: None,
                    });
                }
            }
            if id == "fs"
                && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::ColonColon))
                && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct(b'(')))
            {
                if let Some(Tok::Ident(name)) = toks.get(i + 2).map(|t| &t.tok) {
                    fx.effects.push(Site {
                        line: t.line,
                        desc: format!("`fs::{name}`"),
                        lexical_rule: None,
                    });
                }
            }
            if id == "io"
                && (path_call(toks, i, "stdin")
                    || path_call(toks, i, "stdout")
                    || path_call(toks, i, "stderr"))
            {
                fx.effects.push(Site {
                    line: t.line,
                    desc: "`io::std{in,out,err}`".into(),
                    lexical_rule: None,
                });
            }
            if matches!(id.as_str(), "print" | "println" | "eprint" | "eprintln")
                && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(b'!')))
            {
                fx.effects.push(Site {
                    line: t.line,
                    desc: format!("`{id}!`"),
                    lexical_rule: None,
                });
            }
        }
    }
    facts
}

/// Waives a violating site when a matching allow exists in its file:
/// first the semantic rule (recorded as suppressed), then the lexical
/// twin (already recorded by the lexical pass; just marked used).
fn waive_site(
    rule: &'static str,
    site: &Site,
    file: &str,
    file_allows: &mut [Allow],
    out: &mut SemanticOutcome,
) -> bool {
    if let Some(a) = file_allows.iter_mut().find(|a| a.matches(rule, site.line)) {
        a.used = true;
        out.suppressed.push(Suppressed {
            rule,
            file: file.to_string(),
            line: site.line,
            justification: a.justification.clone().unwrap_or_default(),
        });
        return true;
    }
    if let Some(lex) = site.lexical_rule {
        if let Some(a) = file_allows.iter_mut().find(|a| a.matches(lex, site.line)) {
            a.used = true;
            return true;
        }
    }
    false
}

/// Checks a traversal edge against the caller-file allows; a match cuts
/// the edge (and is recorded once per site as suppressed).
fn edge_allowed(
    rule: &'static str,
    caller_file_idx: usize,
    caller_file: &str,
    line: u32,
    allows: &mut [Vec<Allow>],
    out: &mut SemanticOutcome,
) -> bool {
    let Some(a) = allows[caller_file_idx].iter_mut().find(|a| a.matches(rule, line)) else {
        return false;
    };
    a.used = true;
    let rec = Suppressed {
        rule,
        file: caller_file.to_string(),
        line,
        justification: a.justification.clone().unwrap_or_default(),
    };
    if !out
        .suppressed
        .iter()
        .any(|s| s.rule == rec.rule && s.file == rec.file && s.line == rec.line)
    {
        out.suppressed.push(rec);
    }
    true
}

/// Forward BFS from `roots`, honoring per-edge allows for `rule`.
/// Returns (visited, parent) where `parent[s] = (predecessor, call line)`.
fn bfs(
    graph: &CallGraph,
    roots: &[usize],
    rule: &'static str,
    allows: &mut [Vec<Allow>],
    out: &mut SemanticOutcome,
) -> (Vec<bool>, Vec<Option<(usize, u32)>>) {
    let n = graph.symbols.len();
    let mut visited = vec![false; n];
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut queue: std::collections::VecDeque<usize> = roots.iter().copied().collect();
    for &r in roots {
        visited[r] = true;
    }
    while let Some(u) = queue.pop_front() {
        let caller = &graph.symbols[u];
        for &ei in &graph.out_edges[u] {
            let e = graph.edges[ei];
            if visited[e.callee] {
                continue;
            }
            if edge_allowed(rule, caller.file_idx, &caller.file, e.line, allows, out) {
                continue;
            }
            visited[e.callee] = true;
            parent[e.callee] = Some((u, e.line));
            queue.push_back(e.callee);
        }
    }
    (visited, parent)
}

/// Reconstructs the evidence chain from a BFS root down to `sym`:
/// the root's definition site first, then each callee with the call-site
/// line in its caller's file.
fn chain_to(graph: &CallGraph, parent: &[Option<(usize, u32)>], sym: usize) -> Vec<ChainStep> {
    let mut rev = Vec::new();
    let mut cur = sym;
    while let Some((prev, line)) = parent[cur] {
        rev.push(ChainStep {
            qual: graph.symbols[cur].qual.clone(),
            file: graph.symbols[prev].file.clone(),
            line,
        });
        cur = prev;
    }
    let root = &graph.symbols[cur];
    rev.push(ChainStep { qual: root.qual.clone(), file: root.file.clone(), line: root.line });
    rev.reverse();
    rev
}

/// Pass 1: panic-reachability from `lint:entry(hot-path)` roots.
fn panic_pass(
    _files: &[GraphFile],
    graph: &CallGraph,
    facts: &[Facts],
    allows: &mut [Vec<Allow>],
    out: &mut SemanticOutcome,
) {
    const RULE: &str = "semantic::panic-reachable";
    let roots: Vec<usize> = (0..graph.symbols.len())
        .filter(|&i| graph.symbols[i].tags.contains(&FnTag::HotPathEntry))
        .collect();
    let (visited, parent) = bfs(graph, &roots, RULE, allows, out);
    for (s, fx) in facts.iter().enumerate() {
        if !visited[s] || fx.panics.is_empty() {
            continue;
        }
        let sym = &graph.symbols[s];
        let chain = chain_to(graph, &parent, s);
        let entry = &chain[0].qual;
        for site in &fx.panics {
            if waive_site(RULE, site, &sym.file, &mut allows[sym.file_idx], out) {
                continue;
            }
            out.findings.push(Finding {
                rule: RULE,
                file: sym.file.clone(),
                line: site.line,
                message: format!(
                    "{} in `{}` is reachable from hot-path entry `{entry}` ({} call{} deep) \
                     — return a typed error instead",
                    site.desc,
                    sym.qual,
                    chain.len() - 1,
                    if chain.len() == 2 { "" } else { "s" },
                ),
                chain: chain.clone(),
            });
        }
    }
}

/// Pass 2: determinism taint — one BFS per `lint:sink(determinism)`
/// root, so every finding names the sink it poisons.
fn taint_pass(
    _files: &[GraphFile],
    graph: &CallGraph,
    facts: &[Facts],
    allows: &mut [Vec<Allow>],
    out: &mut SemanticOutcome,
) {
    const RULE: &str = "semantic::taint-flow";
    let sinks: Vec<usize> = (0..graph.symbols.len())
        .filter(|&i| graph.symbols[i].tags.contains(&FnTag::DeterminismSink))
        .collect();
    for snk in sinks {
        let sink_qual = graph.symbols[snk].qual.clone();
        let (visited, parent) = bfs(graph, &[snk], RULE, allows, out);
        for (s, fx) in facts.iter().enumerate() {
            if !visited[s] || fx.sources.is_empty() {
                continue;
            }
            let sym = &graph.symbols[s];
            let chain = chain_to(graph, &parent, s);
            for site in &fx.sources {
                if waive_site(RULE, site, &sym.file, &mut allows[sym.file_idx], out) {
                    continue;
                }
                out.findings.push(Finding {
                    rule: RULE,
                    file: sym.file.clone(),
                    line: site.line,
                    message: format!(
                        "{} in `{}` taints result-bearing sink `{sink_qual}` — route it \
                         through the engine seed path or drop it",
                        site.desc, sym.qual,
                    ),
                    chain: chain.clone(),
                });
            }
        }
    }
}

/// True when every file of `crate_dir` may hold direct effects.
fn effect_crate(crate_dir: &str) -> bool {
    EFFECT_CRATES.contains(&crate_dir)
}

/// True when `file`/`crate_dir` sanctions direct effect sites.
fn direct_effects_allowed(file: &str, crate_dir: &str) -> bool {
    DIRECT_EFFECT_ALLOWED.contains(&file) || effect_crate(crate_dir)
}

/// Pass 3: the purity wall.
fn purity_pass(
    _files: &[GraphFile],
    graph: &CallGraph,
    facts: &[Facts],
    allows: &mut [Vec<Allow>],
    out: &mut SemanticOutcome,
) {
    const RULE: &str = "semantic::purity-wall";

    // (a) Direct effect sites outside the sanctioned files.
    for (s, fx) in facts.iter().enumerate() {
        let sym = &graph.symbols[s];
        if direct_effects_allowed(&sym.file, &sym.crate_dir) {
            continue;
        }
        for site in &fx.effects {
            if waive_site(RULE, site, &sym.file, &mut allows[sym.file_idx], out) {
                continue;
            }
            out.findings.push(Finding {
                rule: RULE,
                file: sym.file.clone(),
                line: site.line,
                message: format!(
                    "{} in `{}` — I/O is confined to engine::checkpoint, engine::diag, \
                     and the bench/lint/daemon crates (daemon-readiness, DESIGN.md §15)",
                    site.desc, sym.qual,
                ),
                chain: vec![ChainStep {
                    qual: sym.qual.clone(),
                    file: sym.file.clone(),
                    line: sym.line,
                }],
            });
        }
    }

    // (b) The effectful closure: which symbols reach a *sanctioned*
    // effect site. Seeded only from sanctioned files so unsanctioned
    // direct sites (already findings above) don't cascade into every
    // ancestor. `witness[s]` records the next hop toward the effect.
    let n = graph.symbols.len();
    let mut effectful = vec![false; n];
    let mut witness: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for (s, fx) in facts.iter().enumerate() {
        let sym = &graph.symbols[s];
        if !fx.effects.is_empty() && direct_effects_allowed(&sym.file, &sym.crate_dir) {
            effectful[s] = true;
            queue.push_back(s);
        }
    }
    // Reverse propagation over the (forward) edge list: iterate until
    // fixed point, deterministically (edge order is canonical).
    while let Some(d) = queue.pop_front() {
        for e in graph.edges.iter().filter(|e| e.callee == d) {
            if effectful[e.caller] {
                continue;
            }
            let caller = &graph.symbols[e.caller];
            if edge_allowed(RULE, caller.file_idx, &caller.file, e.line, allows, out) {
                continue;
            }
            effectful[e.caller] = true;
            witness[e.caller] = Some((d, e.line));
            queue.push_back(e.caller);
        }
    }

    // (c) Crossing edges: a sim crate calling an effectful function in
    // the sanctioned region. Reported once, at the wall.
    for e in &graph.edges {
        let c = &graph.symbols[e.caller];
        let d = &graph.symbols[e.callee];
        if EFFECT_REACH_CRATES.contains(&c.crate_dir.as_str())
            || !EFFECT_REACH_CRATES.contains(&d.crate_dir.as_str())
            || !effectful[e.callee]
        {
            continue;
        }
        if edge_allowed(RULE, c.file_idx, &c.file, e.line, allows, out) {
            continue;
        }
        // Follow the witness chain from the callee down to the effect.
        let mut chain =
            vec![ChainStep { qual: d.qual.clone(), file: c.file.clone(), line: e.line }];
        let mut cur = e.callee;
        while let Some((next, line)) = witness[cur] {
            chain.push(ChainStep {
                qual: graph.symbols[next].qual.clone(),
                file: graph.symbols[cur].file.clone(),
                line,
            });
            cur = next;
        }
        let effect = facts[cur].effects.first();
        let effect_desc = effect.map(|s| s.desc.clone()).unwrap_or_else(|| "I/O".into());
        out.findings.push(Finding {
            rule: RULE,
            file: c.file.clone(),
            line: e.line,
            message: format!(
                "sim crate `{}` calls `{}`, which reaches {effect_desc} — I/O stays behind \
                 the engine wall so the daemon split can isolate it",
                c.crate_dir, d.qual,
            ),
            chain,
        });
    }
}
