//! The workspace symbol table and call graph.
//!
//! Symbols are the non-test functions of every `Role::Src` file; edges
//! are syntactic call sites resolved through module paths, `use`
//! imports, and impl-type matching. Resolution is deliberately
//! **over-approximate**: a method call `.merge(` links to *every*
//! workspace method named `merge`, because without type inference the
//! honest static answer is "any of them" — the transitive passes
//! (DESIGN.md §15) need no false negatives, and a spurious edge can
//! always be cut with a justified per-edge `lint:allow`. Calls that
//! resolve to nothing (std and shim functions, macros, tuple-struct
//! constructors) produce no edge.
//!
//! Everything is ordered: symbols by (file, line), edges by
//! (caller, callee, line), so the DOT dump and every pass over the graph
//! is byte-stable across runs and machines.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Tok};
use crate::parse::{FnTag, ParsedFile, KEYWORDS};
use crate::rules::FileClass;

/// One analyzed source file, bundled for graph construction.
pub struct GraphFile {
    /// Classification (path, crate, role).
    pub class: FileClass,
    /// Its token stream.
    pub lexed: Lexed,
    /// Its parsed item structure.
    pub parsed: ParsedFile,
}

/// A workspace function.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Index of the defining file in the graph's file list.
    pub file_idx: usize,
    /// Index of the function in that file's `ParsedFile::fns`.
    pub fn_idx: usize,
    /// The `crates/<dir>` crate, or `<root>` for top-level tests.
    pub crate_dir: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Display path: `crate::module::Type::name`.
    pub qual: String,
    /// Bare function name.
    pub name: String,
    /// Impl/trait type, if a method.
    pub self_ty: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Tags from `lint:entry(..)` / `lint:sink(..)` comments.
    pub tags: Vec<FnTag>,
}

/// A resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Calling symbol.
    pub caller: usize,
    /// Called symbol.
    pub callee: usize,
    /// 1-indexed line of the call site (in the caller's file).
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions of all Src files, ordered by (file, line).
    pub symbols: Vec<Symbol>,
    /// All resolved edges, ordered by (caller, callee, line), deduped on
    /// (caller, callee) keeping the smallest line.
    pub edges: Vec<Edge>,
    /// Adjacency: for each symbol, indices into `edges` where it is the
    /// caller.
    pub out_edges: Vec<Vec<usize>>,
}

/// Maps an extern lib name used in `use` paths (`lookaside`,
/// `lookaside_engine`, …) back to its `crates/<dir>` directory.
fn crate_of_lib(lib: &str) -> Option<String> {
    if lib == "lookaside" {
        return Some("core".to_string());
    }
    lib.strip_prefix("lookaside_").map(|d| d.to_string())
}

impl CallGraph {
    /// Builds the graph over `files`. Only `Role::Src` files contribute
    /// symbols and edges; functions inside test regions are skipped.
    pub fn build(files: &[GraphFile]) -> CallGraph {
        let mut g = CallGraph::default();

        // Pass 1: symbols.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (file_idx, gf) in files.iter().enumerate() {
            if gf.class.role != crate::rules::Role::Src {
                continue;
            }
            let crate_dir = gf.class.crate_dir.clone().unwrap_or_else(|| "<root>".to_string());
            for (fn_idx, f) in gf.parsed.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let mut qual = crate_dir.clone();
                for m in &f.module {
                    qual.push_str("::");
                    qual.push_str(m);
                }
                if let Some(ty) = &f.self_ty {
                    qual.push_str("::");
                    qual.push_str(ty);
                }
                qual.push_str("::");
                qual.push_str(&f.name);
                g.symbols.push(Symbol {
                    file_idx,
                    fn_idx,
                    crate_dir: crate_dir.clone(),
                    file: gf.class.rel_path.clone(),
                    qual,
                    name: f.name.clone(),
                    self_ty: f.self_ty.clone(),
                    line: f.line,
                    tags: f.tags.clone(),
                });
            }
        }
        for (i, s) in g.symbols.iter().enumerate() {
            by_name.entry(s.name.as_str()).or_default().push(i);
        }

        // Pass 2: edges.
        let mut edge_set: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        for (file_idx, gf) in files.iter().enumerate() {
            if gf.class.role != crate::rules::Role::Src {
                continue;
            }
            let sym_of_fn: BTreeMap<usize, usize> = g
                .symbols
                .iter()
                .enumerate()
                .filter(|(_, s)| s.file_idx == file_idx)
                .map(|(i, s)| (s.fn_idx, i))
                .collect();
            for call in extract_calls(&gf.lexed, &gf.parsed) {
                let Some(&caller) = sym_of_fn.get(&call.owner) else { continue };
                let callees = g.resolve(&by_name, caller, gf, &call);
                for callee in callees {
                    edge_set
                        .entry((caller, callee))
                        .and_modify(|l| *l = (*l).min(call.line))
                        .or_insert(call.line);
                }
            }
        }
        g.edges = edge_set
            .into_iter()
            .map(|((caller, callee), line)| Edge { caller, callee, line })
            .collect();
        g.out_edges = vec![Vec::new(); g.symbols.len()];
        for (ei, e) in g.edges.iter().enumerate() {
            g.out_edges[e.caller].push(ei);
        }
        g
    }

    /// Resolves one call site to candidate symbol indices.
    fn resolve(
        &self,
        by_name: &BTreeMap<&str, Vec<usize>>,
        caller: usize,
        gf: &GraphFile,
        call: &CallSite,
    ) -> Vec<usize> {
        let caller_sym = &self.symbols[caller];
        match &call.kind {
            CallKind::Method(name) => {
                // Any workspace method with this name (see module docs).
                by_name
                    .get(name.as_str())
                    .map(|c| {
                        c.iter().filter(|&&i| self.symbols[i].self_ty.is_some()).copied().collect()
                    })
                    .unwrap_or_default()
            }
            CallKind::Path(segments) => self.resolve_path(by_name, caller_sym, gf, segments, true),
        }
    }

    /// Resolves a path call; `follow_uses` bounds the one level of
    /// import expansion.
    fn resolve_path(
        &self,
        by_name: &BTreeMap<&str, Vec<usize>>,
        caller: &Symbol,
        gf: &GraphFile,
        segments: &[String],
        follow_uses: bool,
    ) -> Vec<usize> {
        let Some(name) = segments.last() else { return Vec::new() };
        let candidates = |pred: &dyn Fn(&Symbol) -> bool| -> Vec<usize> {
            by_name
                .get(name.as_str())
                .map(|c| c.iter().filter(|&&i| pred(&self.symbols[i])).copied().collect())
                .unwrap_or_default()
        };
        if segments.len() == 1 {
            // Bare call: same file first, then an import, then same crate.
            let same_file = candidates(&|s| s.file == caller.file && s.self_ty.is_none());
            if !same_file.is_empty() {
                return same_file;
            }
            if follow_uses {
                if let Some(u) = gf.parsed.uses.iter().find(|u| &u.name == name) {
                    let hit = self.resolve_path(by_name, caller, gf, &u.path, false);
                    if !hit.is_empty() {
                        return hit;
                    }
                }
            }
            return candidates(&|s| s.crate_dir == caller.crate_dir && s.self_ty.is_none());
        }

        let first = segments[0].as_str();
        if matches!(first, "std" | "core" | "alloc") {
            return Vec::new(); // external
        }
        if first == "Self" {
            let ty = caller.self_ty.clone();
            return candidates(&|s| s.crate_dir == caller.crate_dir && s.self_ty == ty);
        }
        // Expand a leading import alias once: `checkpoint::append(` with
        // `use lookaside_engine::checkpoint;` in scope.
        if follow_uses {
            if let Some(u) = gf.parsed.uses.iter().find(|u| u.name == first) {
                let mut full = u.path.clone();
                full.extend(segments[1..].iter().cloned());
                return self.resolve_path(by_name, caller, gf, &full, false);
            }
        }
        // Determine the target crate, if the path names one.
        let (target_crate, rest) = if matches!(first, "crate" | "self" | "super") {
            let skip = segments
                .iter()
                .take_while(|s| matches!(s.as_str(), "crate" | "self" | "super"))
                .count();
            (Some(caller.crate_dir.clone()), &segments[skip..])
        } else if let Some(dir) = crate_of_lib(first) {
            (Some(dir), &segments[1..])
        } else {
            (None, segments)
        };
        let Some(name) = rest.last() else { return Vec::new() };
        // `..::Type::name` pins the impl type when the penultimate
        // segment is capitalized.
        let ty_constraint = rest
            .len()
            .checked_sub(2)
            .map(|p| rest[p].clone())
            .filter(|t| t.chars().next().is_some_and(|c| c.is_ascii_uppercase()));
        let matches_sym = |s: &Symbol| {
            if s.name != *name {
                return false;
            }
            if let Some(c) = &target_crate {
                if &s.crate_dir != c {
                    return false;
                }
            }
            match &ty_constraint {
                Some(t) => s.self_ty.as_deref() == Some(t.as_str()),
                None => true,
            }
        };
        let scoped: Vec<usize> = by_name
            .get(name.as_str())
            .map(|c| c.iter().filter(|&&i| matches_sym(&self.symbols[i])).copied().collect())
            .unwrap_or_default();
        if !scoped.is_empty() || target_crate.is_some() {
            return scoped;
        }
        // Unscoped path (`module::name` without an import): same crate,
        // then the type-constrained workspace match.
        let same_crate = candidates(&|s| s.crate_dir == caller.crate_dir && matches_sym(s));
        if !same_crate.is_empty() {
            return same_crate;
        }
        if ty_constraint.is_some() {
            return candidates(&matches_sym);
        }
        Vec::new()
    }

    /// Renders the graph as deterministic DOT: nodes are `qual` names
    /// (entries doubled-circled, sinks boxed), edges in caller/callee
    /// order. Isolated untagged symbols are omitted to keep the dump
    /// readable.
    pub fn render_dot(&self) -> String {
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for e in &self.edges {
            used.insert(e.caller);
            used.insert(e.callee);
        }
        for (i, s) in self.symbols.iter().enumerate() {
            if !s.tags.is_empty() {
                used.insert(i);
            }
        }
        let mut out =
            String::from("digraph lookaside_calls {\n  rankdir=LR;\n  node [fontsize=10];\n");
        for &i in &used {
            let s = &self.symbols[i];
            let shape = if s.tags.contains(&FnTag::HotPathEntry) {
                "doublecircle"
            } else if s.tags.contains(&FnTag::DeterminismSink) {
                "box"
            } else {
                "ellipse"
            };
            out.push_str(&format!(
                "  \"{}\" [shape={shape}, tooltip=\"{}:{}\"];\n",
                s.qual, s.file, s.line
            ));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [tooltip=\"{}:{}\"];\n",
                self.symbols[e.caller].qual,
                self.symbols[e.callee].qual,
                self.symbols[e.caller].file,
                e.line
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Finds a symbol by `qual` suffix (test/tooling convenience).
    pub fn find(&self, qual_suffix: &str) -> Option<usize> {
        self.symbols.iter().position(|s| s.qual.ends_with(qual_suffix))
    }
}

/// What a call site syntactically names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(` — method call.
    Method(String),
    /// `a::b::name(` or `name(` — path call.
    Path(Vec<String>),
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Owning function (index into the file's `ParsedFile::fns`).
    pub owner: usize,
    /// 1-indexed line.
    pub line: u32,
    /// Shape of the call.
    pub kind: CallKind,
}

/// Extracts syntactic call sites from a lexed file, attributed to their
/// innermost owning function via [`ParsedFile::owner`].
pub fn extract_calls(lexed: &Lexed, parsed: &ParsedFile) -> Vec<CallSite> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let Some(owner) = parsed.owner.get(i).copied().flatten() else {
            i += 1;
            continue;
        };
        if toks[i].in_test {
            i += 1;
            continue;
        }
        // Method call: `.name(`
        if toks[i].tok == Tok::Punct(b'.') {
            if let (Some(Tok::Ident(name)), Some(Tok::Punct(b'('))) =
                (toks.get(i + 1).map(|t| &t.tok), toks.get(i + 2).map(|t| &t.tok))
            {
                if !KEYWORDS.contains(&name.as_str()) {
                    out.push(CallSite {
                        owner,
                        line: toks[i + 1].line,
                        kind: CallKind::Method(name.clone()),
                    });
                }
                i += 3;
                continue;
            }
            i += 1;
            continue;
        }
        // Path call: `seg(::seg)*(` — must start a path (previous token
        // is not `::` or `.`).
        if let Tok::Ident(first) = &toks[i].tok {
            let starts_path =
                i == 0 || !matches!(toks[i - 1].tok, Tok::ColonColon | Tok::Punct(b'.'));
            if starts_path && !KEYWORDS.contains(&first.as_str()) {
                let mut segs = vec![first.clone()];
                let mut j = i + 1;
                loop {
                    match (toks.get(j).map(|t| &t.tok), toks.get(j + 1).map(|t| &t.tok)) {
                        (Some(Tok::ColonColon), Some(Tok::Ident(s))) => {
                            segs.push(s.clone());
                            j += 2;
                        }
                        // Turbofish `::<T>::` — skip the generic args.
                        (Some(Tok::ColonColon), Some(Tok::Punct(b'<'))) => {
                            let mut depth = 0i32;
                            let mut k = j + 1;
                            while k < toks.len() {
                                match toks[k].tok {
                                    Tok::Punct(b'<') => depth += 1,
                                    Tok::Punct(b'>') => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            j = k + 1;
                        }
                        _ => break,
                    }
                }
                let is_call = matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct(b'(')));
                let is_macro = matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct(b'!')));
                if is_call && !is_macro {
                    out.push(CallSite { owner, line: toks[i].line, kind: CallKind::Path(segs) });
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::FileClass;

    fn gf(path: &str, src: &str) -> GraphFile {
        let class = FileClass::classify(path).expect("classifiable");
        let lexed = lex(src);
        let parsed = crate::parse::parse(&lexed);
        GraphFile { class, lexed, parsed }
    }

    #[test]
    fn same_file_calls_resolve() {
        let g = CallGraph::build(&[gf(
            "crates/core/src/a.rs",
            "fn top() { helper(); } fn helper() {}",
        )]);
        assert_eq!(g.symbols.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.symbols[g.edges[0].caller].name, "top");
        assert_eq!(g.symbols[g.edges[0].callee].name, "helper");
    }

    #[test]
    fn cross_crate_calls_resolve_through_use() {
        let files = [
            gf("crates/core/src/a.rs", "use lookaside_engine::run_fold;\nfn go() { run_fold(); }"),
            gf("crates/engine/src/fold.rs", "pub fn run_fold() {}"),
        ];
        let g = CallGraph::build(&files);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.symbols[g.edges[0].callee].crate_dir, "engine");
    }

    #[test]
    fn method_calls_link_to_all_impls() {
        let files = [
            gf("crates/core/src/a.rs", "fn go(x: Thing) { x.merge(); }"),
            gf("crates/netsim/src/b.rs", "impl Capture { pub fn merge(&mut self) {} }"),
            gf("crates/resolver/src/c.rs", "impl Counters { pub fn merge(&mut self) {} }"),
        ];
        let g = CallGraph::build(&files);
        assert_eq!(g.edges.len(), 2, "over-approximate: both merge impls linked");
    }

    #[test]
    fn type_qualified_calls_pin_the_impl() {
        let files = [
            gf("crates/core/src/a.rs", "fn go() { Worker::replica(); }"),
            gf("crates/core/src/b.rs", "impl Worker { pub fn replica() {} }"),
            gf("crates/core/src/c.rs", "impl Other { pub fn replica() {} }"),
        ];
        let g = CallGraph::build(&files);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.symbols[g.edges[0].callee].self_ty.as_deref(), Some("Worker"));
    }

    #[test]
    fn std_paths_and_macros_produce_no_edges() {
        let g = CallGraph::build(&[gf(
            "crates/core/src/a.rs",
            "fn go() { std::mem::swap(); vec![1]; println!(\"x\"); }",
        )]);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn test_functions_are_not_symbols() {
        let g = CallGraph::build(&[gf(
            "crates/core/src/a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { live(); } }",
        )]);
        assert_eq!(g.symbols.len(), 1);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn dot_render_is_stable_and_marks_tags() {
        let files = [gf(
            "crates/resolver/src/a.rs",
            "// lint:entry(hot-path)\nfn hot() { helper(); }\nfn helper() {}",
        )];
        let g = CallGraph::build(&files);
        let dot = g.render_dot();
        assert_eq!(dot, g.render_dot());
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("\"resolver::hot\" -> \"resolver::helper\""));
    }
}
