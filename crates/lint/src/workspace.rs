//! Whole-workspace analysis: the lexical rules on every file, then the
//! symbol table / call graph, then the transitive semantic passes —
//! with one shared suppression table so a `lint:allow` that neither a
//! lexical rule nor a graph traversal ever consumes is flagged stale.

use crate::graph::{CallGraph, GraphFile};
use crate::lexer::lex;
use crate::parse;
use crate::report::{Finding, Report};
use crate::rules::{self, FileClass};
use crate::semantic;

/// One workspace file handed to [`analyze`].
#[derive(Debug)]
pub struct SourceFile {
    /// Its classification (decides which rule families apply).
    pub class: FileClass,
    /// Full source text.
    pub src: String,
}

/// Everything one analysis run produced.
pub struct Analysis {
    /// The canonicalized findings/suppressions report.
    pub report: Report,
    /// The workspace call graph (for the DOT dump).
    pub graph: CallGraph,
}

/// Analyzes the whole workspace: lexical rules per file, the call graph
/// over all Src files, the three semantic passes, tag validation, and
/// stale-allow detection across *both* layers. Input order is
/// irrelevant — files are sorted by path first, and every output list is
/// canonicalized, so the report and graph are byte-stable.
pub fn analyze(mut files: Vec<SourceFile>) -> Analysis {
    files.sort_by(|a, b| a.class.rel_path.cmp(&b.class.rel_path));

    let mut gfiles: Vec<GraphFile> = Vec::with_capacity(files.len());
    let mut allows = Vec::with_capacity(files.len());
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = Vec::new();

    for f in files {
        let lexed = lex(&f.src);
        let (raw, mut file_allows) = rules::scan_file(&f.class, &lexed);
        findings.extend(rules::allow_problem_findings(&f.class, &file_allows));
        let (kept, sup) = rules::apply_allows(raw, &mut file_allows);
        findings.extend(kept);
        suppressed.extend(sup);

        let parsed = parse::parse(&lexed);
        for tp in &parsed.tag_problems {
            findings.push(Finding::new(
                "tag::unknown",
                f.class.rel_path.clone(),
                tp.line,
                format!(
                    "unknown lint tag `{}` — expected `lint:entry(hot-path)` or \
                     `lint:sink(determinism)`",
                    tp.text
                ),
            ));
        }

        gfiles.push(GraphFile { class: f.class, lexed, parsed });
        allows.push(file_allows);
    }

    let graph = CallGraph::build(&gfiles);
    let sem = semantic::run(&gfiles, &graph, &mut allows);
    findings.extend(sem.findings);
    suppressed.extend(sem.suppressed);

    // Stale-allow detection, now with full knowledge: anything neither
    // the lexical rules nor a semantic traversal consumed is dead.
    for (gf, file_allows) in gfiles.iter().zip(&allows) {
        findings.extend(rules::unused_allow_findings(&gf.class, file_allows, true));
    }

    let mut report = Report { findings, suppressed, files_scanned: gfiles.len() };
    report.canonicalize();
    Analysis { report, graph }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(path: &str, src: &str) -> SourceFile {
        SourceFile { class: FileClass::classify(path).expect("classifiable"), src: src.into() }
    }

    fn rules_fired(files: Vec<SourceFile>) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> =
            analyze(files).report.findings.iter().map(|f| f.rule).collect();
        rules.dedup();
        rules
    }

    #[test]
    fn two_call_deep_unwrap_is_caught_across_crates() {
        // The panic lives in `workload` (not a lexical HOT_PATH crate),
        // two calls below a tagged entry in `resolver` — only the
        // transitive pass can see it.
        let fired = rules_fired(vec![
            sf(
                "crates/resolver/src/a.rs",
                "// lint:entry(hot-path)\npub fn entry() { lookaside_workload::mid(); }",
            ),
            sf(
                "crates/workload/src/b.rs",
                "pub fn mid() { deep(); }\nfn deep(x: Option<u8>) { x.unwrap(); }",
            ),
        ]);
        assert_eq!(fired, vec!["semantic::panic-reachable"]);
    }

    #[test]
    fn chain_evidence_walks_entry_to_site() {
        let analysis = analyze(vec![
            sf(
                "crates/resolver/src/a.rs",
                "// lint:entry(hot-path)\npub fn entry() { lookaside_workload::mid(); }",
            ),
            sf(
                "crates/workload/src/b.rs",
                "pub fn mid() { deep(); }\nfn deep(x: Option<u8>) { x.unwrap(); }",
            ),
        ]);
        let f = &analysis.report.findings[0];
        let quals: Vec<&str> = f.chain.iter().map(|s| s.qual.as_str()).collect();
        assert_eq!(quals, vec!["resolver::entry", "workload::mid", "workload::deep"]);
        assert_eq!(f.chain[0].line, 2, "root step carries the entry's definition line");
    }

    #[test]
    fn edge_allow_cuts_the_traversal_and_is_consumed() {
        let files = vec![
            sf(
                "crates/resolver/src/a.rs",
                "// lint:entry(hot-path)\npub fn entry() {\n    \
                 // lint:allow(semantic::panic-reachable) -- mid's unwrap is bounds-proven\n    \
                 lookaside_workload::mid();\n}",
            ),
            sf("crates/workload/src/b.rs", "pub fn mid(x: Option<u8>) { x.unwrap(); }"),
        ];
        let analysis = analyze(files);
        assert!(analysis.report.findings.is_empty(), "{:#?}", analysis.report.findings);
        assert_eq!(analysis.report.suppressed.len(), 1);
        assert_eq!(analysis.report.suppressed[0].rule, "semantic::panic-reachable");
    }

    #[test]
    fn unreached_edge_allow_is_stale() {
        // No entry tag anywhere: the pass never traverses, so the allow
        // suppresses nothing and must die.
        let fired = rules_fired(vec![sf(
            "crates/resolver/src/a.rs",
            "pub fn cold() {\n    \
             // lint:allow(semantic::panic-reachable) -- stale\n    helper();\n}\n\
             fn helper() {}",
        )]);
        assert_eq!(fired, vec!["allow::unused"]);
    }

    #[test]
    fn taint_flows_from_sink_to_source() {
        let fired = rules_fired(vec![sf(
            "crates/wire/src/m.rs",
            "// lint:sink(determinism)\npub fn merge() { stamp(); }\n\
             fn stamp() { let _ = Instant::now(); }",
        )]);
        // `wire` is not RESULT_BEARING, so only the semantic pass fires.
        assert_eq!(fired, vec!["semantic::taint-flow"]);
    }

    #[test]
    fn purity_wall_flags_direct_io_in_sim_crates() {
        let fired = rules_fired(vec![sf(
            "crates/netsim/src/io.rs",
            "pub fn snapshot() { let _ = fs::read_to_string(\"x\"); }",
        )]);
        assert_eq!(fired, vec!["semantic::purity-wall"]);
    }

    #[test]
    fn purity_wall_flags_the_crossing_edge_once() {
        let analysis = analyze(vec![
            sf("crates/resolver/src/a.rs", "pub fn leak() { lookaside_engine::persist(); }"),
            sf(
                "crates/engine/src/checkpoint.rs",
                "pub fn persist() { let _ = fs::write(\"j\", []); }",
            ),
            sf(
                // An engine-internal caller is inside the wall: no finding.
                "crates/engine/src/fold2.rs",
                "pub fn orchestrate() { crate::persist(); }",
            ),
        ]);
        let findings = &analysis.report.findings;
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].rule, "semantic::purity-wall");
        assert_eq!(findings[0].file, "crates/resolver/src/a.rs");
        assert!(findings[0].message.contains("sim crate `resolver`"), "{}", findings[0].message);
    }

    #[test]
    fn unknown_tag_is_a_finding() {
        let fired = rules_fired(vec![sf(
            "crates/wire/src/t.rs",
            "// lint:entry(warm-path)\npub fn f() {}",
        )]);
        assert_eq!(fired, vec!["tag::unknown"]);
    }

    #[test]
    fn lexical_allow_also_waives_the_semantic_site() {
        let analysis = analyze(vec![sf(
            "crates/resolver/src/a.rs",
            "// lint:entry(hot-path)\npub fn entry(x: Option<u8>) {\n    \
             x.expect(\"invariant\"); // lint:allow(panic::expect) -- upheld by caller\n}",
        )]);
        assert!(analysis.report.findings.is_empty(), "{:#?}", analysis.report.findings);
        // One suppression record (the lexical one), not two.
        assert_eq!(analysis.report.suppressed.len(), 1);
        assert_eq!(analysis.report.suppressed[0].rule, "panic::expect");
    }
}
