//! CLI entry point: walk the workspace, run the full analysis (lexical
//! rules + call graph + semantic passes) over every classified `.rs`
//! file, print findings + the per-rule summary, write the JSON report
//! and the DOT call-graph dump, and exit non-zero when any unsuppressed
//! finding remains.
//!
//! ```text
//! lookaside-lint [--root DIR] [--json PATH] [--dot PATH] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lookaside_lint::{analyze, FileClass, SourceFile};

/// Top-level directories scanned relative to the workspace root.
const SCAN_DIRS: &[&str] = &["crates", "tests", "examples"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "shims", ".git", "fixtures"];

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    dot: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: Some(PathBuf::from("target/ci/lint_report.json")),
        dot: Some(PathBuf::from("target/ci/call_graph.dot")),
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?)),
            "--no-json" => args.json = None,
            "--dot" => args.dot = Some(PathBuf::from(it.next().ok_or("--dot needs a value")?)),
            "--no-dot" => args.dot = None,
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lookaside-lint: {e}");
            eprintln!("usage: lookaside-lint [--root DIR] [--json PATH | --no-json] [--quiet]");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let top = args.root.join(dir);
        if top.is_dir() {
            if let Err(e) = collect_rs_files(&top, &mut files) {
                eprintln!("lookaside-lint: walking {}: {e}", top.display());
                return ExitCode::from(2);
            }
        }
    }
    files.sort();

    let mut sources = Vec::new();
    for path in &files {
        let rel = relative_slash(path, &args.root);
        let Some(class) = FileClass::classify(&rel) else { continue };
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lookaside-lint: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        sources.push(SourceFile { class, src });
    }
    let analysis = analyze(sources);
    let report = analysis.report;

    for (what, path, contents) in [
        ("report", &args.json, report.render_json()),
        ("call graph", &args.dot, analysis.graph.render_dot()),
    ] {
        let Some(out_path) = path else { continue };
        let target =
            if out_path.is_absolute() { out_path.clone() } else { args.root.join(out_path) };
        if let Some(parent) = target.parent() {
            if let Err(e) = fs::create_dir_all(parent) {
                eprintln!("lookaside-lint: creating {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = fs::write(&target, contents) {
            eprintln!("lookaside-lint: writing {what} {}: {e}", target.display());
            return ExitCode::from(2);
        }
    }

    if args.quiet {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
    } else {
        print!("{}", report.render_text());
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn relative_slash(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}
