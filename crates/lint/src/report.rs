//! Findings, the aggregated report, and its two renderings: human text
//! and a byte-stable JSON document for `target/ci/lint_report.json`.
//!
//! Byte stability is part of the tool's own contract (it polices
//! determinism, so its report must be diffable across runs and machines):
//! no timestamps, no absolute paths, every list sorted by
//! `(file, line, rule, message)`, hand-rolled serialization with a fixed
//! field order.

use crate::rules::ALL_RULES;

/// One step of a call-chain evidence trail attached to a semantic
/// finding: `qual` was entered from `file:line` (the call site in the
/// caller, or the definition site for the chain's root).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainStep {
    /// Qualified function name, e.g. `resolver::RecursiveResolver::resolve_into`.
    pub qual: String,
    /// File of the call site reaching this function.
    pub file: String,
    /// 1-indexed line of that call site.
    pub line: u32,
}

/// One unsuppressed rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `determinism::hash-collection`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// For `semantic::*` rules: the call chain from the pass's root to
    /// the violating site. Empty for lexical findings.
    pub chain: Vec<ChainStep>,
}

impl Finding {
    /// A chain-less (lexical) finding.
    pub fn new(rule: &'static str, file: String, line: u32, message: String) -> Finding {
        Finding { rule, file, line, message, chain: Vec::new() }
    }
}

/// A violation silenced by a justified `lint:allow`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The suppressed rule.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line of the violation.
    pub line: u32,
    /// The mandatory justification text.
    pub justification: String,
}

/// The whole-workspace scan result.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings across all files.
    pub findings: Vec<Finding>,
    /// Suppressed findings across all files.
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts both lists into canonical order; call before rendering.
    pub fn canonicalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message, &a.chain)
                .cmp(&(&b.file, b.line, b.rule, &b.message, &b.chain))
        });
        self.suppressed.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.justification).cmp(&(
                &b.file,
                b.line,
                b.rule,
                &b.justification,
            ))
        });
    }

    /// Per-rule `(findings, suppressed)` counts in [`ALL_RULES`] order.
    pub fn rule_summary(&self) -> Vec<(&'static str, usize, usize)> {
        ALL_RULES
            .iter()
            .map(|&rule| {
                let hits = self.findings.iter().filter(|f| f.rule == rule).count();
                let quiet = self.suppressed.iter().filter(|s| s.rule == rule).count();
                (rule, hits, quiet)
            })
            .collect()
    }

    /// Human-readable rendering: one line per finding (plus its call
    /// chain, innermost last) and the summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message));
            for step in &f.chain {
                out.push_str(&format!("    via {} ({}:{})\n", step.qual, step.file, step.line));
            }
        }
        out.push_str(&self.render_summary());
        out
    }

    /// The one-line-per-rule coverage summary printed to CI logs.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for (rule, hits, quiet) in self.rule_summary() {
            out.push_str(&format!(
                "lint: {rule:<34} {hits} finding{}, {quiet} suppressed\n",
                if hits == 1 { "" } else { "s" }
            ));
        }
        out.push_str(&format!(
            "lint: {} finding{} ({} suppressed) across {} files\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned,
        ));
        out
    }

    /// Deterministic JSON rendering (2-space indent, fixed field order).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"lookaside-lint/2\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));

        out.push_str("  \"rule_summary\": [\n");
        let summary = self.rule_summary();
        for (i, (rule, hits, quiet)) in summary.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"findings\": {hits}, \"suppressed\": {quiet}}}{}\n",
                json_str(rule),
                comma(i, summary.len()),
            ));
        }
        out.push_str("  ],\n");

        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let chain = f
                .chain
                .iter()
                .map(|s| {
                    format!(
                        "{{\"fn\": {}, \"file\": {}, \"line\": {}}}",
                        json_str(&s.qual),
                        json_str(&s.file),
                        s.line
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"chain\": [{}]}}{}\n",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                chain,
                comma(i, self.findings.len()),
            ));
        }
        out.push_str("  ],\n");

        out.push_str("  \"suppressed\": [\n");
        for (i, s) in self.suppressed.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"justification\": {}}}{}\n",
                json_str(s.rule),
                json_str(&s.file),
                s.line,
                json_str(&s.justification),
                comma(i, self.suppressed.len()),
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

/// JSON string escaping per RFC 8259 (control chars as \u00XX).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: "panic::unwrap",
                    file: "crates/b/src/x.rs".into(),
                    line: 9,
                    message: "b".into(),
                    chain: vec![ChainStep {
                        qual: "b::entry".into(),
                        file: "crates/b/src/x.rs".into(),
                        line: 2,
                    }],
                },
                Finding::new(
                    "determinism::hash-collection",
                    "crates/a/src/x.rs".into(),
                    3,
                    "a \"quoted\"".into(),
                ),
            ],
            suppressed: vec![Suppressed {
                rule: "panic::slice-index",
                file: "crates/a/src/x.rs".into(),
                line: 7,
                justification: "bounds proven".into(),
            }],
            files_scanned: 2,
        };
        r.canonicalize();
        r
    }

    #[test]
    fn canonical_order_sorts_by_file_then_line() {
        let r = sample();
        assert_eq!(r.findings[0].file, "crates/a/src/x.rs");
        assert_eq!(r.findings[1].file, "crates/b/src/x.rs");
    }

    #[test]
    fn json_is_byte_stable_and_escaped() {
        let a = sample().render_json();
        let b = sample().render_json();
        assert_eq!(a, b);
        assert!(a.contains("a \\\"quoted\\\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn summary_covers_every_rule() {
        let text = sample().render_summary();
        for rule in ALL_RULES {
            assert!(text.contains(rule), "summary missing {rule}");
        }
    }
}
