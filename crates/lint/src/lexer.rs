//! A minimal Rust lexer: strips comments and string/char literals, keeps
//! identifiers and punctuation with their line numbers.
//!
//! The rule engine never needs full Rust syntax — every invariant it
//! checks is visible in the token stream (`HashMap`, `::`, `unwrap`
//! followed by `(`, an `unsafe` keyword, …) as long as tokens inside
//! comments and literals are *not* mistaken for code. That is the one
//! job this lexer does carefully: nested block comments, raw strings
//! with arbitrary `#` fences, byte/C strings, char literals vs.
//! lifetimes, and raw identifiers are all handled so that a `"HashMap"`
//! in a doc example or an `'a'` char can never produce a finding.
//!
//! Comments are preserved separately (with their line numbers) because
//! the suppression grammar (`// lint:allow(<rule>) -- <justification>`)
//! lives in them.

/// A lexical token. Literal payloads are dropped — rules only ever match
/// identifiers and punctuation shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (including raw identifiers, without `r#`).
    Ident(String),
    /// A lifetime such as `'a` or `'_`.
    Lifetime,
    /// Any literal: string, raw string, byte string, char, or number.
    Literal,
    /// The `::` path separator (kept fused so rules can match paths).
    ColonColon,
    /// A single punctuation byte.
    Punct(u8),
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-indexed line number.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]` / `#[test]`
    /// region (filled in by [`mark_test_regions`]).
    pub in_test: bool,
}

/// A comment with its text (delimiters stripped) and location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: u32,
    /// Comment text without the `//`/`/*` delimiters, trimmed.
    pub text: String,
    /// True for doc comments (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`, marking `#[cfg(test)]`/`#[test]` regions.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer { bytes: src.as_bytes(), pos: 0, line: 1, out: Lexed::default() };
    lx.run();
    let mut out = lx.out;
    mark_test_regions(&mut out.tokens);
    out
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line, in_test: false });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.string_literal();
                    self.push(Tok::Literal, line);
                }
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => {
                    self.number();
                    self.push(Tok::Literal, line);
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident_or_prefixed(line),
                b':' if self.peek(1) == Some(b':') => {
                    self.bump();
                    self.bump();
                    self.push(Tok::ColonColon, line);
                }
                _ => {
                    self.bump();
                    self.push(Tok::Punct(b), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some(b'/') | Some(b'!'));
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).trim().to_string();
        self.out.comments.push(Comment { line, text, doc });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some(b'*') | Some(b'!')) && self.peek(1) != Some(b'/');
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    end = self.pos;
                    break;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..end]).trim().to_string();
        self.out.comments.push(Comment { line, text, doc });
    }

    /// A `"…"` literal with backslash escapes (cursor on the opening quote).
    fn string_literal(&mut self) {
        self.bump();
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// A raw string `r##"…"##` (cursor on the first `#` or the quote);
    /// `fence` is the number of `#`s.
    fn raw_string(&mut self, fence: usize) {
        for _ in 0..fence {
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(b) = self.bump() {
            if b == b'"' {
                for i in 0..fence {
                    if self.peek(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                return;
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` / `'_` with no closing quote is a lifetime; `'a'`, `'\n'`,
        // `'\u{1F980}'` are char literals.
        let next = self.peek(1);
        let is_lifetime =
            matches!(next, Some(b'A'..=b'Z' | b'a'..=b'z' | b'_')) && self.peek(2) != Some(b'\'');
        self.bump(); // the quote
        if is_lifetime {
            while matches!(self.peek(0), Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')) {
                self.bump();
            }
            self.push(Tok::Lifetime, line);
            return;
        }
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        self.push(Tok::Literal, line);
    }

    fn number(&mut self) {
        while matches!(self.peek(0), Some(b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_')) {
            self.bump();
        }
        // Consume a fractional part only when a digit follows the dot, so
        // ranges like `0..10` and calls like `0.min(x)` stay intact.
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
            self.bump();
            while matches!(self.peek(0), Some(b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_')) {
                self.bump();
            }
        }
    }

    /// Identifier, or one of the literal prefixes `r"`, `r#"`, `b"`,
    /// `b'`, `br#"`, `c"`, `cr#"`, or a raw identifier `r#ident`.
    fn ident_or_prefixed(&mut self, line: u32) {
        let b0 = self.peek(0).unwrap_or(0);
        // Byte-char literal `b'x'` / `b'\n'`: consume the prefix and lex
        // the quoted part like a char (it can never be a lifetime).
        if b0 == b'b' && self.peek(1) == Some(b'\'') {
            self.bump();
            self.char_or_lifetime(line);
            return;
        }
        if matches!(b0, b'r' | b'b' | b'c') {
            if let Some(kind) = self.literal_prefix() {
                match kind {
                    Prefixed::Plain(skip) => {
                        for _ in 0..skip {
                            self.bump();
                        }
                        self.string_literal();
                        self.push(Tok::Literal, line);
                        return;
                    }
                    Prefixed::Raw { skip, fence } => {
                        for _ in 0..skip {
                            self.bump();
                        }
                        self.raw_string(fence);
                        self.push(Tok::Literal, line);
                        return;
                    }
                    Prefixed::RawIdent => {
                        self.bump();
                        self.bump();
                    }
                }
            }
        }
        let start = self.pos;
        while matches!(self.peek(0), Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')) {
            self.bump();
        }
        let ident = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(Tok::Ident(ident), line);
    }

    /// Classifies what follows an `r`/`b`/`c` at the cursor, if it opens a
    /// literal (or raw identifier) rather than a plain identifier.
    fn literal_prefix(&self) -> Option<Prefixed> {
        let b0 = self.peek(0)?;
        // Longest prefix first: `br` / `cr`.
        let (raw_at, plain) = match b0 {
            b'r' => (0usize, false),
            b'b' | b'c' => match self.peek(1) {
                Some(b'r') => (1, false),
                Some(b'"') => return Some(Prefixed::Plain(1)),
                _ => (usize::MAX, true),
            },
            _ => return None,
        };
        if plain || raw_at == usize::MAX {
            return None;
        }
        // At `r`: count `#`s, then require `"` (raw string) or an
        // ident-start (raw identifier, only for bare `r#`).
        let mut i = raw_at + 1;
        let mut fence = 0usize;
        while self.peek(i) == Some(b'#') {
            fence += 1;
            i += 1;
        }
        match self.peek(i) {
            Some(b'"') => Some(Prefixed::Raw { skip: raw_at + 1, fence }),
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'_') if fence == 1 && raw_at == 0 => {
                Some(Prefixed::RawIdent)
            }
            _ => None,
        }
    }
}

enum Prefixed {
    /// `b"` / `c"`: skip N bytes then lex a plain string.
    Plain(usize),
    /// `r`/`br`/`cr` with `fence` hashes: skip to the fence then raw-lex.
    Raw { skip: usize, fence: usize },
    /// `r#ident`.
    RawIdent,
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items so rules can skip
/// test-only code, mirroring how `cargo clippy` only sees lib targets.
///
/// Recognizes an attribute whose tokens are `test`, or `cfg(..)`
/// containing `test` but not `not`, then skips attributes that follow and
/// marks the next item through its balanced `{ … }` block (or up to `;`).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = test_attr_end(tokens, i) {
            // Skip any further attributes stacked on the same item.
            let mut j = after_attr;
            while let Some(end) = attr_end(tokens, j) {
                j = end;
            }
            // Find the item's opening `{` (or a `;` for extern/use items).
            let mut k = j;
            while k < tokens.len() {
                match tokens[k].tok {
                    Tok::Punct(b'{') => break,
                    Tok::Punct(b';') => break,
                    _ => k += 1,
                }
            }
            let end = if k < tokens.len() && tokens[k].tok == Tok::Punct(b'{') {
                balanced_end(tokens, k)
            } else {
                k.min(tokens.len().saturating_sub(1))
            };
            for t in tokens.iter_mut().take(end + 1).skip(i) {
                t.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

/// If an attribute opens at `i` and is a test attribute, returns the index
/// one past its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    let end = attr_end(tokens, i)?;
    let inner = &tokens[i + 2..end - 1];
    let idents: Vec<&str> = inner
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let is_test = match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    is_test.then_some(end)
}

/// If a (non-inner) attribute `#[…]` opens at `i`, returns the index one
/// past its closing `]`.
fn attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.tok != Tok::Punct(b'#') || tokens.get(i + 1)?.tok != Tok::Punct(b'[') {
        return None;
    }
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(i + 1) {
        match t.tok {
            Tok::Punct(b'[') => depth += 1,
            Tok::Punct(b']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open` (clamped to the last token
/// on unbalanced input).
fn balanced_end(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // HashMap in a comment
            /* unsafe { } in a block /* nested */ comment */
            let s = "HashMap::new()";
            let r = r#"Instant::now()"#;
            let c = 'u';
            real_ident();
        "##;
        assert_eq!(idents(src), vec!["let", "s", "let", "r", "let", "c", "real_ident"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let lexed = lex(src);
        let lifetimes = lexed.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn raw_identifiers_lose_their_fence() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn byte_char_literals_are_one_literal_not_an_ident() {
        // `b'x'` used to lex as Ident("b") + char literal; the spurious
        // ident could fool the item parser and the call extractor.
        let lexed = lex("let x = b'a'; let y = b'\\n'; m[b'.']");
        assert_eq!(idents("let x = b'a';"), vec!["let", "x"]);
        let lits = lexed.tokens.iter().filter(|t| t.tok == Tok::Literal).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = r#"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
        "#;
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Ident("unwrap".into()))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))] mod live { fn f() { x.unwrap(); } }";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().all(|t| !t.in_test));
    }

    #[test]
    fn comments_are_collected_with_doc_flag() {
        let src = "/// doc\n// lint:allow(x) -- y\nfn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].doc);
        assert!(!lexed.comments[1].doc);
        assert_eq!(lexed.comments[1].text, "lint:allow(x) -- y");
    }
}
