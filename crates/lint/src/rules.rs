//! The rule engine: repo invariants checked against the token stream.
//!
//! Three rule families (see DESIGN.md §10):
//!
//! * **determinism** — result-bearing crates must not use hash-ordered
//!   collections, wall clocks, ambient entropy, or environment reads
//!   outside the sanctioned seed plumbing. These protect the workspace's
//!   core contract: every experiment is byte-identical at every `--jobs`
//!   value.
//! * **panic** — hot-path crates must not contain `unwrap`/`expect`/
//!   `panic!`-family macros or slice indexing; a panicking shard turns
//!   into a [`ShardError`](../engine) but a panicking reduction corrupts
//!   a whole table.
//! * **unsafe** — every non-bench crate root carries
//!   `#![forbid(unsafe_code)]` and no `unsafe` token appears anywhere.
//! * **stream** — modules opting in with a `// lint:stream-hot-path`
//!   comment (the streaming steady state: per-packet observers, the
//!   render arena, flat zone lookup, timer rings) must not allocate per
//!   call: `format!`, `.to_string()`, and `Vec::new()` are banned in
//!   live (non-test) code. These keep the <50 allocs/query budget of
//!   BENCH_pr8.json honest.
//! * **checkpoint** — modules opting in with a `// lint:checkpoint-codec`
//!   comment (journal serialization) must keep encode/decode a pure,
//!   byte-stable function of the value: hash-ordered collections, wall
//!   clocks, and native-endian `{to,from}_ne_bytes` are banned, so a
//!   journal written on one machine resumes identically on any other.
//!
//! Suppression grammar (justification mandatory, both forms):
//!
//! ```text
//! // lint:allow(rule::id) -- why this site is safe
//! // lint:allow-file(rule::id, other::id) -- why this whole file is safe
//! ```
//!
//! A `lint:allow` on line *N* suppresses findings on lines *N* and
//! *N + 1*; `lint:allow-file` suppresses the named rules anywhere in the
//! file. Unused suppressions are themselves findings, so a fixed
//! violation forces its waiver to be deleted. The `allow::*` meta rules
//! cannot be suppressed.

use crate::lexer::{lex, Comment, Tok, Token};
use crate::report::{Finding, Suppressed};

/// Crates whose outputs feed experiment tables: full determinism rules.
pub const RESULT_BEARING: &[&str] =
    &["core", "engine", "netsim", "population", "resolver", "server", "zone", "workload"];

/// Crates on the per-query hot path: panic-surface rules.
pub const HOT_PATH: &[&str] = &["wire", "engine", "resolver"];

/// Files allowed to read the environment (the seed/jobs plumbing).
pub(crate) const ENV_SANCTIONED_FILES: &[&str] = &["crates/engine/src/seed.rs"];

/// All rule identifiers, in report order.
pub const ALL_RULES: &[&str] = &[
    "determinism::hash-collection",
    "determinism::wall-clock",
    "determinism::ambient-entropy",
    "determinism::env-read",
    "panic::unwrap",
    "panic::expect",
    "panic::panic-macro",
    "panic::slice-index",
    "unsafe::token",
    "unsafe::missing-forbid",
    "stream::hot-path",
    "checkpoint::codec",
    "semantic::panic-reachable",
    "semantic::taint-flow",
    "semantic::purity-wall",
    "tag::unknown",
    "allow::missing-justification",
    "allow::unknown-rule",
    "allow::unused",
];

/// The transitive call-graph rules (see [`crate::semantic`]); their
/// suppressions are resolved at workspace scope, per edge or per site.
pub const SEMANTIC_RULES: &[&str] =
    &["semantic::panic-reachable", "semantic::taint-flow", "semantic::purity-wall"];

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library/binary source: full rules for its crate.
    Src,
    /// Tests, benches, examples: exempt from determinism/panic rules.
    TestLike,
}

/// A classified workspace file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// The `crates/<dir>` the file belongs to, if any.
    pub crate_dir: Option<String>,
    /// Source vs. test-like.
    pub role: Role,
}

impl FileClass {
    /// Classifies a workspace-relative path; `None` means "do not scan"
    /// (non-Rust files, lint self-test fixtures).
    pub fn classify(rel_path: &str) -> Option<FileClass> {
        if !rel_path.ends_with(".rs") {
            return None;
        }
        // The lint's own fixtures are deliberate rule violations.
        if rel_path.starts_with("crates/lint/tests/fixtures/") {
            return None;
        }
        let parts: Vec<&str> = rel_path.split('/').collect();
        let (crate_dir, role) = match parts.as_slice() {
            ["crates", c, "src", ..] => (Some((*c).to_string()), Role::Src),
            ["crates", c, "tests" | "benches" | "examples", ..] => {
                (Some((*c).to_string()), Role::TestLike)
            }
            ["tests" | "examples", ..] => (None, Role::TestLike),
            _ => return None,
        };
        Some(FileClass { rel_path: rel_path.to_string(), crate_dir, role })
    }

    fn in_crate(&self, set: &[&str]) -> bool {
        self.role == Role::Src && self.crate_dir.as_deref().is_some_and(|c| set.contains(&c))
    }

    fn is_bench_crate(&self) -> bool {
        self.crate_dir.as_deref() == Some("bench")
    }

    fn is_crate_root(&self) -> bool {
        self.crate_dir.is_some() && self.role == Role::Src && self.rel_path.ends_with("/src/lib.rs")
    }
}

/// Everything the scan of one file produced.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Unsuppressed findings (these fail the gate).
    pub findings: Vec<Finding>,
    /// Suppressed findings with their justifications.
    pub suppressed: Vec<Suppressed>,
}

/// Scans one file's source text under its classification — the lexical
/// rules only. The transitive `semantic::*` passes need the whole
/// workspace; use [`crate::workspace::analyze`] for those. Allows naming
/// only semantic rules are ignored by this function's unused-allow check
/// (workspace analysis resolves them).
pub fn scan_source(class: &FileClass, src: &str) -> ScanOutcome {
    let lexed = lex(src);
    let (raw, mut allows) = scan_file(class, &lexed);
    let mut out = ScanOutcome::default();
    out.findings.extend(allow_problem_findings(class, &allows));
    let (findings, suppressed) = apply_allows(raw, &mut allows);
    out.findings.extend(findings);
    out.suppressed = suppressed;
    out.findings.extend(unused_allow_findings(class, &allows, false));
    out.findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out.suppressed.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lexical detection plus suppression parsing for one file: returns the
/// raw (pre-suppression) findings and the parsed allow list.
pub(crate) fn scan_file(
    class: &FileClass,
    lexed: &crate::lexer::Lexed,
) -> (Vec<Finding>, Vec<Allow>) {
    let allows = parse_allows(&lexed.comments);
    // A module opts into the streaming allocation rules with a bare
    // `// lint:stream-hot-path` comment (conventionally line 1).
    let stream_tagged = class.role == Role::Src
        && lexed.comments.iter().any(|c| !c.doc && c.text.trim() == "lint:stream-hot-path");
    // Checkpoint serialization modules opt into the journal-determinism
    // wall with a bare `// lint:checkpoint-codec` comment: encode/decode
    // must be a pure, byte-stable function of the value, so hash-ordered
    // collections, wall clocks, and native-endian conversions are banned.
    let ckpt_tagged = class.role == Role::Src
        && lexed.comments.iter().any(|c| !c.doc && c.text.trim() == "lint:checkpoint-codec");
    let raw = detect(class, &lexed.tokens, stream_tagged, ckpt_tagged);
    (raw, allows)
}

/// The never-suppressible grammar findings for a file's allow list.
pub(crate) fn allow_problem_findings(class: &FileClass, allows: &[Allow]) -> Vec<Finding> {
    let mut out = Vec::new();
    for a in allows {
        match &a.problem {
            Some(AllowProblem::MissingJustification) => out.push(Finding::new(
                "allow::missing-justification",
                class.rel_path.clone(),
                a.line,
                "lint:allow requires ` -- <justification>` after the rule list".into(),
            )),
            Some(AllowProblem::UnknownRule(r)) => out.push(Finding::new(
                "allow::unknown-rule",
                class.rel_path.clone(),
                a.line,
                format!("unknown rule `{r}` in lint:allow"),
            )),
            None => {}
        }
    }
    out
}

/// Matches raw findings against the file's allows, splitting them into
/// surviving findings and suppressed records.
pub(crate) fn apply_allows(
    raw: Vec<Finding>,
    allows: &mut [Allow],
) -> (Vec<Finding>, Vec<Suppressed>) {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in raw {
        match allows.iter_mut().find(|a| a.matches(f.rule, f.line)) {
            Some(a) => {
                a.used = true;
                suppressed.push(Suppressed {
                    rule: f.rule,
                    file: f.file,
                    line: f.line,
                    justification: a.justification.clone().unwrap_or_default(),
                });
            }
            None => findings.push(f),
        }
    }
    (findings, suppressed)
}

/// Flags well-formed allows that suppressed nothing. With
/// `include_semantic` false (single-file scans), allows naming only
/// `semantic::*` rules are exempt — their fate is decided by the
/// workspace passes.
pub(crate) fn unused_allow_findings(
    class: &FileClass,
    allows: &[Allow],
    include_semantic: bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for a in allows {
        if a.problem.is_some() || a.used {
            continue;
        }
        if !include_semantic && a.rules.iter().all(|r| SEMANTIC_RULES.contains(&r.as_str())) {
            continue;
        }
        out.push(Finding::new(
            "allow::unused",
            class.rel_path.clone(),
            a.line,
            format!("lint:allow({}) suppresses nothing — delete it", a.rules.join(", ")),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Suppression comments
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) enum AllowProblem {
    MissingJustification,
    UnknownRule(String),
}

#[derive(Debug)]
pub(crate) struct Allow {
    pub(crate) line: u32,
    pub(crate) rules: Vec<String>,
    pub(crate) file_scope: bool,
    pub(crate) justification: Option<String>,
    pub(crate) problem: Option<AllowProblem>,
    pub(crate) used: bool,
}

impl Allow {
    pub(crate) fn matches(&self, rule: &str, line: u32) -> bool {
        if self.problem.is_some() || rule.starts_with("allow::") {
            return false;
        }
        if !self.rules.iter().any(|r| r == rule) {
            return false;
        }
        self.file_scope || line == self.line || line == self.line + 1
    }
}

pub(crate) fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let text = c.text.trim();
        let (file_scope, rest) = if let Some(r) = text.strip_prefix("lint:allow-file(") {
            (true, r)
        } else if let Some(r) = text.strip_prefix("lint:allow(") {
            (false, r)
        } else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            allows.push(Allow {
                line: c.line,
                rules: Vec::new(),
                file_scope,
                justification: None,
                problem: Some(AllowProblem::UnknownRule("<unclosed rule list>".into())),
                used: false,
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let problem = rules
            .iter()
            .find(|r| !ALL_RULES.contains(&r.as_str()))
            .map(|r| AllowProblem::UnknownRule(r.clone()))
            .or_else(|| {
                if rules.is_empty() {
                    return Some(AllowProblem::UnknownRule("<empty rule list>".into()));
                }
                let after = rest[close + 1..].trim_start();
                match after.strip_prefix("--") {
                    Some(j) if !j.trim().is_empty() => None,
                    _ => Some(AllowProblem::MissingJustification),
                }
            });
        let justification = rest[close + 1..]
            .trim_start()
            .strip_prefix("--")
            .map(|j| j.trim().to_string())
            .filter(|j| !j.is_empty());
        allows.push(Allow { line: c.line, rules, file_scope, justification, problem, used: false });
    }
    allows
}

// ---------------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------------

/// Identifiers naming hash-ordered collections (iteration order is
/// seeded per process via `RandomState` — the canonical way a `--jobs`
/// diff gate passes on one run and fails on the next).
pub(crate) const HASH_IDENTS: &[&str] = &["HashMap", "HashSet", "hash_map", "hash_set"];

/// Identifiers reaching for ambient entropy or unspecified hashing.
pub(crate) const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "ThreadRng",
    "StdRng",
    "SmallRng",
    "RandomState",
    "DefaultHasher",
];

/// Keywords that may precede `[` without forming an index expression.
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
    "yield",
];

fn detect(
    class: &FileClass,
    tokens: &[Token],
    stream_tagged: bool,
    ckpt_tagged: bool,
) -> Vec<Finding> {
    let mut f = Vec::new();
    let determinism = class.in_crate(RESULT_BEARING);
    let panic_rules = class.in_crate(HOT_PATH);
    let unsafe_rules = !class.is_bench_crate();

    let finding = |rule: &'static str, line: u32, message: String| {
        Finding::new(rule, class.rel_path.clone(), line, message)
    };

    if unsafe_rules && class.is_crate_root() && !has_forbid_unsafe(tokens) {
        f.push(finding(
            "unsafe::missing-forbid",
            1,
            "crate root lacks `#![forbid(unsafe_code)]`".into(),
        ));
    }

    let crate_name = class.crate_dir.as_deref().unwrap_or("<workspace>");
    let env_sanctioned =
        class.is_bench_crate() || ENV_SANCTIONED_FILES.contains(&class.rel_path.as_str());

    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(ident) = &t.tok else { continue };
        let live = !t.in_test;

        if unsafe_rules && ident == "unsafe" {
            f.push(finding(
                "unsafe::token",
                t.line,
                format!("`unsafe` token in zero-unsafe crate `{crate_name}`"),
            ));
            continue;
        }
        if !live {
            continue;
        }

        if determinism {
            if HASH_IDENTS.contains(&ident.as_str()) {
                f.push(finding(
                    "determinism::hash-collection",
                    t.line,
                    format!(
                        "`{ident}` in result-bearing crate `{crate_name}` — iteration order \
                         is per-process random; use BTreeMap/BTreeSet or sorted structures"
                    ),
                ));
            }
            if (ident == "Instant" || ident == "SystemTime") && path_call(tokens, i, "now") {
                f.push(finding(
                    "determinism::wall-clock",
                    t.line,
                    format!(
                        "`{ident}::now` in result-bearing crate `{crate_name}` — simulated \
                             time must come from the network clock"
                    ),
                ));
            }
            if ENTROPY_IDENTS.contains(&ident.as_str())
                || (ident == "rand"
                    && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::ColonColon)))
            {
                f.push(finding(
                    "determinism::ambient-entropy",
                    t.line,
                    format!(
                        "`{ident}` draws ambient entropy in result-bearing crate \
                             `{crate_name}` — derive randomness from the shard seed"
                    ),
                ));
            }
            if !env_sanctioned
                && ident == "env"
                && (path_call(tokens, i, "var")
                    || path_call(tokens, i, "var_os")
                    || path_call(tokens, i, "vars"))
            {
                f.push(finding(
                    "determinism::env-read",
                    t.line,
                    format!(
                        "environment read in `{crate_name}` outside the sanctioned seed \
                             plumbing (engine::seed, bench)"
                    ),
                ));
            }
        }

        if stream_tagged {
            match ident.as_str() {
                "format" if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(b'!'))) => {
                    f.push(finding(
                        "stream::hot-path",
                        t.line,
                        "`format!` allocates in a stream-hot-path module — write into a \
                         reused buffer"
                            .into(),
                    ))
                }
                "to_string" if method_call(tokens, i) => f.push(finding(
                    "stream::hot-path",
                    t.line,
                    "`.to_string()` allocates in a stream-hot-path module — borrow or \
                     intern instead"
                        .into(),
                )),
                "Vec" if path_call(tokens, i, "new") => f.push(finding(
                    "stream::hot-path",
                    t.line,
                    "`Vec::new()` in a stream-hot-path module — preallocate with \
                     `with_capacity` outside the steady state"
                        .into(),
                )),
                _ => {}
            }
        }

        if ckpt_tagged {
            if HASH_IDENTS.contains(&ident.as_str()) {
                f.push(finding(
                    "checkpoint::codec",
                    t.line,
                    format!(
                        "`{ident}` in a checkpoint-codec module — journal contents must \
                         not depend on per-process hash order"
                    ),
                ));
            }
            if ident == "Instant" || ident == "SystemTime" {
                f.push(finding(
                    "checkpoint::codec",
                    t.line,
                    format!(
                        "`{ident}` in a checkpoint-codec module — journal encode/decode \
                         must not touch the wall clock"
                    ),
                ));
            }
            if ident == "to_ne_bytes" || ident == "from_ne_bytes" {
                f.push(finding(
                    "checkpoint::codec",
                    t.line,
                    format!(
                        "`{ident}` in a checkpoint-codec module — journals are \
                         little-endian on every platform; use the `_le_` forms"
                    ),
                ));
            }
        }

        if panic_rules {
            match ident.as_str() {
                "unwrap" if method_call(tokens, i) => f.push(finding(
                    "panic::unwrap",
                    t.line,
                    format!(
                        "`.unwrap()` on the hot path of `{crate_name}` — return a typed \
                             error instead"
                    ),
                )),
                "expect" if method_call(tokens, i) => f.push(finding(
                    "panic::expect",
                    t.line,
                    format!(
                        "`.expect()` on the hot path of `{crate_name}` — return a typed \
                             error instead"
                    ),
                )),
                "panic" | "todo" | "unimplemented"
                    if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(b'!'))) =>
                {
                    f.push(finding(
                        "panic::panic-macro",
                        t.line,
                        format!("`{ident}!` on the hot path of `{crate_name}`"),
                    ))
                }
                _ => {}
            }
        }
    }

    if panic_rules {
        detect_slice_index(class, tokens, &mut f, crate_name);
    }

    f
}

/// `tokens[i]` then `::` then `Ident(seg)` then `(` — a path call like
/// `Instant::now(` or `env::var(`.
pub(crate) fn path_call(tokens: &[Token], i: usize, seg: &str) -> bool {
    matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::ColonColon))
        && matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(s)) if s == seg)
        && matches!(tokens.get(i + 3).map(|t| &t.tok), Some(Tok::Punct(b'(')))
}

/// `.ident(` — a method call on something (excludes `unwrap_or`-style
/// idents by exact match at the call site, and excludes paths like
/// `Option::unwrap` used as fn items, which cannot panic by themselves
/// until called — those appear as `:: unwrap` and are still caught when
/// followed by `(`).
pub(crate) fn method_call(tokens: &[Token], i: usize) -> bool {
    let prev_dot = i > 0 && matches!(tokens[i - 1].tok, Tok::Punct(b'.') | Tok::ColonColon);
    prev_dot && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(b'(')))
}

/// Indexing (`expr[...]`): a `[` whose previous token closes an
/// expression — an identifier (excluding keywords), `)`, or `]`. Type
/// positions (`&[u8]`, `Vec<[u8; 4]>`), attributes (`#[...]`), and
/// macro brackets (`vec![...]`) never match because their previous token
/// is punctuation or a keyword.
fn detect_slice_index(class: &FileClass, tokens: &[Token], f: &mut Vec<Finding>, crate_name: &str) {
    for i in 1..tokens.len() {
        if tokens[i].in_test || tokens[i].tok != Tok::Punct(b'[') {
            continue;
        }
        let indexes = match &tokens[i - 1].tok {
            Tok::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
            Tok::Punct(b')') | Tok::Punct(b']') => true,
            _ => false,
        };
        if indexes {
            f.push(Finding::new(
                "panic::slice-index",
                class.rel_path.clone(),
                tokens[i].line,
                format!(
                    "slice/array indexing on the hot path of `{crate_name}` — use `get` or \
                     prove bounds and add a justified allow"
                ),
            ));
        }
    }
}

/// Looks for `forbid ( unsafe_code` in the token stream (the inner
/// attribute shape `#![forbid(unsafe_code)]`).
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(3).any(|w| {
        matches!(&w[0].tok, Tok::Ident(s) if s == "forbid")
            && w[1].tok == Tok::Punct(b'(')
            && matches!(&w[2].tok, Tok::Ident(s) if s == "unsafe_code")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src_class(path: &str) -> FileClass {
        FileClass::classify(path).expect("classifiable")
    }

    fn rules_fired(class: &FileClass, src: &str) -> Vec<&'static str> {
        scan_source(class, src).findings.into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classify_roles() {
        assert_eq!(src_class("crates/core/src/lib.rs").role, Role::Src);
        assert_eq!(src_class("crates/core/tests/x.rs").role, Role::TestLike);
        assert_eq!(src_class("tests/integration.rs").role, Role::TestLike);
        assert!(FileClass::classify("crates/lint/tests/fixtures/bad.rs").is_none());
        assert!(FileClass::classify("README.md").is_none());
    }

    #[test]
    fn hashmap_fires_only_in_result_bearing_src() {
        let src = "#![forbid(unsafe_code)] use std::collections::HashMap;";
        assert_eq!(
            rules_fired(&src_class("crates/core/src/lib.rs"), src),
            vec!["determinism::hash-collection"]
        );
        assert!(rules_fired(&src_class("crates/wire/src/lib.rs"), src).is_empty());
        assert!(rules_fired(&src_class("crates/core/tests/t.rs"), src).is_empty());
    }

    #[test]
    fn same_line_and_preceding_line_allows_suppress() {
        let class = src_class("crates/core/src/x.rs");
        let same = "let m: HashMap<u8, u8> = x; // lint:allow(determinism::hash-collection) -- ok";
        let out = scan_source(&class, same);
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].justification, "ok");

        let above = "// lint:allow(determinism::hash-collection) -- ok\nlet m: HashMap<u8,u8>;";
        assert!(scan_source(&class, above).findings.is_empty());
    }

    #[test]
    fn missing_justification_is_a_finding() {
        let class = src_class("crates/core/src/x.rs");
        let src = "// lint:allow(determinism::hash-collection)\nlet m: HashMap<u8,u8>;";
        let fired = rules_fired(&class, src);
        assert!(fired.contains(&"allow::missing-justification"), "{fired:?}");
        assert!(fired.contains(&"determinism::hash-collection"), "{fired:?}");
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let class = src_class("crates/core/src/x.rs");
        let src = "// lint:allow(determinism::wall-clock) -- stale\nlet x = 1;";
        assert_eq!(rules_fired(&class, src), vec!["allow::unused"]);
    }

    #[test]
    fn file_scope_allow_covers_everything() {
        let class = src_class("crates/wire/src/x.rs");
        let src = "// lint:allow-file(panic::slice-index) -- bounds proven\nfn f(b: &[u8]) -> u8 { b[0] }";
        let out = scan_source(&class, src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn panic_rules_fire_in_hot_path_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_fired(&src_class("crates/wire/src/x.rs"), src), vec!["panic::unwrap"]);
        assert!(rules_fired(&src_class("crates/workload/src/x.rs"), src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
        assert!(rules_fired(&src_class("crates/wire/src/x.rs"), src).is_empty());
    }

    #[test]
    fn wall_clock_and_env_read() {
        let class = src_class("crates/netsim/src/x.rs");
        let src = "let t = Instant::now(); let v = std::env::var(\"X\");";
        let fired = rules_fired(&class, src);
        assert_eq!(fired, vec!["determinism::env-read", "determinism::wall-clock"]);
        // Sanctioned seed plumbing is exempt.
        let seed = src_class("crates/engine/src/seed.rs");
        assert_eq!(rules_fired(&seed, "let v = std::env::var(\"X\");"), Vec::<&str>::new());
    }

    #[test]
    fn unsafe_token_and_missing_forbid() {
        let class = src_class("crates/crypto/src/lib.rs");
        let fired = rules_fired(&class, "fn f() { let p = 1; unsafe { } }");
        assert_eq!(fired, vec!["unsafe::missing-forbid", "unsafe::token"]);
        let ok = rules_fired(&class, "#![forbid(unsafe_code)] fn f() {}");
        assert!(ok.is_empty());
    }

    #[test]
    fn attribute_and_type_brackets_are_not_indexing() {
        let class = src_class("crates/wire/src/x.rs");
        let src = "#[derive(Debug)] struct S { b: [u8; 4] } fn f(x: &mut [u8]) -> Vec<[u8; 2]> { vec![] }";
        assert!(rules_fired(&class, src).is_empty());
        assert_eq!(
            rules_fired(&class, "fn f(b: &[u8]) -> u8 { b[0] }"),
            vec!["panic::slice-index"]
        );
    }

    #[test]
    fn unknown_rule_in_allow() {
        let class = src_class("crates/core/src/x.rs");
        assert_eq!(
            rules_fired(&class, "// lint:allow(bogus::rule) -- x\nlet y = 1;"),
            vec!["allow::unknown-rule"]
        );
    }
}
