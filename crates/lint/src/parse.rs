//! A hand-rolled item parser over the lexer's token stream: functions,
//! impl/trait blocks, inline modules, and `use` declarations — just
//! enough structure for the workspace call graph, with no `syn` (the
//! build environment has no crates.io, same constraint as the lexer).
//!
//! The parser is a single forward walk with a scope stack. It never
//! needs full Rust syntax: item keywords (`mod`, `impl`, `trait`, `fn`,
//! `use`, `macro_rules`) are unambiguous in the token stream once
//! comments and literals are gone, and everything between them is
//! expression soup the walk simply attributes to the innermost enclosing
//! function. Each token is assigned an *owner* — the index of that
//! innermost function — so the fact extractors in [`crate::semantic`]
//! can attribute a panic site or an I/O call to exactly one symbol even
//! through closures and nested items.
//!
//! Function tags (`// lint:entry(hot-path)`, `// lint:sink(determinism)`)
//! are comments that attach to the next `fn` item that starts at or
//! after the comment's line; they mark the roots and sinks of the
//! transitive passes (see DESIGN.md §15).

use crate::lexer::{Comment, Lexed, Tok};

/// One name introduced by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// The name visible in this file (after any `as` rename).
    pub name: String,
    /// Full path segments, e.g. `["lookaside_engine", "checkpoint", "append"]`.
    pub path: Vec<String>,
}

/// A function tag parsed from a `lint:entry(..)` / `lint:sink(..)` comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnTag {
    /// `lint:entry(hot-path)` — a root of the panic-reachability pass.
    HotPathEntry,
    /// `lint:sink(determinism)` — a sink of the determinism-taint pass.
    DeterminismSink,
}

/// A parsed function (or trait-method declaration).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` type the function is attached to, if any.
    pub self_ty: Option<String>,
    /// Inline-module path inside this file (`mod a { mod b { .. } }` → `["a", "b"]`).
    pub module: Vec<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// True when the function sits in a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
    /// Token-index range of the body, `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
    /// Tags attached by `lint:entry(..)` / `lint:sink(..)` comments.
    pub tags: Vec<FnTag>,
}

/// A malformed `lint:entry`/`lint:sink` comment (unknown kind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagProblem {
    /// 1-indexed comment line.
    pub line: u32,
    /// The unrecognized tag text.
    pub text: String,
}

/// Everything parsed out of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// `use` declarations, in source order.
    pub uses: Vec<UseDecl>,
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// For each token index, the innermost enclosing function (index into
    /// `fns`), or `None` at item level.
    pub owner: Vec<Option<usize>>,
    /// Malformed tag comments.
    pub tag_problems: Vec<TagProblem>,
}

/// Keywords that can directly precede `(` or `{` without being calls or
/// item names; shared with the call extractor.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Parses a lexed file into its item structure.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.tokens;
    let mut out = ParsedFile { owner: vec![None; toks.len()], ..ParsedFile::default() };

    // Pending tags attach to the next `fn` whose line is >= the tag's.
    let mut tags = parse_tags(&lexed.comments, &mut out.tag_problems);
    tags.reverse(); // pop from the back in ascending line order

    #[derive(Debug)]
    enum Scope {
        Mod(String),
        Impl(Option<String>),
        Fn(usize),
        Block,
    }
    let mut stack: Vec<Scope> = Vec::new();

    let ident = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };

    // Brace index → scope to push when the walk reaches it.
    let mut pending: Vec<(usize, Scope)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        // Record ownership before any scope change at this token: the
        // braces themselves belong to the scope being opened/closed, which
        // is immaterial for fact extraction.
        if let Some(Scope::Fn(f)) = stack.iter().rev().find(|s| matches!(s, Scope::Fn(_))) {
            out.owner[i] = Some(*f);
        }
        match &toks[i].tok {
            Tok::Punct(b'{') => {
                let scope = match pending.iter().position(|(at, _)| *at == i) {
                    Some(p) => pending.swap_remove(p).1,
                    None => Scope::Block,
                };
                stack.push(scope);
                i += 1;
            }
            Tok::Punct(b'}') => {
                stack.pop();
                i += 1;
            }
            Tok::Ident(kw) if kw == "use" => {
                i = parse_use(toks, i + 1, &mut out.uses);
            }
            Tok::Ident(kw) if kw == "mod" => {
                // `mod name {` opens a module scope; `mod name;` is an
                // out-of-line module (its file is parsed separately).
                if let Some(name) = ident(i + 1) {
                    if matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(b'{'))) {
                        pending.push((i + 2, Scope::Mod(name.to_string())));
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                if let Some((brace, ty)) = impl_header(toks, i, kw == "trait") {
                    pending.push((brace, Scope::Impl(ty)));
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "macro_rules" => {
                // Token soup: skip the whole definition body.
                let mut j = i + 1;
                while j < toks.len() && toks[j].tok != Tok::Punct(b'{') {
                    j += 1;
                }
                i = if j < toks.len() { balanced_end(toks, j) + 1 } else { toks.len() };
            }
            Tok::Ident(kw) if kw == "fn" => {
                // `fn` + identifier is a function item; bare `fn` is a
                // function-pointer type (`fn(u8) -> u8`).
                let Some(name) = ident(i + 1) else {
                    i += 1;
                    continue;
                };
                let module: Vec<String> = stack
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Mod(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let self_ty = stack.iter().rev().find_map(|s| match s {
                    Scope::Impl(t) => Some(t.clone()),
                    _ => None,
                });
                let line = toks[i].line;
                let mut fn_tags = Vec::new();
                while tags.last().is_some_and(|(l, _)| *l <= line) {
                    let (_, tag) = tags.pop().unwrap_or((0, FnTag::HotPathEntry));
                    fn_tags.push(tag);
                }
                // The body opens at the first `{` after the signature (or
                // the item ends at `;` for trait declarations). Signatures
                // cannot contain braces, but array types (`[u8; 64]`)
                // nest semicolons inside brackets — only a depth-0 `;`
                // ends a body-less declaration.
                let mut j = i + 2;
                let mut body = None;
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].tok {
                        Tok::Punct(b'(') | Tok::Punct(b'[') => depth += 1,
                        Tok::Punct(b')') | Tok::Punct(b']') => depth -= 1,
                        Tok::Punct(b'{') => {
                            body = Some((j + 1, balanced_end(toks, j)));
                            pending.push((j, Scope::Fn(out.fns.len())));
                            break;
                        }
                        Tok::Punct(b';') if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                out.fns.push(FnItem {
                    name: name.to_string(),
                    self_ty: self_ty.flatten(),
                    module,
                    line,
                    in_test: toks[i].in_test,
                    body,
                    tags: fn_tags,
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses the header of an `impl`/`trait` item starting at `kw`; returns
/// the index of the opening brace and the self type (the type after
/// `for` in `impl Trait for Type`, else the first type).
fn impl_header(
    toks: &[crate::lexer::Token],
    kw: usize,
    is_trait: bool,
) -> Option<(usize, Option<String>)> {
    let mut j = kw + 1;
    let mut angle = 0i32;
    let mut after_for = false;
    let mut in_where = false;
    let mut first_ty: Option<String> = None;
    let mut for_ty: Option<String> = None;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct(b'<') => angle += 1,
            Tok::Punct(b'>') => angle -= 1,
            Tok::Punct(b'{') if angle <= 0 => {
                let ty = if after_for { for_ty } else { first_ty };
                return Some((j, ty));
            }
            Tok::Punct(b';') if angle <= 0 => return None,
            Tok::Ident(s) if angle <= 0 && !in_where => {
                if s == "for" {
                    after_for = true;
                } else if s == "where" {
                    // The self type is settled before the where clause.
                    in_where = true;
                } else if after_for {
                    // Last path segment before `<`/`{`/`where` wins.
                    for_ty = Some(s.clone());
                } else if !is_trait || first_ty.is_none() {
                    first_ty = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `use` declaration starting just after the `use` keyword;
/// returns the index one past the terminating `;`. Handles paths,
/// `as` renames, and one level of `{a, b as c, d::e}` groups; glob
/// imports contribute nothing (the resolver falls back to name search).
fn parse_use(toks: &[crate::lexer::Token], start: usize, out: &mut Vec<UseDecl>) -> usize {
    // Collect tokens until `;`.
    let mut end = start;
    while end < toks.len() && toks[end].tok != Tok::Punct(b';') {
        end += 1;
    }
    let mut prefix: Vec<String> = Vec::new();
    let mut i = start;
    // Leading `pub` etc. were consumed before `use`; path starts here.
    while i < end {
        match &toks[i].tok {
            Tok::Ident(s) => {
                if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::ColonColon) {
                    prefix.push(s.clone());
                    i += 2;
                } else {
                    // Terminal name, possibly renamed.
                    emit_use(&prefix, &toks[i..end], out);
                    return end + 1;
                }
            }
            Tok::Punct(b'{') => {
                // Group: split on commas at depth 1.
                let mut depth = 1;
                let mut item: Vec<&Tok> = Vec::new();
                let mut j = i + 1;
                while j < end && depth > 0 {
                    match &toks[j].tok {
                        Tok::Punct(b'{') => {
                            depth += 1;
                            item.push(&toks[j].tok);
                        }
                        Tok::Punct(b'}') => {
                            depth -= 1;
                            if depth > 0 {
                                item.push(&toks[j].tok);
                            }
                        }
                        Tok::Punct(b',') if depth == 1 => {
                            emit_group_item(&prefix, &item, out);
                            item.clear();
                        }
                        t => item.push(t),
                    }
                    j += 1;
                }
                emit_group_item(&prefix, &item, out);
                return end + 1;
            }
            _ => {
                // `*` glob or stray punctuation: nothing to bind.
                return end + 1;
            }
        }
    }
    end + 1
}

/// Emits the terminal of a simple `use a::b::name [as rename]`.
fn emit_use(prefix: &[String], tail: &[crate::lexer::Token], out: &mut Vec<UseDecl>) {
    let toks: Vec<&Tok> = tail.iter().map(|t| &t.tok).collect();
    emit_group_item(prefix, &toks, out);
}

/// Emits one group item (`name`, `name as rename`, `sub::path::name`,
/// or `self` meaning the prefix itself).
fn emit_group_item(prefix: &[String], item: &[&Tok], out: &mut Vec<UseDecl>) {
    let idents: Vec<&str> = item
        .iter()
        .filter_map(|t| match t {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    if idents.is_empty() {
        return;
    }
    let (path_part, mut name) = match idents.iter().position(|s| *s == "as") {
        Some(p) if p + 1 < idents.len() => (&idents[..p], idents[p + 1]),
        _ => (&idents[..], *idents.last().unwrap_or(&"")),
    };
    let mut path: Vec<String> = prefix.to_vec();
    if path_part == ["self"] {
        // `use a::b::{self}` binds `b` (or the rename) to the prefix.
        if name == "self" {
            name = prefix.last().map(String::as_str).unwrap_or("");
        }
    } else {
        path.extend(path_part.iter().map(|s| (*s).to_string()));
    }
    if name.is_empty() {
        return;
    }
    if path.is_empty() {
        return;
    }
    out.push(UseDecl { name: name.to_string(), path });
}

/// Index of the `}` matching the `{` at `open` (clamped on unbalanced
/// input).
fn balanced_end(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct(b'{') => depth += 1,
            Tok::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Parses `lint:entry(..)` / `lint:sink(..)` comments into (line, tag)
/// pairs, recording malformed kinds.
fn parse_tags(comments: &[Comment], problems: &mut Vec<TagProblem>) -> Vec<(u32, FnTag)> {
    let mut tags = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let text = c.text.trim();
        let parsed = if let Some(rest) = text.strip_prefix("lint:entry(") {
            rest.strip_suffix(')').map(|kind| (kind, true))
        } else if let Some(rest) = text.strip_prefix("lint:sink(") {
            rest.strip_suffix(')').map(|kind| (kind, false))
        } else {
            continue;
        };
        match parsed {
            Some(("hot-path", true)) => tags.push((c.line, FnTag::HotPathEntry)),
            Some(("determinism", false)) => tags.push((c.line, FnTag::DeterminismSink)),
            _ => problems.push(TagProblem { line: c.line, text: text.to_string() }),
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn functions_modules_and_impls() {
        let src = r#"
            fn top() {}
            mod inner {
                impl Widget {
                    fn method(&self) {}
                }
                impl Display for Widget {
                    fn fmt(&self) {}
                }
                trait Run {
                    fn go(&self);
                    fn default_go(&self) { self.go() }
                }
            }
        "#;
        let p = parsed(src);
        let names: Vec<(String, Option<String>, Vec<String>)> =
            p.fns.iter().map(|f| (f.name.clone(), f.self_ty.clone(), f.module.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("top".into(), None, vec![]),
                ("method".into(), Some("Widget".into()), vec!["inner".into()]),
                ("fmt".into(), Some("Widget".into()), vec!["inner".into()]),
                ("go".into(), Some("Run".into()), vec!["inner".into()]),
                ("default_go".into(), Some("Run".into()), vec!["inner".into()]),
            ]
        );
        assert!(p.fns[3].body.is_none(), "trait declaration has no body");
        assert!(p.fns[4].body.is_some());
    }

    #[test]
    fn array_types_in_signatures_do_not_end_the_item() {
        // `[u8; 64]` nests a `;` inside the parameter list and the return
        // type; the signature scan must not mistake it for a body-less
        // trait declaration, or the body's tokens lose their owner.
        let src = r#"
            impl Sha256 {
                fn compress(&mut self, block: &[u8; 64]) { chew(block) }
                fn finalize(self) -> [u8; 32] { digest() }
            }
            fn go(&self);
        "#;
        let p = parsed(src);
        assert!(p.fns[0].body.is_some(), "array param keeps the body");
        assert!(p.fns[1].body.is_some(), "array return keeps the body");
        assert!(p.fns[2].body.is_none(), "plain declaration stays body-less");
        let lexed = lex(src);
        let chew = lexed
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "chew"))
            .expect("chew token");
        assert_eq!(p.owner[chew], Some(0), "body tokens owned by compress");
    }

    #[test]
    fn owner_is_innermost_function() {
        let src = "fn outer() { helper(); fn nested() { deep(); } tail(); }";
        let p = parsed(src);
        let lexed = lex(src);
        let find = |name: &str| {
            lexed
                .tokens
                .iter()
                .position(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
                .expect("token present")
        };
        let outer = p.fns.iter().position(|f| f.name == "outer").expect("outer");
        let nested = p.fns.iter().position(|f| f.name == "nested").expect("nested");
        assert_eq!(p.owner[find("helper")], Some(outer));
        assert_eq!(p.owner[find("deep")], Some(nested));
        assert_eq!(p.owner[find("tail")], Some(outer));
    }

    #[test]
    fn use_declarations_flatten_groups_and_renames() {
        let src = "use a::b::c;\nuse x::{y, z as w, self};\nuse q::*;";
        let p = parsed(src);
        let decls: Vec<(String, Vec<String>)> =
            p.uses.iter().map(|u| (u.name.clone(), u.path.clone())).collect();
        assert_eq!(
            decls,
            vec![
                ("c".into(), vec!["a".into(), "b".into(), "c".into()]),
                ("y".into(), vec!["x".into(), "y".into()]),
                ("w".into(), vec!["x".into(), "z".into()]),
                ("x".into(), vec!["x".into()]),
            ]
        );
    }

    #[test]
    fn tags_attach_to_the_next_fn() {
        let src = "\n// lint:entry(hot-path)\n#[inline]\nfn hot() {}\n// lint:sink(determinism)\nfn merge() {}\nfn plain() {}";
        let p = parsed(src);
        assert_eq!(p.fns[0].tags, vec![FnTag::HotPathEntry]);
        assert_eq!(p.fns[1].tags, vec![FnTag::DeterminismSink]);
        assert!(p.fns[2].tags.is_empty());
        assert!(p.tag_problems.is_empty());
    }

    #[test]
    fn unknown_tag_kind_is_a_problem() {
        let p = parsed("// lint:entry(warm-path)\nfn f() {}");
        assert_eq!(p.tag_problems.len(), 1);
        assert!(p.fns[0].tags.is_empty());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parsed("fn real(cb: fn(u8) -> u8) -> fn() { cb }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn impl_generics_do_not_confuse_the_self_type() {
        let p = parsed("impl<'a, T: Clone> Holder<'a, T> { fn get(&self) {} }");
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Holder"));
        let p = parsed("impl<T> From<T> for Wrap<T> { fn from(t: T) {} }");
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Wrap"));
    }

    #[test]
    fn test_region_functions_are_marked() {
        let p = parsed("fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }");
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }
}
