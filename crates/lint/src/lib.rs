//! `lookaside-lint` — the workspace determinism & panic-safety analyzer.
//!
//! Every table this reproduction emits (fig8/9, the Byzantine sweep, the
//! DLV leakage counts) is contractually byte-identical across `--jobs`
//! values. `ci.sh` checks that contract *dynamically* with diff gates,
//! but a dynamic gate only sees the orderings one lucky run produced: a
//! stray `HashMap` iteration or `Instant::now()` in a reduction path can
//! pass a hundred diffs and then break the hundred-and-first. This crate
//! proves the invariants *statically*, before a single experiment runs.
//!
//! It is deliberately dependency-free (the build environment has no
//! crates.io, so no `syn`): a small hand-rolled lexer ([`lexer`]) strips
//! comments and literals and tokenizes, an item parser ([`parse`])
//! recovers functions/impls/`use` graphs from the token stream, a
//! workspace symbol table and call graph ([`graph`]) resolves call sites
//! across crates, a rule engine ([`rules`]) checks per-file lexical
//! invariants, three transitive dataflow passes ([`semantic`]) check
//! panic-reachability, determinism taint, and the I/O purity wall over
//! the whole graph, and [`report`] renders findings (with call-chain
//! evidence) as human text plus a byte-stable JSON document archived by
//! CI. [`workspace::analyze`] ties all of it together.
//!
//! The rule families, their scope, and the suppression grammar are
//! documented in DESIGN.md §10 and §15 and on [`rules`] / [`semantic`].
//!
//! # Example
//!
//! ```
//! use lookaside_lint::rules::{scan_source, FileClass};
//!
//! let class = FileClass::classify("crates/core/src/demo.rs").unwrap();
//! let out = scan_source(&class, "use std::collections::HashMap;");
//! assert_eq!(out.findings.len(), 1);
//! assert_eq!(out.findings[0].rule, "determinism::hash-collection");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod workspace;

pub use report::{ChainStep, Finding, Report, Suppressed};
pub use rules::{scan_source, FileClass, Role, ScanOutcome, ALL_RULES};
pub use workspace::{analyze, Analysis, SourceFile};
