//! Zone machinery benchmarks: signing throughput and NSEC lookups — the
//! setup cost of materialising the DLV registry and the per-query cost of
//! denial-of-existence proofs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lookaside_wire::{Name, RData, RrType};
use lookaside_zone::{PublishedZone, SigningKeys, Zone};

fn build_zone(records: usize) -> Zone {
    let apex = Name::parse("bench.example.").unwrap();
    let mut zone = Zone::new(apex.clone(), apex.prepend("ns1").unwrap());
    for i in 0..records {
        zone.add(
            apex.prepend(&format!("host{i:05}")).unwrap(),
            300,
            RData::A(std::net::Ipv4Addr::new(192, 0, 2, (i % 250) as u8 + 1)),
        );
    }
    zone
}

fn bench_zone(c: &mut Criterion) {
    let keys = SigningKeys::from_seed(1);

    let mut group = c.benchmark_group("zone/sign");
    for records in [10usize, 100, 1000] {
        let zone = build_zone(records);
        group.bench_with_input(BenchmarkId::from_parameter(records), &zone, |b, zone| {
            b.iter(|| PublishedZone::signed(black_box(zone.clone()), &keys, 0, u32::MAX))
        });
    }
    group.finish();

    let published = PublishedZone::signed(build_zone(1000), &keys, 0, u32::MAX);
    let hit = Name::parse("host00500.bench.example.").unwrap();
    let miss = Name::parse("host99999x.bench.example.").unwrap();
    c.bench_function("zone/lookup_hit", |b| {
        b.iter(|| published.lookup(black_box(&hit), RrType::A))
    });
    c.bench_function("zone/lookup_nxdomain_with_proof", |b| {
        b.iter(|| published.lookup(black_box(&miss), RrType::A))
    });
}

criterion_group!(benches, bench_zone);
criterion_main!(benches);
