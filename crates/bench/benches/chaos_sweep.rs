//! Cost of the §7.3.2 chaos harness: one degraded-registry cell, timeouts
//! and retransmissions included — bounds how large an outage sweep can go.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lookaside::chaos::{chaos_outage, ChaosConfig, Outage, TimerProfile};

fn cell(outage: Outage, profile: TimerProfile) -> ChaosConfig {
    ChaosConfig {
        queries: 10,
        warmup: 4,
        seed: 0xbe9c,
        outages: vec![outage],
        profiles: vec![profile],
    }
}

fn bench_chaos(c: &mut Criterion) {
    c.bench_function("chaos/healthy_retry_cell", |b| {
        b.iter(|| black_box(chaos_outage(&cell(Outage::Loss(0), TimerProfile::Retry))))
    });

    c.bench_function("chaos/loss25_retry_cell", |b| {
        b.iter(|| black_box(chaos_outage(&cell(Outage::Loss(250), TimerProfile::Retry))))
    });

    c.bench_function("chaos/blackhole_sfcache_cell", |b| {
        b.iter(|| {
            black_box(chaos_outage(&cell(Outage::Blackhole, TimerProfile::RetryServfailCache)))
        })
    });
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
