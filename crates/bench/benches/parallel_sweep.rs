//! Serial-vs-parallel cost of the sharded experiment engine.
//!
//! Benches the Fig. 8/9 sweep and the §7.3.2 chaos grid on an explicit
//! serial executor and on worker pools of 2, 4, and 8 — the speedup table
//! in EXPERIMENTS.md is transcribed from this bench's output. On a
//! single-core host the parallel rows measure pure engine overhead
//! (queueing, thread scheduling) rather than speedup; outputs stay
//! byte-identical either way, which the determinism suite enforces.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lookaside::chaos::{chaos_outage_with, ChaosConfig};
use lookaside::engine::Executor;
use lookaside::experiments::fig8_9_with;

const SWEEP_SIZES: [usize; 4] = [50, 100, 150, 200];

fn chaos_grid() -> ChaosConfig {
    ChaosConfig::quick(12)
}

fn bench_fig8_9(c: &mut Criterion) {
    c.bench_function("parallel/fig8_9_serial", |b| {
        b.iter(|| black_box(fig8_9_with(&Executor::serial(), &SWEEP_SIZES, 11)))
    });
    for jobs in [2, 4, 8] {
        c.bench_function(&format!("parallel/fig8_9_jobs{jobs}"), |b| {
            b.iter(|| black_box(fig8_9_with(&Executor::new(jobs), &SWEEP_SIZES, 11)))
        });
    }
}

fn bench_chaos_grid(c: &mut Criterion) {
    let config = chaos_grid();
    c.bench_function("parallel/chaos_grid_serial", |b| {
        b.iter(|| black_box(chaos_outage_with(&Executor::serial(), &config)))
    });
    for jobs in [2, 4, 8] {
        c.bench_function(&format!("parallel/chaos_grid_jobs{jobs}"), |b| {
            b.iter(|| black_box(chaos_outage_with(&Executor::new(jobs), &config)))
        });
    }
}

criterion_group!(benches, bench_fig8_9, bench_chaos_grid);
criterion_main!(benches);
