//! End-to-end resolution throughput: full simulated Internet, cold and
//! warm caches — the cost that bounds how fast the table/figure sweeps run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lookaside::internet::{Internet, InternetParams};
use lookaside_resolver::{BindConfig, ResolverConfig};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::RrType;
use lookaside_workload::PopulationParams;

fn bench_resolution(c: &mut Criterion) {
    c.bench_function("resolve/cold_100_domains", |b| {
        b.iter_with_setup(
            || {
                let population = PopulationParams { size: 1000, ..PopulationParams::default() };
                let internet =
                    Internet::build(InternetParams::for_top(100, population, RemedyMode::None));
                let resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 1);
                (internet, resolver)
            },
            |(mut internet, mut resolver)| {
                for rank in 1..=100usize {
                    let qname = internet.population.domain(rank);
                    let _ = resolver.resolve(&mut internet.net, black_box(&qname), RrType::A);
                }
            },
        )
    });

    c.bench_function("resolve/warm_repeat", |b| {
        let population = PopulationParams { size: 1000, ..PopulationParams::default() };
        let mut internet =
            Internet::build(InternetParams::for_top(100, population, RemedyMode::None));
        let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 1);
        let qname = internet.population.domain(1);
        let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
        b.iter(|| resolver.resolve(&mut internet.net, black_box(&qname), RrType::A).unwrap())
    });

    c.bench_function("internet/build_1000_domains", |b| {
        b.iter(|| {
            let population = PopulationParams { size: 1000, ..PopulationParams::default() };
            Internet::build(InternetParams::for_top(1000, population, RemedyMode::None))
        })
    });
}

criterion_group! {
    name = benches;
    // Each iteration builds a whole simulated Internet; keep samples small.
    config = Criterion::default().sample_size(10);
    targets = bench_resolution
}
criterion_main!(benches);
