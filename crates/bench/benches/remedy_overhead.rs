//! Remedy-overhead ablation (Table 5 / Fig. 11 at bench scale): per-domain
//! cost of each §6.2 remedy against the DLV baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lookaside::internet::{Internet, InternetParams};
use lookaside_resolver::{BindConfig, ResolverConfig};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::RrType;
use lookaside_workload::PopulationParams;

fn bench_remedies(c: &mut Criterion) {
    let mut group = c.benchmark_group("remedy/resolve_60_domains");
    for remedy in RemedyMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(remedy.label()),
            &remedy,
            |b, &remedy| {
                b.iter_with_setup(
                    || {
                        let population =
                            PopulationParams { size: 1000, ..PopulationParams::default() };
                        let internet =
                            Internet::build(InternetParams::for_top(60, population, remedy));
                        let resolver =
                            internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 1);
                        (internet, resolver)
                    },
                    |(mut internet, mut resolver)| {
                        for rank in 1..=60usize {
                            let qname = internet.population.domain(rank);
                            let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
                        }
                    },
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Each iteration builds a whole simulated Internet; keep samples small.
    config = Criterion::default().sample_size(10);
    targets = bench_remedies
}
criterion_main!(benches);
