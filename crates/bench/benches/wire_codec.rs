//! Wire codec micro-benchmarks: message encode/decode and name
//! compression, the per-packet cost every simulated exchange pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lookaside_wire::{Message, MessageBuilder, Name, RData, Record, RrType};

fn sample_response() -> Message {
    let q = Message::dnssec_query(7, Name::parse("www.example.com.").unwrap(), RrType::A);
    MessageBuilder::respond_to(&q)
        .authoritative(true)
        .answer(Record::new(
            Name::parse("www.example.com.").unwrap(),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .answer(Record::new(
            Name::parse("www.example.com.").unwrap(),
            300,
            RData::Rrsig {
                type_covered: RrType::A,
                algorithm: 253,
                labels: 3,
                original_ttl: 300,
                expiration: u32::MAX,
                inception: 0,
                key_tag: 4242,
                signer_name: Name::parse("example.com.").unwrap(),
                signature: vec![0xab; 64],
            },
        ))
        .authority(Record::new(
            Name::parse("example.com.").unwrap(),
            3600,
            RData::Ns(Name::parse("ns1.example.com.").unwrap()),
        ))
        .additional(Record::new(
            Name::parse("ns1.example.com.").unwrap(),
            3600,
            RData::A("192.0.2.53".parse().unwrap()),
        ))
        .build()
}

fn bench_codec(c: &mut Criterion) {
    let msg = sample_response();
    let bytes = msg.to_bytes();

    c.bench_function("wire/encode_response", |b| b.iter(|| black_box(&msg).to_bytes()));
    c.bench_function("wire/decode_response", |b| {
        b.iter(|| Message::from_bytes(black_box(&bytes)).unwrap())
    });
    c.bench_function("wire/roundtrip_query", |b| {
        let q = Message::dnssec_query(
            9,
            Name::parse("d0000042.com.dlv.isc.org.").unwrap(),
            RrType::Dlv,
        );
        b.iter(|| {
            let bytes = black_box(&q).to_bytes();
            Message::from_bytes(&bytes).unwrap()
        })
    });
    c.bench_function("wire/name_canonical_cmp", |b| {
        let a = Name::parse("alpha.example.com.").unwrap();
        let z = Name::parse("zulu.example.com.").unwrap();
        b.iter(|| black_box(&a).canonical_cmp(black_box(&z)))
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
