//! §6.2.4 dictionary-attack cost: how fast an adversary can hash candidate
//! names, and what that implies for the 350M-name space the paper argues
//! makes the attack impractical.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lookaside_crypto::hashed_dlv_label;
use lookaside_workload::{DomainPopulation, PopulationParams};

fn bench_dictionary(c: &mut Criterion) {
    let pop =
        DomainPopulation::new(PopulationParams { size: 100_000, ..PopulationParams::default() });
    let candidates: Vec<_> = (1..=1000).map(|r| pop.domain(r)).collect();

    let mut group = c.benchmark_group("dictionary");
    group.throughput(Throughput::Elements(candidates.len() as u64));
    group.bench_function("hash_1000_candidates", |b| {
        b.iter(|| {
            for name in &candidates {
                black_box(hashed_dlv_label(name));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dictionary);
criterion_main!(benches);
