//! Allocation profile of the resolution hot path.
//!
//! A counting global allocator wraps [`System`] and tallies every
//! allocation made while a fig8_9-style sweep runs on the serial executor.
//! The workload is fully deterministic, so the counts are too — which is
//! what lets `ci.sh` gate on them: a regression in allocations/query is a
//! real representation change, not measurement noise.
//!
//! Output: human-readable `bench alloc_sweep/...` lines plus
//! `BENCH_pr3.json` at the repository root, the first entry of the perf
//! trajectory. `PRE_REFACTOR_*` pins the same workload's cost on the
//! pre-compact-`Name` representation (commit `aa9665d`), measured with
//! this same harness.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::black_box;
use lookaside::engine::Executor;
use lookaside::experiments::fig8_9_with;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Same sweep shape as the `parallel_sweep` bench: four population sizes,
/// one cold-cache run each.
const SWEEP_SIZES: [usize; 4] = [50, 100, 150, 200];
const SEED: u64 = 11;

/// Allocations/query and bytes/query of the same workload on the
/// pre-refactor representation (`Name` = `Vec<Label>`, deep-cloned
/// rrsets/caches), measured with this harness at commit `aa9665d`.
const PRE_REFACTOR_ALLOCS_PER_QUERY: u64 = 2665;
const PRE_REFACTOR_BYTES_PER_QUERY: u64 = 88_451;

fn main() {
    // One warm-up run keeps one-time setup (environment probing, first
    // touch of lazily sized tables) out of the measured window.
    black_box(fig8_9_with(&Executor::serial(), &SWEEP_SIZES, SEED));

    let queries: u64 = SWEEP_SIZES.iter().map(|&n| n as u64).sum();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    black_box(fig8_9_with(&Executor::serial(), &SWEEP_SIZES, SEED));
    let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let bytes = BYTES.load(Ordering::Relaxed) - b0;

    let allocs_per_query = allocs / queries;
    let bytes_per_query = bytes / queries;
    println!(
        "bench alloc_sweep/fig8_9: {allocs} allocations, {bytes} bytes over {queries} queries"
    );
    println!(
        "bench alloc_sweep/fig8_9: {allocs_per_query} allocs/query, {bytes_per_query} bytes/query"
    );
    if PRE_REFACTOR_ALLOCS_PER_QUERY > 0 {
        let ratio = PRE_REFACTOR_ALLOCS_PER_QUERY as f64 / allocs_per_query as f64;
        println!(
            "bench alloc_sweep/fig8_9: {ratio:.2}x fewer allocations/query than pre-refactor \
             ({PRE_REFACTOR_ALLOCS_PER_QUERY} -> {allocs_per_query})"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"alloc_sweep/fig8_9\",\n  \"workload\": {{\"sizes\": [50, 100, 150, 200], \"seed\": {SEED}, \"queries\": {queries}}},\n  \"post\": {{\"allocations\": {allocs}, \"bytes\": {bytes}, \"allocations_per_query\": {allocs_per_query}, \"bytes_per_query\": {bytes_per_query}}},\n  \"pre\": {{\"allocations_per_query\": {PRE_REFACTOR_ALLOCS_PER_QUERY}, \"bytes_per_query\": {PRE_REFACTOR_BYTES_PER_QUERY}, \"commit\": \"aa9665d\"}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr3.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("alloc_sweep: could not write {path}: {e}");
    } else {
        println!("alloc_sweep: wrote {path}");
    }
}
