//! Throughput and allocation profile of the streaming execution mode.
//!
//! Two measurements, both deterministic (seeded workloads, serial
//! steady-state loop), so `ci.sh` can gate on them:
//!
//! * **steady-state allocations/query** — a streaming run environment
//!   (capture-less network, `LeakSink` observer) is built and warmed
//!   once, then the same ranked names are re-resolved for several rounds
//!   through one reused `Resolution` with the counting allocator
//!   watching. This is the per-query cost the arena/flat-zone/timer-ring
//!   and `resolve_into` scratch work targets; the gate is the
//!   <`ALLOC_CEILING`> ceiling, far under the ~619 allocs/query of a
//!   cold resolution (BENCH_pr3.json) and down from the 3 allocs/query
//!   the `resolve`-by-value path cost before the scratch pool.
//! * **Fig. 12 streamed throughput** — the full trace replay through
//!   [`fig12_stream`] on a 4-worker pool, reporting sampled cache-model
//!   queries per second. The full-scale figure is 92.7M queries; the
//!   measured rate is what makes `repro fig12 --full --stream` a
//!   minutes-scale run.
//!
//! Output: human-readable `bench stream_sweep/...` lines plus
//! `BENCH_pr8.json` at the repository root.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::black_box;
use lookaside::engine::Executor;
use lookaside::internet::{Internet, InternetParams};
use lookaside::netsim::CaptureFilter;
use lookaside::stream::fig12_stream;
use lookaside::wire::ext::RemedyMode;
use lookaside::wire::RrType;
use lookaside::workload::PopulationParams;
use lookaside::LeakSink;
use lookaside_resolver::{BindConfig, ResolverConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SEED: u64 = 11;
/// Ranked names resolved cold during warm-up, then re-resolved hot.
const WARM_DOMAINS: usize = 200;
/// Warm re-resolution rounds in the measured window.
const STEADY_ROUNDS: u64 = 5;
/// The steady-state allocations/query gate (`ci.sh` enforces it too).
/// `resolve_into` + the resolver's RRset scratch pool put the warm path at
/// 0 allocs/query (a few dozen residual allocations per thousand queries
/// from occasional NS re-fetches); 2 leaves headroom without letting a
/// per-query regression back in.
const ALLOC_CEILING: u64 = 2;
/// Fig. 12 sampling divisor for the throughput measurement: ~0.9M of the
/// 92.7M modeled queries actually run through the cache model.
const FIG12_SCALE: u64 = 100;

fn main() {
    // --- steady state: warm-cache resolution through the streaming path.
    let population = PopulationParams { size: 1000, ..PopulationParams::default() };
    let mut params = InternetParams::for_top(WARM_DOMAINS, population, RemedyMode::None);
    params.seed = SEED;
    params.capture = CaptureFilter::None;
    let mut internet = Internet::build(params);
    let sink =
        Rc::new(RefCell::new(LeakSink::new(CaptureFilter::DlvOnly, internet.dlv_apex.clone())));
    internet.net.set_observer(Box::new(Rc::clone(&sink)));
    let mut resolver =
        internet.resolver(ResolverConfig::Bind(BindConfig::correct()), SEED ^ 0x5a17);
    let names = internet.population.top(WARM_DOMAINS);
    // One reused Resolution: `resolve_into` overwrites it per query, so
    // its answers vector amortises to the workload's high-water capacity.
    let mut resolution = lookaside_resolver::Resolution::placeholder();
    for name in &names {
        black_box(resolver.resolve_into(&mut internet.net, name, RrType::A, &mut resolution).ok());
    }

    let steady_queries = WARM_DOMAINS as u64 * STEADY_ROUNDS;
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    for _ in 0..STEADY_ROUNDS {
        for name in &names {
            black_box(
                resolver.resolve_into(&mut internet.net, name, RrType::A, &mut resolution).ok(),
            );
        }
    }
    let steady_allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let steady_bytes = BYTES.load(Ordering::Relaxed) - b0;
    let allocs_per_query = steady_allocs / steady_queries;
    let bytes_per_query = steady_bytes / steady_queries;
    println!(
        "bench stream_sweep/steady_state: {steady_allocs} allocations, {steady_bytes} bytes \
         over {steady_queries} warm queries"
    );
    println!(
        "bench stream_sweep/steady_state: {allocs_per_query} allocs/query, \
         {bytes_per_query} bytes/query (ceiling {ALLOC_CEILING})"
    );
    drop(resolver);
    drop(internet);

    // --- throughput: the streamed Fig. 12 replay on four workers.
    let exec = Executor::new(4);
    black_box(fig12_stream(&exec, SEED, FIG12_SCALE)); // warm-up
    let started = Instant::now();
    let data = black_box(fig12_stream(&exec, SEED, FIG12_SCALE));
    let seconds = started.elapsed().as_secs_f64();
    let modeled_queries = *data.cumulative_queries.last().unwrap_or(&0);
    let sampled_queries = modeled_queries / FIG12_SCALE;
    let sampled_qps = sampled_queries as f64 / seconds;
    let modeled_qps = modeled_queries as f64 / seconds;
    println!(
        "bench stream_sweep/fig12: {modeled_queries} modeled queries \
         ({sampled_queries} sampled at 1/{FIG12_SCALE}) in {seconds:.2}s on 4 workers"
    );
    println!(
        "bench stream_sweep/fig12: {sampled_qps:.0} sampled queries/sec \
         ({modeled_qps:.0} modeled queries/sec)"
    );

    let json = format!(
        "{{\n  \"bench\": \"stream_sweep\",\n  \"steady_state\": {{\"warm_domains\": {WARM_DOMAINS}, \"rounds\": {STEADY_ROUNDS}, \"queries\": {steady_queries}, \"allocations\": {steady_allocs}, \"bytes\": {steady_bytes}, \"allocations_per_query\": {allocs_per_query}, \"bytes_per_query\": {bytes_per_query}, \"ceiling_allocs_per_query\": {ALLOC_CEILING}}},\n  \"fig12_stream\": {{\"seed\": {SEED}, \"scale\": {FIG12_SCALE}, \"workers\": 4, \"modeled_queries\": {modeled_queries}, \"sampled_queries\": {sampled_queries}, \"seconds\": {seconds:.3}, \"sampled_queries_per_sec\": {sampled_qps:.0}, \"modeled_queries_per_sec\": {modeled_qps:.0}}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("stream_sweep: could not write {path}: {e}");
    } else {
        println!("stream_sweep: wrote {path}");
    }
}
