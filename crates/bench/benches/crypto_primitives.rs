//! Crypto substrate micro-benchmarks: SHA-256 throughput, Schnorr
//! sign/verify, and DS digest construction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lookaside_crypto::{ds_digest, hashed_dlv_label, sha256, KeyPair};
use lookaside_wire::Name;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    group.finish();

    let key = KeyPair::generate_zsk(1);
    let msg = vec![0x5au8; 256];
    c.bench_function("schnorr/sign", |b| b.iter(|| key.sign(black_box(&msg))));
    let sig = key.sign(&msg);
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| key.public().verify(black_box(&msg), black_box(&sig)))
    });

    let owner = Name::parse("example.com.").unwrap();
    let ksk = KeyPair::generate_ksk(2).public();
    c.bench_function("ds_digest", |b| b.iter(|| ds_digest(black_box(&owner), black_box(&ksk))));
    c.bench_function("hashed_dlv_label", |b| b.iter(|| hashed_dlv_label(black_box(&owner))));
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
