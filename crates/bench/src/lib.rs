//! Benchmark and reproduction support for the DLV privacy study.
//!
//! The interesting entry points are the Criterion benches under `benches/`
//! and the `repro` binary (`cargo run --release -p lookaside-bench --bin
//! repro -- all`), which regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod labconfig;

/// Default dataset sizes for the quick reproduction pass.
pub const QUICK_SIZES: [usize; 3] = [100, 1_000, 10_000];

/// Dataset sizes of the paper's Tables 4–5.
pub const PAPER_SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];

/// Sweep sizes of Figs. 8–9 (the `--full` flag adds the 1M point).
pub const SWEEP_SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];
