//! A tiny `key = value` experiment-description format for the `labrun`
//! binary, so experiments can be scripted without writing Rust (and without
//! pulling a config-format dependency into the workspace).
//!
//! ```text
//! # my-experiment.lab
//! population = 5000
//! queries    = top:200          # top:N | shuffled:N:SEED | huque | ranks:1,5,9
//! install    = yum              # apt-get | apt-get2 | manual | unbound
//! remedy     = none             # txt | zbit | hashed
//! denial     = nsec             # nsec3
//! seed       = 42
//! span_ttl   = 604800
//! ```
//!
//! Unknown keys are rejected; every key has a default, so the empty file is
//! a valid quick experiment.

use lookaside::experiments::{QuerySet, RunConfig};
use lookaside_netsim::CaptureFilter;
use lookaside_resolver::{BindConfig, InstallMethod, ResolverConfig, UnboundConfig};
use lookaside_wire::ext::RemedyMode;
use lookaside_workload::PopulationParams;
use lookaside_zone::DenialMode;

/// A parse failure, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabConfigError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for LabConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for LabConfigError {}

fn err(line: usize, message: impl Into<String>) -> LabConfigError {
    LabConfigError { line, message: message.into() }
}

fn parse_queries(value: &str, line: usize) -> Result<QuerySet, LabConfigError> {
    let mut parts = value.split(':');
    match parts.next() {
        Some("top") => {
            let n = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(line, "top needs a count, e.g. top:100"))?;
            Ok(QuerySet::Top(n))
        }
        Some("shuffled") => {
            let n = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(line, "shuffled needs a count, e.g. shuffled:100:7"))?;
            let seed = parts.next().and_then(|v| v.parse().ok()).unwrap_or(1);
            Ok(QuerySet::Shuffled { n, seed })
        }
        Some("huque") => Ok(QuerySet::Huque),
        Some("ranks") => {
            let ranks: Result<Vec<usize>, _> = parts
                .next()
                .ok_or_else(|| err(line, "ranks needs a list, e.g. ranks:1,5,9"))?
                .split(',')
                .map(|v| v.trim().parse())
                .collect();
            let ranks = ranks.map_err(|_| err(line, "ranks must be integers"))?;
            if ranks.is_empty() || ranks.contains(&0) {
                return Err(err(line, "ranks must be 1-based and non-empty"));
            }
            Ok(QuerySet::Ranks(ranks))
        }
        other => Err(err(line, format!("unknown query set {other:?}"))),
    }
}

/// Parses the experiment description into a [`RunConfig`].
///
/// # Errors
///
/// Returns the first [`LabConfigError`] encountered.
pub fn parse_lab_config(text: &str) -> Result<RunConfig, LabConfigError> {
    let mut config = RunConfig {
        population: PopulationParams { size: 1000, ..PopulationParams::default() },
        queries: QuerySet::Top(100),
        resolver: ResolverConfig::Bind(BindConfig::correct()),
        remedy: RemedyMode::None,
        capture: CaptureFilter::DlvOnly,
        seed: 1,
        dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
        dlv_denial: DenialMode::Nsec,
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(line_no, format!("expected `key = value`, got {line:?}")));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "population" => {
                config.population.size = value
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err(line_no, "population must be a positive integer"))?;
            }
            "queries" => config.queries = parse_queries(value, line_no)?,
            "install" => {
                config.resolver = match value {
                    "apt-get" => ResolverConfig::Bind(InstallMethod::AptGet.bind_config()),
                    "apt-get2" => {
                        ResolverConfig::Bind(InstallMethod::AptGetCompliant.bind_config())
                    }
                    "yum" => ResolverConfig::Bind(InstallMethod::Yum.bind_config()),
                    "manual" => ResolverConfig::Bind(InstallMethod::Manual.bind_config()),
                    "unbound" => ResolverConfig::Unbound(UnboundConfig {
                        auto_trust_anchor: true,
                        dlv_anchor: true,
                    }),
                    other => return Err(err(line_no, format!("unknown install {other:?}"))),
                };
            }
            "remedy" => {
                config.remedy = match value {
                    "none" => RemedyMode::None,
                    "txt" => RemedyMode::TxtSignal,
                    "zbit" => RemedyMode::ZBit,
                    "hashed" => RemedyMode::HashedDlv,
                    other => return Err(err(line_no, format!("unknown remedy {other:?}"))),
                };
            }
            "denial" => {
                config.dlv_denial = match value {
                    "nsec" => DenialMode::Nsec,
                    "nsec3" => DenialMode::Nsec3,
                    other => return Err(err(line_no, format!("unknown denial {other:?}"))),
                };
            }
            "seed" => {
                config.seed = value.parse().map_err(|_| err(line_no, "seed must be an integer"))?;
            }
            "span_ttl" => {
                config.dlv_span_ttl =
                    value.parse().map_err(|_| err(line_no, "span_ttl must be seconds"))?;
            }
            other => return Err(err(line_no, format!("unknown key {other:?}"))),
        }
    }
    // Make sure the population can serve the query set.
    let needed = match &config.queries {
        QuerySet::Top(n) | QuerySet::Shuffled { n, .. } => *n,
        QuerySet::Ranks(ranks) => ranks.iter().copied().max().unwrap_or(1),
        QuerySet::Huque => 1,
    };
    if config.population.size < needed {
        return Err(err(
            0,
            format!("population {} smaller than query range {needed}", config.population.size),
        ));
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_file_is_the_default_experiment() {
        let config = parse_lab_config("").unwrap();
        assert_eq!(config.queries, QuerySet::Top(100));
        assert_eq!(config.population.size, 1000);
    }

    #[test]
    fn full_config_parses() {
        let text = "\
            # comment\n\
            population = 5000\n\
            queries = shuffled:200:9\n\
            install = apt-get2\n\
            remedy = zbit\n\
            denial = nsec3\n\
            seed = 77\n\
            span_ttl = 60\n";
        let config = parse_lab_config(text).unwrap();
        assert_eq!(config.population.size, 5000);
        assert_eq!(config.queries, QuerySet::Shuffled { n: 200, seed: 9 });
        assert_eq!(config.remedy, RemedyMode::ZBit);
        assert_eq!(config.dlv_denial, DenialMode::Nsec3);
        assert_eq!(config.seed, 77);
        assert_eq!(config.dlv_span_ttl, 60);
    }

    #[test]
    fn ranks_and_huque_parse() {
        assert_eq!(
            parse_lab_config("queries = ranks:3,1,9\n").unwrap().queries,
            QuerySet::Ranks(vec![3, 1, 9])
        );
        assert_eq!(parse_lab_config("queries = huque\n").unwrap().queries, QuerySet::Huque);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_lab_config("population = 100\nnonsense\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_lab_config("remedy = both\n").unwrap_err();
        assert!(e.message.contains("unknown remedy"));
        let e = parse_lab_config("queries = top:\n").unwrap_err();
        assert!(e.message.contains("top needs a count"));
    }

    #[test]
    fn population_must_cover_queries() {
        let e = parse_lab_config("population = 50\nqueries = top:100\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("smaller"));
    }

    #[test]
    fn unknown_keys_rejected() {
        let e = parse_lab_config("colour = blue\n").unwrap_err();
        assert!(e.message.contains("unknown key"));
    }
}
