//! `digsim` — a dig-like client for the simulated Internet.
//!
//! ```text
//! digsim [options] <name> [<type>]
//!
//! options:
//!   --install <apt-get|apt-get2|yum|manual>   BIND install preset (default yum)
//!   --remedy  <none|txt|zbit|hashed>          §6.2 remedy (default none)
//!   --population <N>                          ranked-domain universe (default 10000)
//!   --qmin                                    enable QNAME minimisation
//!   --trace                                   print every packet exchanged
//! ```
//!
//! Examples:
//!
//! ```text
//! digsim d0000001.com
//! digsim --install apt-get2 --trace d0000007.net
//! digsim --remedy zbit d0000042.com A
//! ```

use std::env;
use std::process::ExitCode;

use lookaside::internet::{Internet, InternetParams};
use lookaside_netsim::CaptureFilter;
use lookaside_resolver::{FeatureModel, InstallMethod, ResolverConfig};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::{Name, RrType};
use lookaside_workload::PopulationParams;

struct Options {
    install: InstallMethod,
    remedy: RemedyMode,
    population: usize,
    qmin: bool,
    trace: bool,
    /// Resolve the rank-N population domain instead of a literal name.
    rank: Option<usize>,
    qname: Option<Name>,
    qtype: RrType,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: digsim [--install apt-get|apt-get2|yum|manual] [--remedy none|txt|zbit|hashed]\n\
         \u{20}             [--population N] [--qmin] [--trace] (<name> | --rank N) [A|AAAA|MX|TXT|NS|DNSKEY|DS]\n\
         \u{20}      population names look like d0000001.com (use --rank to pick by rank)"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut install = InstallMethod::Yum;
    let mut remedy = RemedyMode::None;
    let mut population = 10_000usize;
    let mut qmin = false;
    let mut trace = false;
    let mut rank = None;
    let mut positional: Vec<String> = Vec::new();

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--install" => {
                install = match args.next().as_deref() {
                    Some("apt-get") => InstallMethod::AptGet,
                    Some("apt-get2") | Some("apt-get-compliant") => InstallMethod::AptGetCompliant,
                    Some("yum") => InstallMethod::Yum,
                    Some("manual") => InstallMethod::Manual,
                    _ => return Err(usage()),
                };
            }
            "--remedy" => {
                remedy = match args.next().as_deref() {
                    Some("none") => RemedyMode::None,
                    Some("txt") => RemedyMode::TxtSignal,
                    Some("zbit") => RemedyMode::ZBit,
                    Some("hashed") => RemedyMode::HashedDlv,
                    _ => return Err(usage()),
                };
            }
            "--population" => {
                population = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return Err(usage()),
                };
            }
            "--qmin" => qmin = true,
            "--trace" => trace = true,
            "--rank" => {
                rank = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => return Err(usage()),
                };
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            _ => return Err(usage()),
        }
    }

    // With --rank, every positional is a query type; otherwise the first is
    // the name.
    let qname = if rank.is_some() {
        None
    } else {
        match positional.first() {
            Some(name) => match Name::parse(name) {
                Ok(qname) => Some(qname),
                Err(_) => {
                    eprintln!("digsim: invalid name {name:?}");
                    return Err(ExitCode::from(2));
                }
            },
            None => return Err(usage()),
        }
    };
    let type_arg = if qname.is_some() { positional.get(1) } else { positional.first() };
    let qtype = match type_arg.map(|s| s.to_uppercase()) {
        None => RrType::A,
        Some(t) => match t.as_str() {
            "A" => RrType::A,
            "AAAA" => RrType::Aaaa,
            "MX" => RrType::Mx,
            "TXT" => RrType::Txt,
            "NS" => RrType::Ns,
            "DNSKEY" => RrType::Dnskey,
            "DS" => RrType::Ds,
            _ => return Err(usage()),
        },
    };
    Ok(Options { install, remedy, population, qmin, trace, rank, qname, qtype })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let population = PopulationParams { size: options.population, ..PopulationParams::default() };
    let mut params = InternetParams::for_top(options.population, population, options.remedy);
    params.capture = CaptureFilter::All;
    let mut internet = Internet::build(params);
    let features = FeatureModel { qname_minimization: options.qmin, ..FeatureModel::default() };
    let mut resolver = internet.resolver_with_features(
        ResolverConfig::Bind(options.install.bind_config()),
        features,
        0xd16,
    );

    let qname = match (&options.qname, options.rank) {
        (Some(name), _) => name.clone(),
        (None, Some(rank)) => {
            if rank > options.population {
                eprintln!("digsim: rank {rank} exceeds population {}", options.population);
                return ExitCode::from(2);
            }
            internet.population.domain(rank)
        }
        _ => unreachable!("parse_args enforces one of name/rank"),
    };

    println!(
        "; <<>> digsim <<>> {} {} (install {}, remedy {})",
        qname,
        options.qtype,
        options.install.label(),
        options.remedy.label()
    );
    match resolver.resolve(&mut internet.net, &qname, options.qtype) {
        Ok(res) => {
            println!(
                ";; status: {}, security: {:?}{}",
                res.rcode,
                res.status,
                if res.secured_via_dlv { " (via DLV)" } else { "" }
            );
            println!(";; ANSWER SECTION ({} records):", res.answers.len());
            for rec in &res.answers {
                println!("{rec}");
            }
        }
        Err(e) => {
            println!(";; resolution failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    let stats = internet.net.stats();
    println!(
        "\n;; upstream: {} queries, {} bytes, {:.1} ms simulated",
        stats.total_queries(),
        stats.total_bytes(),
        stats.total_time_ns() as f64 / 1e6
    );

    if options.trace {
        println!(";; PACKET TRACE:");
        for p in internet.net.capture().packets() {
            let dir = match p.direction {
                lookaside_netsim::Direction::Query => "->",
                lookaside_netsim::Direction::Response => "<-",
            };
            let label = internet.net.label_of(p.dst).unwrap_or("?");
            println!(
                ";;  {:>9.3}ms {dir} {label:<14} {} {} {} ({}B)",
                p.time_ns as f64 / 1e6,
                p.qname,
                p.qtype,
                p.rcode,
                p.size
            );
        }
    }

    let dlv_queries: Vec<_> = internet.net.capture().dlv_queries().collect();
    if dlv_queries.is_empty() {
        println!(";; the DLV registry observed nothing for this resolution");
    } else {
        println!(";; the DLV registry OBSERVED:");
        for p in dlv_queries {
            println!(";;   {}", p.qname);
        }
    }
    ExitCode::SUCCESS
}
