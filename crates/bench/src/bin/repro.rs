//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--full] [--jobs N] [--batch|--stream] [--checkpoint P|--resume P]
//!       [--allow-partial]   [table1|table2|table3|table4|table5|
//!                            fig8|fig9|fig10|fig11|fig12|order|utility|
//!                            survey|dict|attacks|chaos|byzantine|lifecycle|
//!                            farm|all]
//! ```
//!
//! Without `--full`, dataset sweeps stop at 10k domains (seconds); with it
//! they include the 100k and 1M points (minutes).
//!
//! `--jobs N` (or the `LOOKASIDE_JOBS` environment variable) sets the
//! worker-pool size the experiment engine shards sweeps across. The output
//! is byte-identical for every N — parallelism only changes wall-clock
//! time, never results.
//!
//! Experiments run in the **streaming** execution mode by default:
//! packets fold into accumulators as they happen instead of being
//! captured and classified afterwards, holding O(shards) memory.
//! `--batch` (or `LOOKASIDE_BATCH=1`) opts back into the capture-based
//! oracle pipeline. Output is byte-identical either way — `ci.sh` diffs
//! the two — so the flag trades nothing but peak memory.
//!
//! `--checkpoint P` / `--resume P` (or `LOOKASIDE_CHECKPOINT=P`) journal
//! every completed `fig12` window shard to the CRC-checked file `P`; a
//! run killed mid-sweep resumes from the journal's valid prefix and
//! produces byte-identical output. `--allow-partial` (or
//! `LOOKASIDE_ALLOW_PARTIAL=1`) accepts sweeps whose shards exhausted
//! their retry budget, printing an explicit per-shard coverage table to
//! stderr instead of aborting.

use std::env;

use lookaside::attacks;
use lookaside::byzantine::{byzantine_sweep, ByzantineConfig};
use lookaside::chaos::{chaos_outage, ChaosConfig};
use lookaside::experiments::{
    deployment_sweep, fig11, fig12, fig8_9, nsec3_tradeoff, order_matters, qmin_exposure, table3,
    table4, table5, tld_breakdown, trace_replay, utility, vantage_sweep,
};
use lookaside::farm::{Farm, FarmConfig, TopologyReport};
use lookaside::lifecycle::{lifecycle_sweep, LifecycleConfig};
use lookaside::report::{megabytes, pct, render_table};
use lookaside::workload;
use lookaside_resolver::{environments, InstallMethod};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    if let Some(jobs) = parse_jobs(&args) {
        // The engine reads LOOKASIDE_JOBS when experiments construct their
        // executor; setting it here makes --jobs authoritative for the
        // whole process.
        env::set_var(lookaside::engine::JOBS_ENV, jobs.to_string());
    }
    if args.iter().any(|a| a == "--stream") {
        // Experiments consult LOOKASIDE_STREAM through ExecMode::from_env
        // when they dispatch; setting it here makes --stream authoritative
        // for the whole process (it also wins over --batch).
        env::set_var(lookaside::engine::STREAM_ENV, "1");
    }
    if args.iter().any(|a| a == "--batch") {
        // Streaming is the default; --batch opts back into the capture
        // oracle.
        env::set_var(lookaside::engine::BATCH_ENV, "1");
    }
    if args.iter().any(|a| a == "--allow-partial") {
        env::set_var(lookaside::engine::ALLOW_PARTIAL_ENV, "1");
    }
    if let Some(path) = parse_value(&args, &["--checkpoint", "--resume"]) {
        // --checkpoint and --resume are the same mechanism: the journal
        // loader folds back whatever valid prefix the file holds (none,
        // for a fresh path) and the sweep continues from there.
        env::set_var(lookaside::engine::CHECKPOINT_ENV, path);
    }
    let mut skip_next = false;
    let what = args
        .iter()
        .filter(|a| {
            let keep = !skip_next;
            skip_next = ["--jobs", "--checkpoint", "--resume"].contains(&a.as_str());
            keep && !a.starts_with("--")
        })
        .map(String::as_str)
        .next()
        .unwrap_or("all")
        .to_string();

    let sweep: Vec<usize> = if full {
        let mut sizes = lookaside_bench::SWEEP_SIZES.to_vec();
        sizes.push(1_000_000);
        sizes
    } else {
        lookaside_bench::QUICK_SIZES.to_vec()
    };
    let t45: Vec<usize> = if full {
        lookaside_bench::PAPER_SIZES.to_vec()
    } else {
        lookaside_bench::QUICK_SIZES.to_vec()
    };

    let run_all = what == "all";
    let wants = |name: &str| run_all || what == name;

    if wants("table1") {
        print_table1();
    }
    if wants("table2") {
        print_table2();
    }
    if wants("table3") {
        print_table3();
    }
    if wants("table4") {
        print_table4(&t45);
    }
    if wants("table5") || wants("fig10") {
        print_table5_fig10(&t45);
    }
    if wants("fig8") || wants("fig9") {
        print_fig8_9(&sweep);
    }
    if wants("order") {
        print_order();
    }
    if wants("utility") {
        print_utility(if full { 10_000 } else { 2_000 });
    }
    if wants("fig11") {
        print_fig11(if full { 10_000 } else { 1_000 });
    }
    if wants("fig12") {
        print_fig12(if full { 1 } else { 500 });
    }
    if wants("nsec3") {
        print_nsec3(if full { 5_000 } else { 500 });
    }
    if wants("qmin") {
        print_qmin(if full { 2_000 } else { 300 });
    }
    if wants("vantage") {
        print_vantage(if full { 2_000 } else { 300 });
    }
    if wants("deployment") {
        print_deployment(if full { 5_000 } else { 800 });
    }
    if wants("tlds") {
        print_tlds(if full { 5_000 } else { 800 });
    }
    if wants("trace") {
        print_trace(if full { (50_000, 5_000) } else { (3_000, 500) });
    }
    if wants("survey") {
        print_survey();
    }
    if wants("dict") {
        print_dictionary();
    }
    if wants("attacks") {
        print_attacks();
    }
    if wants("chaos") {
        print_chaos(if full { 120 } else { 25 });
    }
    if wants("byzantine") {
        print_byzantine(if full { 60 } else { 15 });
    }
    if wants("lifecycle") {
        print_lifecycle(if full { 10 } else { 5 });
    }
    if wants("farm") {
        print_farm(if full { 500 } else { 2_000 });
    }
}

/// Extracts `--jobs N` / `--jobs=N` from the argument list.
fn parse_jobs(args: &[String]) -> Option<usize> {
    parse_value(args, &["--jobs"]).and_then(|v| v.parse().ok())
}

/// Extracts the value of the first flag in `names` present in the
/// argument list, accepting both `--flag VALUE` and `--flag=VALUE`.
fn parse_value(args: &[String], names: &[&str]) -> Option<String> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if names.contains(&arg.as_str()) {
            return it.next().cloned();
        }
        for name in names {
            if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
                return Some(v.to_string());
            }
        }
    }
    None
}

fn print_table1() {
    println!("\n== Table 1: resolver versions per environment ==");
    let rows: Vec<Vec<String>> = environments()
        .iter()
        .map(|e| {
            vec![
                e.os.to_string(),
                format!("{:?}", e.software),
                e.package_version.to_string(),
                e.manual_version.to_string(),
            ]
        })
        .collect();
    print!("{}", render_table(&["OS", "software", "package (P)", "manual (M)"], &rows));
}

fn print_table2() {
    println!("\n== Table 2: default configuration per install method ==");
    let rows: Vec<Vec<String>> = InstallMethod::ALL
        .iter()
        .map(|m| {
            let c = m.bind_config();
            vec![
                m.label().to_string(),
                if c.dnssec_enable { "Yes" } else { "No" }.into(),
                format!("{:?}", c.validation),
                format!("{:?}", c.lookaside),
                if c.root_anchor_included { "Yes" } else { "N/A" }.into(),
            ]
        })
        .collect();
    print!("{}", render_table(&["install", "DNSSEC", "validation", "DLV", "trust anchor"], &rows));
}

fn print_table3() {
    println!("\n== Table 3: do *secured* domains leak to DLV? (huque45) ==");
    let rows: Vec<Vec<String>> = table3(3)
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                if r.secured_leaked { "Yes" } else { "No" }.into(),
                r.islands_to_dlv.to_string(),
            ]
        })
        .collect();
    print!("{}", render_table(&["install", "secured leaked", "islands to DLV"], &rows));
    println!(
        "(paper: apt-get No, apt-get\u{2020} Yes, yum No, manual Yes; 5 islands under correct config)"
    );
}

fn print_table4(sizes: &[usize]) {
    println!("\n== Table 4: queries by type ==");
    let rows: Vec<Vec<String>> = table4(sizes, 5)
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.a.to_string(),
                r.aaaa.to_string(),
                r.dnskey.to_string(),
                r.ds.to_string(),
                r.ns.to_string(),
                r.ptr.to_string(),
                r.total().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["#domains", "A", "AAAA", "DNSKEY", "DS", "NS", "PTR", "total"], &rows)
    );
    println!("(paper @100: A 467, AAAA 243, DNSKEY 32, DS 221, NS 36, PTR 2, total 1001)");
}

fn print_table5_fig10(sizes: &[usize]) {
    println!("\n== Table 5 / Fig. 10: TXT-remedy overhead ==");
    let rows: Vec<Vec<String>> = table5(sizes, 7)
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.2}", r.base_seconds),
                format!("{:.2}", r.overhead_seconds),
                pct(r.time_ratio()),
                format!("{:.2}", r.base_mb),
                format!("{:.2}", r.overhead_mb),
                pct(r.traffic_ratio()),
                r.base_queries.to_string(),
                r.overhead_queries.to_string(),
                pct(r.query_ratio()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "#domains",
                "time base(s)",
                "time ovh(s)",
                "time%",
                "MB base",
                "MB ovh",
                "MB%",
                "queries base",
                "queries ovh",
                "queries%",
            ],
            &rows
        )
    );
    println!("(paper ratios: time 18.7\u{2192}29.2%, traffic 6.7\u{2192}10.0%, queries 10.8\u{2192}19.7%)");
}

fn print_fig8_9(sizes: &[usize]) {
    println!("\n== Figs. 8\u{2013}9: DLV queries and leaked proportion ==");
    print!("{}", lookaside::report::fig8_9_table(&fig8_9(sizes, 11)));
    println!("(paper: 84% @100 decaying ~linearly in log N to 6.8% @1M)");
}

fn print_order() {
    println!("\n== \u{a7}5.1 order matters: shuffled top-100 ==");
    let rows: Vec<Vec<String>> = order_matters(100, &[1, 2, 3], 19)
        .iter()
        .map(|(seed, prop)| vec![format!("shuffle {seed}"), pct(*prop)])
        .collect();
    print!("{}", render_table(&["trial", "leaked %"], &rows));
    println!("(paper: 82%, 84%, 77% across trials)");
}

fn print_utility(n: usize) {
    println!("\n== \u{a7}5.3 validation utility (misconfigured profile, top-{n}) ==");
    let report = utility(n, 13);
    let rows = vec![vec![
        report.dlv_queries.to_string(),
        report.case1.to_string(),
        report.case2.to_string(),
        pct(report.leak_fraction()),
    ]];
    print!("{}", render_table(&["DLV queries", "No error", "No such name", "leak %"], &rows));
    println!("(paper: \u{2248}98.8% of DLV queries provide no validation utility)");
}

fn print_fig11(n: usize) {
    println!("\n== Fig. 11: remedies compared (top-{n}) ==");
    let rows: Vec<Vec<String>> = fig11(n, 17)
        .iter()
        .map(|r| {
            vec![
                r.remedy.clone(),
                format!("{:.2}", r.seconds),
                format!("{:.2}", r.megabytes),
                r.queries.to_string(),
                r.leaks.to_string(),
            ]
        })
        .collect();
    print!("{}", render_table(&["remedy", "time (s)", "MB", "queries", "case-2 leaks"], &rows));
    println!("(paper: TXT highest overhead, Z-bit minimal; both eliminate leaks)");
}

fn print_fig12(scale: u64) {
    println!("\n== Fig. 12: DITL trace-driven overhead (sampling 1/{scale}) ==");
    let data = fig12(23, scale);
    let minutes = data.per_minute.len();
    let sample = [0usize, minutes / 4, minutes / 2, 3 * minutes / 4, minutes - 1];
    let rows: Vec<Vec<String>> = sample
        .iter()
        .map(|&m| {
            vec![
                m.to_string(),
                data.per_minute[m].to_string(),
                data.cumulative_queries[m].to_string(),
                megabytes(data.cumulative_baseline_bytes[m]),
                megabytes(data.cumulative_overhead_bytes[m]),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["minute", "queries/min", "cum queries", "cum base MB", "cum ovh MB"], &rows)
    );
    println!(
        "total overhead: {} MB over 7h = {:.3} Mbps (paper: \u{2248}1.2 GB, 0.38 Mbps)",
        megabytes(*data.cumulative_overhead_bytes.last().unwrap()),
        data.overhead_mbps
    );
}

fn print_nsec3(n: usize) {
    println!("\n== \u{a7}7.3 NSEC vs NSEC3 registry (top-{n}) ==");
    let rows: Vec<Vec<String>> = nsec3_tradeoff(n, 29)
        .iter()
        .map(|r| {
            vec![
                r.denial.clone(),
                r.dlv_queries.to_string(),
                r.suppressed.to_string(),
                r.leaks.to_string(),
            ]
        })
        .collect();
    print!("{}", render_table(&["denial", "DLV queries", "suppressed", "case-2 leaks"], &rows));
    println!(
        "(paper \u{a7}7.3: without aggressive negative caching, every query \
         triggers a DLV query — NSEC3 trades enumeration resistance for leakage)"
    );
}

fn print_qmin(n: usize) {
    println!("\n== RFC 7816 extension: QNAME minimisation vs DLV leakage (top-{n}) ==");
    let rows: Vec<Vec<String>> = qmin_exposure(n, 37)
        .iter()
        .map(|r| {
            vec![
                if r.minimized { "on" } else { "off" }.to_string(),
                r.root_full_names.to_string(),
                r.tld_full_names.to_string(),
                r.dlv_leaks.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["qmin", "names at root", "sub-SLD names at TLDs", "DLV case-2 leaks"],
            &rows
        )
    );
    println!("(minimisation shields on-path servers; DLV leaks are untouched — the look-aside query *is* the name)");
}

fn print_vantage(n: usize) {
    println!("\n== \u{a7}7.1 vantage generality: same findings from every vantage (top-{n}) ==");
    let rows: Vec<Vec<String>> = vantage_sweep(n, 43)
        .iter()
        .map(|r| {
            vec![
                r.vantage.clone(),
                r.leaks.to_string(),
                r.distinct_leaked.to_string(),
                format!("{:.2}", r.seconds),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["vantage", "case-2 leaks", "distinct leaked", "sim time (s)"], &rows)
    );
    println!("(paper \u{a7}7.1: \"results among different platforms remain the same\")");
}

fn print_deployment(n: usize) {
    println!("\n== \u{a7}7.1 deployment sweep: leak share vs DLV deposit density (top-{n}) ==");
    let rows: Vec<Vec<String>> = deployment_sweep(n, &[0, 100, 300, 600, 1000], 39)
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}%", f64::from(r.deposited_given_island_milli) / 10.0),
                r.case1.to_string(),
                r.case2.to_string(),
                pct(r.leak_fraction),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["islands depositing", "No error", "No such name", "leak %"], &rows)
    );
    println!(
        "(paper \u{a7}7.1: findings become less significant as more domains populate the registry)"
    );
}

fn print_tlds(n: usize) {
    println!("\n== per-TLD leakage breakdown (top-{n}) ==");
    let rows: Vec<Vec<String>> = tld_breakdown(n, 49)
        .iter()
        .map(|r| {
            vec![
                r.tld.to_string(),
                if r.tld_signed { "signed" } else { "unsigned" }.to_string(),
                r.domains.to_string(),
                r.leaked.to_string(),
                pct(r.fraction()),
                r.secure_children_leaked.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["TLD", "zone", "domains", "leaked", "leak %", "secure leaked"], &rows)
    );
    println!("(secure children — signed with DS — never leak; unsigned TLDs cannot have any)");
}

fn print_trace(params: (usize, usize)) {
    let (draws, support) = params;
    println!(
        "\n== trace replay: {draws} Zipf stub queries over top-{support} (Fig. 12 cross-check) =="
    );
    let rows: Vec<Vec<String>> = trace_replay(draws, support, 47)
        .iter()
        .map(|r| {
            vec![
                r.remedy.clone(),
                r.stub_queries.to_string(),
                r.distinct_domains.to_string(),
                r.upstream_queries.to_string(),
                format!("{:.2}", r.upstream_per_query),
                r.txt_probes.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["remedy", "stub q", "distinct", "upstream q", "upstream/q", "TXT probes"],
            &rows
        )
    );
    println!("(TXT probes track distinct zones, not query volume — the Fig. 12 cache assumption)");
}

fn print_survey() {
    println!("\n== \u{a7}5.2 operator survey (DNS-OARC 2015) ==");
    let s = workload::survey();
    let rows = vec![
        vec![
            "package-installer defaults".to_string(),
            s.package_defaults.to_string(),
            format!("{:.1}%", s.pct(s.package_defaults)),
        ],
        vec![
            "manual-install defaults".to_string(),
            s.manual_defaults.to_string(),
            format!("{:.1}%", s.pct(s.manual_defaults)),
        ],
        vec![
            "own configuration".to_string(),
            s.own_config.to_string(),
            format!("{:.1}%", s.pct(s.own_config)),
        ],
        vec!["use ISC DLV".to_string(), s.isc_dlv.to_string(), format!("{:.1}%", s.pct(s.isc_dlv))],
    ];
    print!("{}", render_table(&["answer", "count", "share"], &rows));
}

fn print_dictionary() {
    println!("\n== \u{a7}6.2.4 dictionary attack on hashed DLV ==");
    let pop = workload::DomainPopulation::new(workload::PopulationParams {
        size: 10_000,
        ..workload::PopulationParams::default()
    });
    let full: Vec<_> = (1..=10_000).map(|r| pop.domain(r)).collect();
    let dnssec_only: Vec<_> =
        (1..=10_000).filter(|&r| pop.attributes(r).signed).map(|r| pop.domain(r)).collect();
    let outcome_full = attacks::dictionary_attack(500, 35, full);
    let outcome_small = attacks::dictionary_attack(500, 35, dnssec_only);
    let rows = vec![
        vec![
            "full population".to_string(),
            outcome_full.dictionary_size.to_string(),
            outcome_full.observed.to_string(),
            outcome_full.recovered.to_string(),
            pct(outcome_full.recovery_rate()),
        ],
        vec![
            "DNSSEC-only".to_string(),
            outcome_small.dictionary_size.to_string(),
            outcome_small.observed.to_string(),
            outcome_small.recovered.to_string(),
            pct(outcome_small.recovery_rate()),
        ],
    ];
    print!("{}", render_table(&["dictionary", "size", "observed", "recovered", "rate"], &rows));
    println!(
        "(paper: full-space dictionaries are impractical at 350M+ names; a DNSSEC-only \
         dictionary shrinks the search but misses non-DNSSEC leaks)"
    );
}

fn print_chaos(n: usize) {
    println!("\n== \u{a7}7.3.2 chaos sweep: DLV-registry outage vs leakage amplification ({n} queries/cell) ==");
    let rows: Vec<Vec<String>> = chaos_outage(&ChaosConfig::quick(n))
        .iter()
        .map(|p| {
            vec![
                p.profile.label().to_string(),
                p.outage.label(),
                p.dlv_packets.to_string(),
                format!("{:.2}", p.dlv_per_query),
                pct(p.success_rate),
                format!("{:.1}", p.p50_ms),
                format!("{:.1}", p.p95_ms),
                p.retransmissions.to_string(),
                p.timeouts.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "profile",
                "outage",
                "DLV pkts",
                "DLV/query",
                "answered",
                "p50 ms",
                "p95 ms",
                "rexmit",
                "timeouts",
            ],
            &rows
        )
    );
    println!(
        "(retries multiply on-wire exposure as the registry degrades; the RFC 2308 \
         SERVFAIL cache collapses it by holding the dead zone down)"
    );
}

fn print_byzantine(n: usize) {
    println!(
        "\n== Byzantine sweep: data-plane adversaries \u{d7} validator hardening ({n} queries/cell) =="
    );
    let rows: Vec<Vec<String>> = byzantine_sweep(&ByzantineConfig::quick(n))
        .iter()
        .map(|p| {
            vec![
                p.profile.label().to_string(),
                p.adversary.label(),
                p.dlv_packets.to_string(),
                format!("{:.2}", p.dlv_per_query),
                pct(p.availability),
                p.dlv_secure.to_string(),
                p.stale_serves.to_string(),
                p.bad_cache_hits.to_string(),
                format!("{}/{}", p.spoofs_accepted, p.spoofs_discarded),
                p.malformed_retries.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "hardening",
                "adversary",
                "DLV pkts",
                "DLV/query",
                "avail",
                "DLV-secure",
                "stale",
                "BAD hits",
                "spoof a/d",
                "malformed",
            ],
            &rows
        )
    );
    println!(
        "(wrong answers leak more than lost ones: corruption and truncation retrigger \
         transmissions, while hardening preserves availability through every decommission stage)"
    );
}

fn print_lifecycle(n: usize) {
    println!("\n== key-lifecycle sweep: rollovers, expiry storms, RFC 5011 ({n} queries/event) ==");
    let rows: Vec<Vec<String>> = lifecycle_sweep(&LifecycleConfig::quick(n))
        .iter()
        .flat_map(|p| {
            p.events.iter().map(|e| {
                vec![
                    p.scenario.label().to_string(),
                    e.at_secs.to_string(),
                    e.secure.to_string(),
                    e.insecure.to_string(),
                    e.bogus.to_string(),
                    e.indeterminate.to_string(),
                    e.errors.to_string(),
                    e.expired_rrsig_bogus.to_string(),
                    e.missing_anchor.to_string(),
                    e.dlv_queries.to_string(),
                    e.case2_leaks.to_string(),
                ]
            })
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "scenario",
                "t (s)",
                "secure",
                "insec",
                "bogus",
                "indet",
                "err",
                "expired",
                "no-anchor",
                "DLV q",
                "case-2",
            ],
            &rows
        )
    );
    println!(
        "(a missed KSK rollover strands the resolver anchorless: validation collapses to \
         the look-aside walk and every fresh name leaks to the registry until an anchor \
         is re-installed out of band)"
    );
}

fn print_attacks() {
    println!("\n== \u{a7}6.2.3 signaling attacks ==");
    let z = attacks::zbit_flip_attack(200, 31);
    let t = attacks::txt_poison_attack(200, 33);
    let rows = vec![
        vec![
            "Z-bit flip".to_string(),
            z.leaks_with_remedy.to_string(),
            z.leaks_under_attack.to_string(),
        ],
        vec![
            "TXT poison".to_string(),
            t.leaks_with_remedy.to_string(),
            t.leaks_under_attack.to_string(),
        ],
    ];
    print!("{}", render_table(&["attack", "leaks (remedy)", "leaks (attacked)"], &rows));
}

fn farm_rows(reports: &[TopologyReport]) -> Vec<Vec<String>> {
    reports
        .iter()
        .map(|r| {
            vec![
                r.topology.label().to_string(),
                r.resolvers.to_string(),
                r.active_clients.to_string(),
                r.stub_queries.to_string(),
                r.upstream_misses.to_string(),
                r.dlv_queries.to_string(),
                r.case1.to_string(),
                r.case2.to_string(),
                r.linkable_case2.to_string(),
                r.leaked_clients.to_string(),
                r.max_client_case2.to_string(),
                format!("{:.4}", r.leaks_per_client()),
                pct(r.leaked_share()),
                r.content_exposed.to_string(),
            ]
        })
        .collect()
}

const FARM_HEADERS: [&str; 14] = [
    "topology",
    "resolvers",
    "clients",
    "stub q",
    "misses",
    "DLV q",
    "case-1",
    "case-2",
    "linkable",
    "leaked cl",
    "max/cl",
    "leak/cl",
    "leaked %",
    "content-exp",
];

fn print_farm(ditl_scale: u64) {
    let exec = lookaside::executor();
    let farm = Farm::new(FarmConfig::paper_scale());
    let clients = farm.config().plane.clients;
    let resolvers = farm.config().resolvers;

    println!(
        "\n== resolver farm: {clients} stub clients, {resolvers} resolvers, topology sweep =="
    );
    print!("{}", render_table(&FARM_HEADERS, &farm_rows(&farm.sweep(&exec))));
    println!(
        "(aggregation is the accidental remedy: a shared cache dedupes case-2 names across the \
         whole client base, an ODoH split leaves the registry's view intact but unlinkable, and \
         Resolver-Less DNS trades the registry leak for full content-server exposure)"
    );

    println!("\n== farm scaling: per-resolver caches, per-client leak rate vs farm size ==");
    let curve = farm.scaling(&[1, 2, 4, 8, 16, 32], &exec);
    print!("{}", render_table(&FARM_HEADERS, &farm_rows(&curve)));
    println!(
        "(fragmenting the client base across more caches multiplies what the registry sees: \
         every cache re-leaks the same names once per span TTL)"
    );

    println!("\n== DITL-scale trace through the farm (1/{ditl_scale} sample) ==");
    print!("{}", render_table(&FARM_HEADERS, &farm_rows(&farm.ditl(ditl_scale, &exec))));
    println!(
        "(the Fig. 12 day-in-the-life volume replayed against the farm instead of one resolver: \
         per-client attribution survives any partition of the trace)"
    );
}
