//! `labrun` — run an experiment described by a `.lab` config file (see
//! [`lookaside_bench::labconfig`] for the format).
//!
//! ```text
//! labrun experiment.lab      # read from a file
//! labrun -                   # read from stdin
//! ```
//!
//! Prints the run outcome: validation statuses, DLV leakage, and traffic
//! totals.

use std::io::Read;
use std::process::ExitCode;

use lookaside::experiments::run;
use lookaside::report::render_table;
use lookaside_bench::labconfig::parse_lab_config;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: labrun <experiment.lab | ->");
        return ExitCode::from(2);
    };
    let text = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("labrun: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("labrun: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let config = match parse_lab_config(&text) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("labrun: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "running: {:?} queries over a {}-domain population, remedy {} …",
        config.queries,
        config.population.size,
        config.remedy.label()
    );
    let outcome = run(&config);

    println!("\n== validation statuses ==");
    let s = &outcome.statuses;
    print!(
        "{}",
        render_table(
            &["secure", "via DLV", "insecure", "bogus", "indeterminate", "errors"],
            &[vec![
                s.secure.to_string(),
                s.secure_via_dlv.to_string(),
                s.insecure.to_string(),
                s.bogus.to_string(),
                s.indeterminate.to_string(),
                s.errors.to_string(),
            ]]
        )
    );

    println!("\n== what the DLV registry observed ==");
    let l = &outcome.leakage;
    print!(
        "{}",
        render_table(
            &["DLV queries", "case 1 (served)", "case 2 (leaked)", "leak %", "suppressed"],
            &[vec![
                l.dlv_queries.to_string(),
                l.case1.to_string(),
                l.case2.to_string(),
                format!("{:.1}%", l.leak_fraction() * 100.0),
                outcome.counters.dlv_suppressed_by_nsec.to_string(),
            ]]
        )
    );

    println!("\n== traffic ==");
    print!(
        "{}",
        render_table(
            &["upstream queries", "bytes", "sim time (s)"],
            &[vec![
                outcome.stats.total_queries().to_string(),
                outcome.stats.total_bytes().to_string(),
                format!("{:.2}", outcome.stats.total_seconds()),
            ]]
        )
    );
    ExitCode::SUCCESS
}
