//! Deterministic sharded parallel experiment engine.
//!
//! Every experiment in the reproduction is embarrassingly parallel by the
//! paper's own methodology: independent measurement boxes run their slice
//! of the workload, pcaps are merged offline. This crate supplies the
//! machinery to do exactly that on a thread pool **without giving up
//! bit-for-bit determinism**:
//!
//! * [`ShardPlan`] / [`Shard`] — pure-function decomposition of a
//!   workload (sweep points, grid cells, rank ranges, trace windows),
//!   each shard deriving its private RNG seed as
//!   [`splitmix64`]`(root_seed, shard_id)`,
//! * [`BoundedQueue`] — the bounded work queue workers drain,
//! * [`Executor`] — a scoped `std::thread` pool with a `--jobs N` knob
//!   (default [`std::thread::available_parallelism`], overridable via the
//!   `LOOKASIDE_JOBS` environment variable) and per-shard panic
//!   isolation: a panicking shard becomes a [`ShardError`] result instead
//!   of poisoning the run.
//!
//! The engine is workload-agnostic on purpose: it knows nothing about
//! DNS, captures, or simulated internets. Higher layers (the `lookaside`
//! core crate) hand it closures whose *workers own private simulated
//! Internet replicas*, then reduce the per-shard outputs in shard-id
//! order — which is what makes `jobs=1` and `jobs=N` byte-identical.
//!
//! # Example
//!
//! ```
//! use lookaside_engine::{expect_all, Executor, ShardPlan};
//!
//! let shards = ShardPlan::new(42).split_range(1..101, 4);
//! let sums: Vec<usize> = expect_all(
//!     Executor::new(4).run(&shards, |shard| shard.input.clone().sum::<usize>()),
//! );
//! assert_eq!(sums.iter().sum::<usize>(), (1..101).sum::<usize>());
//! // Identical reduction regardless of worker count:
//! let serial: Vec<usize> = expect_all(
//!     Executor::serial().run(&shards, |shard| shard.input.clone().sum::<usize>()),
//! );
//! assert_eq!(sums, serial);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
pub mod diag;
mod executor;
mod fold;
mod plan;
mod queue;
mod seed;
mod supervisor;

pub use checkpoint::{
    crc32, run_fingerprint, Checkpoint, JournalCodec, JournalError, JOURNAL_MAGIC, JOURNAL_VERSION,
};
pub use executor::{
    batch_requested, expect_all, stream_requested, Executor, ShardError, BATCH_ENV, JOBS_ENV,
    STREAM_ENV,
};
pub use plan::{Shard, ShardPlan};
pub use queue::BoundedQueue;
pub use seed::splitmix64;
pub use supervisor::{
    allow_partial_requested, checkpoint_path, Coverage, EngineFault, EngineFaultPlan, RetryPolicy,
    ShardFailure, Supervisor, SweepOutcome, Watchdog, ALLOW_PARTIAL_ENV, CHECKPOINT_ENV,
    FAULTS_ENV, RETRIES_ENV, WATCHDOG_ENV,
};
