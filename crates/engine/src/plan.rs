//! Shard plans: deterministic decomposition of a workload.
//!
//! A [`ShardPlan`] turns one experiment's workload — sweep points, chaos
//! grid cells, domain rank ranges, DITL trace windows — into numbered
//! [`Shard`]s. The decomposition is a pure function of the inputs: shard
//! `k` always receives the same slice of work and the same derived seed,
//! so the executor may run shards on any number of threads in any order
//! and reduction by shard id reproduces the single-threaded result
//! bit for bit.

use std::ops::Range;

use crate::seed::splitmix64;

/// One unit of schedulable work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard<I> {
    /// Position in the plan (0-based); also the reduction order.
    pub id: usize,
    /// The shard's private RNG seed, `splitmix64(root_seed, id)`.
    pub seed: u64,
    /// The slice of workload this shard owns.
    pub input: I,
}

/// Factory for deterministic shard decompositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    root_seed: u64,
}

impl ShardPlan {
    /// A plan deriving every shard seed from `root_seed`.
    pub fn new(root_seed: u64) -> Self {
        ShardPlan { root_seed }
    }

    /// The root seed shard seeds derive from.
    pub fn root_seed(self) -> u64 {
        self.root_seed
    }

    /// One shard per item, in iteration order — the natural plan for
    /// sweeps whose points are independent cells (dataset sizes, chaos
    /// grid cells, vantage points, trace windows).
    pub fn over<I>(self, items: impl IntoIterator<Item = I>) -> Vec<Shard<I>> {
        items
            .into_iter()
            .enumerate()
            .map(|(id, input)| Shard { id, seed: splitmix64(self.root_seed, id as u64), input })
            .collect()
    }

    /// Splits a contiguous range into at most `shards` non-empty,
    /// near-equal contiguous sub-ranges (earlier shards take the
    /// remainder). Concatenating the sub-ranges in shard order always
    /// reproduces `range` exactly.
    pub fn split_range(self, range: Range<usize>, shards: usize) -> Vec<Shard<Range<usize>>> {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return Vec::new();
        }
        let shards = shards.clamp(1, len);
        let base = len / shards;
        let extra = len % shards;
        let mut out = Vec::with_capacity(shards);
        let mut lo = range.start;
        for id in 0..shards {
            let take = base + usize::from(id < extra);
            let hi = lo + take;
            out.push(Shard { id, seed: splitmix64(self.root_seed, id as u64), input: lo..hi });
            lo = hi;
        }
        debug_assert_eq!(lo, range.end);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn over_numbers_and_seeds_in_order() {
        let shards = ShardPlan::new(9).over(["a", "b", "c"]);
        assert_eq!(shards.len(), 3);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.id, i);
            assert_eq!(s.seed, splitmix64(9, i as u64));
        }
        assert_eq!(shards[2].input, "c");
    }

    #[test]
    fn split_range_concatenates_back() {
        for (lo, hi, k) in [(1usize, 101, 4), (0, 7, 3), (5, 6, 8), (10, 10, 2), (1, 9, 1)] {
            let shards = ShardPlan::new(1).split_range(lo..hi, k);
            let mut walked = lo;
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.id, i);
                assert_eq!(s.input.start, walked, "contiguous");
                assert!(!s.input.is_empty(), "no empty shards");
                walked = s.input.end;
            }
            assert_eq!(walked, if lo == hi { lo } else { hi });
            assert!(shards.len() <= k.max(1));
        }
    }

    #[test]
    fn split_range_balances_sizes() {
        let shards = ShardPlan::new(0).split_range(0..10, 4);
        let sizes: Vec<usize> = shards.iter().map(|s| s.input.len()).collect();
        assert_eq!(sizes, [3, 3, 2, 2]);
    }

    #[test]
    fn plans_are_deterministic() {
        let a = ShardPlan::new(77).split_range(1..1000, 8);
        let b = ShardPlan::new(77).split_range(1..1000, 8);
        assert_eq!(a, b);
    }
}
