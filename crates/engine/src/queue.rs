//! A bounded multi-producer/multi-consumer work queue.
//!
//! The executor feeds shards through this queue so that a plan with
//! thousands of shards never materialises thousands of in-flight tasks:
//! the producer blocks once `capacity` items are waiting, and workers
//! drain in FIFO order. Closing the queue wakes everyone; a closed,
//! drained queue yields `None` to consumers.
//!
//! Ordering note: the queue preserves *submission* order, but the engine
//! never relies on it for determinism — results are keyed by shard id, so
//! any interleaving of workers reduces to the same output.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking FIFO queue with a hard capacity bound.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Locks the queue state, recovering from poisoning: shard panics are
    /// caught inside `run_one`, so a poisoned mutex can only mean a panic
    /// in the queue itself — and `State` is plain data that is valid at
    /// every await-free point, so continuing with the inner value is
    /// sound and keeps the engine's no-panic contract.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item`, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: producers stop, consumers drain what remains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        assert!(q.push(1));
        assert!(q.push(2));
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_after_close_is_rejected() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        q.close();
        assert!(!q.push(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn producer_blocks_at_capacity_until_drained() {
        let q = Arc::new(BoundedQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..100u32 {
                    assert!(q.push(i));
                }
                q.close();
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(i) = q.pop() {
                    seen.push(i);
                }
                seen
            })
        };
        producer.join().expect("producer");
        let seen = consumer.join().expect("consumer");
        assert_eq!(seen, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn capacity_floor_is_one() {
        let q: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
    }
}
