//! The sanctioned stderr diagnostics sink.
//!
//! The workspace purity wall (`lookaside-lint`, DESIGN.md §15) confines
//! `std::{fs,io,net}` effects — including the `eprint!` family — to
//! `engine::checkpoint`, this module, and the bench/lint/daemon crates,
//! so the sim crates stay transitively effect-free ahead of the
//! daemon-ize split. Anything in the orchestration layer that needs to
//! talk to a human (degraded-coverage tables, partial-result banners)
//! routes through here instead of calling `eprintln!` directly: one
//! module to redirect when diagnostics move onto the daemon's control
//! socket, and one place the analyzer has to trust.
//!
//! stderr only — stdout is reserved for byte-diffable experiment tables
//! and never written from here.

/// Writes one diagnostic line to stderr.
///
/// Deliberately line-oriented rather than `fmt::Arguments`-generic: the
/// call sites this sink exists for (coverage tables, degradation
/// summaries) already build their text, and a `&str` boundary keeps the
/// future daemon IPC framing trivial.
pub fn note(msg: &str) {
    eprintln!("{msg}");
}

#[cfg(test)]
mod tests {
    // `note` writes to the process stderr; asserting on that stream from
    // inside the process would require capturing it (an I/O effect the
    // rest of the crate must not grow). The smoke test just proves the
    // call compiles and returns.
    #[test]
    fn note_is_callable() {
        super::note("engine::diag self-test line");
    }
}
