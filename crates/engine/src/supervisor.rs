//! The supervision layer: bounded retries, a straggler watchdog with
//! speculative re-dispatch, seeded fault injection, and graceful
//! degradation over [`Executor`] sweeps (DESIGN.md §14).
//!
//! [`Executor::run_fold_supervised`] wraps the streaming fold with a
//! supervising dispatcher:
//!
//! * failed shards are requeued under a bounded, seeded [`RetryPolicy`]
//!   with a per-shard attempt budget;
//! * an optional [`Watchdog`] re-dispatches shards that outlive their
//!   deadline — first completion wins, and because every task is a pure
//!   function of its shard, duplicates are byte-identical, so the
//!   tie-break (keyed by shard id, later arrivals dropped) cannot change
//!   results;
//! * shards that exhaust their budget degrade into explicit [`Coverage`]
//!   accounting instead of aborting the sweep — no silent caps;
//! * a seeded [`EngineFaultPlan`] injects worker panics and stalls so
//!   every path above is testable without real crashes.
//!
//! Determinism contract: the folded value and the failure set are pure
//! functions of (shards, task, retry budget, fault plan). The wall
//! clock steers only *scheduling* — whether the watchdog fires, which
//! duplicate finishes first — never what any shard computes nor the
//! order the fold observes results. The only scheduling-dependent field
//! is [`Coverage::speculated`], which is reported for observability and
//! deliberately kept out of result tables.

// lint:allow-file(panic::slice-index) -- every per-shard vector below is constructed with exactly shards.len() elements and indexed only by slot ids yielded by enumerate()/channel echoes of those ids; bounds are structural, and a miss would be an engine bug worth a loud panic

use std::collections::{BTreeMap, VecDeque};
use std::env;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use crate::checkpoint::{Checkpoint, JournalCodec, JournalError};
use crate::executor::{run_one, Executor, ShardError};
use crate::plan::Shard;
use crate::queue::BoundedQueue;
use crate::seed::splitmix64;

/// Environment variable bounding per-shard attempts (a positive integer;
/// the first attempt counts).
pub const RETRIES_ENV: &str = "LOOKASIDE_RETRIES";

/// Environment variable arming the straggler watchdog with a deadline in
/// milliseconds (`0` or unset leaves it disarmed).
pub const WATCHDOG_ENV: &str = "LOOKASIDE_WATCHDOG_MS";

/// Environment variable carrying a fault-injection spec, e.g.
/// `panic=40,stall=20,stall_ms=30,seed=7,cap=1` (rates are per-mille;
/// `cap` bounds how many attempts per shard are fault-eligible).
pub const FAULTS_ENV: &str = "LOOKASIDE_FAULTS";

/// Environment variable accepting degraded sweeps (`1`/`true`/`on`):
/// instead of aborting when shards exhaust their retry budget, callers
/// print the coverage table and keep the partial result — the
/// `repro --allow-partial` flag sets it.
pub const ALLOW_PARTIAL_ENV: &str = "LOOKASIDE_ALLOW_PARTIAL";

/// Environment variable naming the shard journal for checkpointed sweeps
/// — the `repro --checkpoint <path>` / `--resume <path>` flags set it.
pub const CHECKPOINT_ENV: &str = "LOOKASIDE_CHECKPOINT";

/// Whether degraded sweeps should be accepted ([`ALLOW_PARTIAL_ENV`]).
pub fn allow_partial_requested() -> bool {
    crate::executor::env_flag(ALLOW_PARTIAL_ENV)
}

/// The journal path for checkpointed sweeps, when [`CHECKPOINT_ENV`] is
/// set and non-empty.
pub fn checkpoint_path() -> Option<String> {
    // lint:allow(determinism::env-read) -- LOOKASIDE_CHECKPOINT names where completed shard bytes are journalled; resume folds those exact bytes back, so the path never reaches results
    env::var(CHECKPOINT_ENV).ok().map(|p| p.trim().to_string()).filter(|p| !p.is_empty())
}

/// Speculative dispatches draw fault/backoff randomness from attempt
/// numbers in a disjoint band so they can never perturb the budgeted
/// attempt sequence (which is what makes the failure set deterministic).
const SPECULATIVE_BASE: u32 = 1 << 20;

/// Bounded, seeded retry budget for failed shards.
///
/// The seed only spreads requeued shards across the backlog (front or
/// back, drawn per `(shard, attempt)`) so retry storms do not redispatch
/// in lockstep; it can never reach a shard's computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per shard, including the first (minimum 1).
    pub max_attempts: u32,
    /// Seed for the requeue-position draw.
    pub seed: u64,
}

impl RetryPolicy {
    /// One attempt per shard — failures are terminal immediately.
    pub const NONE: RetryPolicy = RetryPolicy { max_attempts: 1, seed: 0 };

    /// `max_attempts` total attempts per shard (floored at 1).
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1), seed: 0x5e7_21e5 }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(3)
    }
}

/// Deadline-based straggler detection with speculative re-dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// How long a dispatched shard may run before a duplicate is issued.
    pub deadline: Duration,
    /// Maximum speculative duplicates per shard.
    pub max_speculative: u32,
}

impl Watchdog {
    /// A watchdog issuing at most one duplicate per shard past `deadline`.
    pub fn new(deadline: Duration) -> Self {
        Watchdog { deadline, max_speculative: 1 }
    }
}

/// A fault injected into one `(shard, attempt)` execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFault {
    /// Run the task normally.
    None,
    /// Fail the attempt as if the worker panicked inside the task.
    Panic,
    /// Sleep before running the task, simulating a straggler.
    Stall(Duration),
}

/// Seeded worker panic/stall injection — the engine's chaos plane,
/// mirroring the resolver's link-fault plane from PR 1.
///
/// Faults are a pure function of `(seed, shard_id, attempt)`, so a
/// faulty run is exactly reproducible and the failure set in a coverage
/// table is byte-identical across `--jobs` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineFaultPlan {
    /// Root seed of the fault stream.
    pub seed: u64,
    /// Per-mille probability that an attempt dies as a worker panic.
    pub panic_per_mille: u16,
    /// Per-mille probability that an attempt stalls before running.
    pub stall_per_mille: u16,
    /// How long an injected stall sleeps.
    pub stall: Duration,
    /// Attempts at index `>= faulty_attempts` always run clean, so tests
    /// can guarantee a bounded retry budget wins.
    pub faulty_attempts: u32,
}

impl EngineFaultPlan {
    /// No injected faults — the production setting.
    pub const NONE: EngineFaultPlan = EngineFaultPlan {
        seed: 0,
        panic_per_mille: 0,
        stall_per_mille: 0,
        stall: Duration::from_millis(0),
        faulty_attempts: 0,
    };

    /// Whether the plan can ever inject anything.
    pub fn is_none(&self) -> bool {
        self.panic_per_mille == 0 && self.stall_per_mille == 0
    }

    /// Draws the fault for one `(shard_id, attempt)` execution.
    pub fn draw(&self, shard_id: usize, attempt: u32) -> EngineFault {
        if self.is_none() || attempt >= self.faulty_attempts {
            return EngineFault::None;
        }
        let roll =
            (splitmix64(splitmix64(self.seed, u64::from(attempt)), shard_id as u64) % 1000) as u16;
        if roll < self.panic_per_mille {
            EngineFault::Panic
        } else if roll < self.panic_per_mille.saturating_add(self.stall_per_mille) {
            EngineFault::Stall(self.stall)
        } else {
            EngineFault::None
        }
    }
}

/// Configuration of one supervised sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervisor {
    /// Per-shard retry budget.
    pub retry: RetryPolicy,
    /// Optional straggler watchdog (effective on parallel runs; a serial
    /// run has no second worker to speculate on).
    pub watchdog: Option<Watchdog>,
    /// Injected faults; [`EngineFaultPlan::NONE`] in production.
    pub faults: EngineFaultPlan,
}

impl Supervisor {
    /// Three attempts per shard, no watchdog, no injected faults.
    pub fn new() -> Self {
        Supervisor { retry: RetryPolicy::default(), watchdog: None, faults: EngineFaultPlan::NONE }
    }

    /// Builds the session supervisor from `LOOKASIDE_RETRIES`,
    /// `LOOKASIDE_WATCHDOG_MS`, and `LOOKASIDE_FAULTS`.
    ///
    /// All three knobs steer scheduling and failure budgets only: a
    /// completed shard's bytes are a pure function of its shard, so none
    /// of them can reach results — failures are always surfaced through
    /// the explicit coverage accounting.
    pub fn from_env() -> Self {
        let mut sup = Supervisor::new();
        // lint:allow(determinism::env-read) -- LOOKASIDE_RETRIES bounds the retry budget; completed shard bytes are untouched and failures surface in the explicit coverage table
        if let Some(n) = env::var(RETRIES_ENV).ok().and_then(|v| v.trim().parse::<u32>().ok()) {
            sup.retry = RetryPolicy::new(n);
        }
        // lint:allow(determinism::env-read) -- LOOKASIDE_WATCHDOG_MS arms speculative re-dispatch; first-completion-wins dedup keeps results byte-identical
        if let Some(ms) = env::var(WATCHDOG_ENV).ok().and_then(|v| v.trim().parse::<u64>().ok()) {
            if ms > 0 {
                sup.watchdog = Some(Watchdog::new(Duration::from_millis(ms)));
            }
        }
        // lint:allow(determinism::env-read) -- LOOKASIDE_FAULTS injects the seeded engine chaos plane for testing; the injected failure set is a pure function of the spec
        if let Ok(spec) = env::var(FAULTS_ENV) {
            sup.faults = parse_fault_spec(&spec);
        }
        sup
    }
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor::new()
    }
}

/// Parses a `panic=40,stall=20,stall_ms=30,seed=7,cap=1` spec; malformed
/// entries are ignored so a typo degrades to "no fault" rather than a
/// crash.
fn parse_fault_spec(spec: &str) -> EngineFaultPlan {
    let mut plan = EngineFaultPlan {
        seed: 0xfa_0175,
        panic_per_mille: 0,
        stall_per_mille: 0,
        stall: Duration::from_millis(25),
        faulty_attempts: u32::MAX,
    };
    for part in spec.split(',') {
        let Some((key, value)) = part.split_once('=') else { continue };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "panic" => {
                if let Ok(v) = value.parse::<u16>() {
                    plan.panic_per_mille = v.min(1000);
                }
            }
            "stall" => {
                if let Ok(v) = value.parse::<u16>() {
                    plan.stall_per_mille = v.min(1000);
                }
            }
            "stall_ms" => {
                if let Ok(v) = value.parse::<u64>() {
                    plan.stall = Duration::from_millis(v);
                }
            }
            "seed" => {
                if let Ok(v) = value.parse::<u64>() {
                    plan.seed = v;
                }
            }
            "cap" => {
                if let Ok(v) = value.parse::<u32>() {
                    plan.faulty_attempts = v;
                }
            }
            _ => {}
        }
    }
    plan
}

/// One shard that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Shard id within the plan.
    pub shard_id: usize,
    /// Attempts consumed (the full retry budget).
    pub attempts: u32,
    /// The last budgeted attempt's failure message.
    pub message: String,
}

/// Per-shard accounting of how a supervised sweep ended.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Shards in the plan.
    pub total: usize,
    /// Shards that produced a result, including resumed ones.
    pub completed: usize,
    /// Completed shards satisfied from a resumed checkpoint journal.
    pub resumed: usize,
    /// Shards that completed only after at least one failed attempt.
    pub retried: usize,
    /// Speculative duplicates issued by the watchdog. This is the one
    /// scheduling-dependent counter — reported for observability, never
    /// printed in result tables.
    pub speculated: usize,
    /// Shards that exhausted their budget, ascending by shard id.
    pub failed: Vec<ShardFailure>,
}

impl Coverage {
    /// Whether every shard completed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty() && self.completed == self.total
    }

    /// One-line deterministic summary, e.g.
    /// `coverage 17/20 shards (2 resumed, 1 retried, 3 failed)`.
    pub fn summary(&self) -> String {
        let mut s = format!("coverage {}/{} shards", self.completed, self.total);
        let mut notes = Vec::new();
        if self.resumed > 0 {
            notes.push(format!("{} resumed", self.resumed));
        }
        if self.retried > 0 {
            notes.push(format!("{} retried", self.retried));
        }
        if !self.failed.is_empty() {
            notes.push(format!("{} failed", self.failed.len()));
        }
        if !notes.is_empty() {
            s.push_str(&format!(" ({})", notes.join(", ")));
        }
        s
    }

    /// Multi-line deterministic coverage table: the summary line plus one
    /// line per failed shard. Everything in it is a pure function of the
    /// sweep configuration and fault plan.
    pub fn table(&self) -> String {
        let mut out = self.summary();
        for f in &self.failed {
            out.push_str(&format!(
                "\n  shard {}: failed after {} attempts: {}",
                f.shard_id, f.attempts, f.message
            ));
        }
        out
    }
}

/// A supervised sweep's folded value plus its coverage accounting.
///
/// Callers must consult `coverage` before treating `value` as complete:
/// a degraded sweep folds only the shards that completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome<A> {
    /// The fold over every completed shard, ascending shard id.
    pub value: A,
    /// What completed, what was resumed, what was retried, what failed.
    pub coverage: Coverage,
}

impl Executor {
    /// Runs every shard under supervision and folds completed results in
    /// ascending shard-id order, passing the shard id alongside each
    /// value so degraded folds can account for holes.
    ///
    /// Never panics on shard failure: shards that exhaust their retry
    /// budget are skipped by the fold and listed in the coverage.
    pub fn run_fold_supervised<I, T, A, F, G>(
        &self,
        shards: &[Shard<I>],
        task: F,
        init: A,
        fold: G,
        sup: &Supervisor,
    ) -> SweepOutcome<A>
    where
        I: Sync,
        T: Send,
        F: Fn(&Shard<I>) -> T + Sync,
        G: FnMut(A, usize, T) -> A,
    {
        let (outcome, _journal_err) =
            supervise(self, shards, task, init, fold, sup, BTreeMap::new(), None);
        outcome
    }

    /// [`run_fold_supervised`](Executor::run_fold_supervised) with a
    /// checkpoint journal: shard results already in the journal are
    /// folded without re-running, and shards completed by this run are
    /// appended to it as the fold front advances.
    ///
    /// # Errors
    ///
    /// Returns the first [`JournalError`] hit while appending; the
    /// journal's durable prefix remains valid for a later resume.
    pub fn run_fold_checkpointed<I, T, A, F, G>(
        &self,
        shards: &[Shard<I>],
        task: F,
        init: A,
        fold: G,
        sup: &Supervisor,
        ckpt: &mut Checkpoint<T>,
    ) -> Result<SweepOutcome<A>, JournalError>
    where
        I: Sync,
        T: Send + JournalCodec,
        F: Fn(&Shard<I>) -> T + Sync,
        G: FnMut(A, usize, T) -> A,
    {
        let resumed = ckpt.take_resumed();
        let (outcome, journal_err) = {
            let mut sink = |shard_id: usize, value: &T| ckpt.record(shard_id, value);
            supervise(self, shards, task, init, fold, sup, resumed, Some(&mut sink))
        };
        if let Some(err) = journal_err {
            return Err(err);
        }
        ckpt.sync()?;
        Ok(outcome)
    }

    /// Runs every shard under supervision, collecting one `Option<T>`
    /// per shard in submission order — `None` marks a shard that
    /// exhausted its retry budget (listed in the coverage).
    pub fn run_supervised<I, T, F>(
        &self,
        shards: &[Shard<I>],
        task: F,
        sup: &Supervisor,
    ) -> SweepOutcome<Vec<Option<T>>>
    where
        I: Sync,
        T: Send,
        F: Fn(&Shard<I>) -> T + Sync,
    {
        let init: Vec<Option<T>> = (0..shards.len()).map(|_| None).collect();
        self.run_fold_supervised(
            shards,
            task,
            init,
            |mut acc, slot, value| {
                if let Some(cell) = acc.get_mut(slot) {
                    *cell = Some(value);
                }
                acc
            },
            sup,
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Open,
    Done,
    Failed,
}

type SinkRef<'a, T> = Option<&'a mut (dyn FnMut(usize, &T) -> Result<(), JournalError> + 'a)>;

fn run_injected<I, T, F>(
    task: &F,
    shard: &Shard<I>,
    attempt: u32,
    faults: &EngineFaultPlan,
) -> Result<T, ShardError>
where
    F: Fn(&Shard<I>) -> T,
{
    match faults.draw(shard.id, attempt) {
        EngineFault::Panic => Err(ShardError {
            shard_id: shard.id,
            message: format!("injected worker panic (attempt {attempt})"),
        }),
        EngineFault::Stall(d) => {
            thread::sleep(d);
            run_one(task, shard)
        }
        EngineFault::None => run_one(task, shard),
    }
}

/// Advances the fold front over resolved slots: `Done` slots are
/// journaled (unless resumed) and folded, `Failed` slots are skipped.
#[allow(clippy::too_many_arguments)]
fn advance_fold<T, A, G>(
    next: &mut usize,
    states: &[SlotState],
    pending: &mut BTreeMap<usize, T>,
    acc: &mut Option<A>,
    fold: &mut G,
    resumed_flags: &[bool],
    sink: &mut SinkRef<'_, T>,
    journal_err: &mut Option<JournalError>,
) where
    G: FnMut(A, usize, T) -> A,
{
    while let Some(state) = states.get(*next) {
        match state {
            SlotState::Open => break,
            SlotState::Failed => *next += 1,
            SlotState::Done => {
                let Some(value) = pending.remove(next) else { break };
                let was_resumed = resumed_flags.get(*next).copied().unwrap_or(false);
                if !was_resumed && journal_err.is_none() {
                    if let Some(s) = sink.as_mut() {
                        if let Err(e) = s(*next, &value) {
                            *journal_err = Some(e);
                        }
                    }
                }
                if let Some(current) = acc.take() {
                    *acc = Some(fold(current, *next, value));
                }
                *next += 1;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn supervise<I, T, A, F, G>(
    exec: &Executor,
    shards: &[Shard<I>],
    task: F,
    init: A,
    mut fold: G,
    sup: &Supervisor,
    resumed: BTreeMap<usize, T>,
    mut sink: SinkRef<'_, T>,
) -> (SweepOutcome<A>, Option<JournalError>)
where
    I: Sync,
    T: Send,
    F: Fn(&Shard<I>) -> T + Sync,
    G: FnMut(A, usize, T) -> A,
{
    let n = shards.len();
    let mut cov = Coverage { total: n, ..Coverage::default() };
    let mut acc: Option<A> = Some(init);
    let mut journal_err: Option<JournalError> = None;

    let mut states = vec![SlotState::Open; n];
    let mut resumed_flags = vec![false; n];
    let mut pending: BTreeMap<usize, T> = BTreeMap::new();
    for (id, value) in resumed {
        // Out-of-range ids can only come from a journal of a larger run;
        // the run fingerprint should prevent that, but never trust them.
        if id < n {
            states[id] = SlotState::Done;
            resumed_flags[id] = true;
            cov.resumed += 1;
            cov.completed += 1;
            pending.insert(id, value);
        }
    }
    let mut next_fold = 0usize;
    advance_fold(
        &mut next_fold,
        &states,
        &mut pending,
        &mut acc,
        &mut fold,
        &resumed_flags,
        &mut sink,
        &mut journal_err,
    );

    let workers = exec.jobs().min(n);
    if workers <= 1 {
        // Serial supervision: retries and fault injection inline; the
        // watchdog needs a second worker to speculate on, so it is
        // disarmed here (deadlines would change nothing anyway — the
        // stalled attempt is the only possible source of the result).
        for (slot, shard) in shards.iter().enumerate() {
            if states[slot] != SlotState::Open {
                continue;
            }
            let mut attempt = 0u32;
            loop {
                let result = run_injected(&task, shard, attempt, &sup.faults);
                attempt += 1;
                match result {
                    Ok(value) => {
                        states[slot] = SlotState::Done;
                        cov.completed += 1;
                        if attempt > 1 {
                            cov.retried += 1;
                        }
                        pending.insert(slot, value);
                        break;
                    }
                    Err(err) => {
                        if attempt >= sup.retry.max_attempts {
                            states[slot] = SlotState::Failed;
                            cov.failed.push(ShardFailure {
                                shard_id: shard.id,
                                attempts: attempt,
                                message: err.message,
                            });
                            break;
                        }
                    }
                }
            }
            advance_fold(
                &mut next_fold,
                &states,
                &mut pending,
                &mut acc,
                &mut fold,
                &resumed_flags,
                &mut sink,
                &mut journal_err,
            );
        }
    } else {
        supervise_parallel(
            exec,
            shards,
            &task,
            sup,
            &mut states,
            &resumed_flags,
            &mut pending,
            &mut next_fold,
            &mut acc,
            &mut fold,
            &mut cov,
            &mut sink,
            &mut journal_err,
        );
    }

    cov.failed.sort_by_key(|f| f.shard_id);
    let outcome = SweepOutcome {
        // lint:allow(panic::expect) -- the accumulator is only taken while folding and always put back; a hole here is an engine bug worth failing loudly
        value: acc.expect("accumulator survives the fold"),
        coverage: cov,
    };
    (outcome, journal_err)
}

#[allow(clippy::too_many_arguments)]
fn supervise_parallel<I, T, A, F, G>(
    exec: &Executor,
    shards: &[Shard<I>],
    task: &F,
    sup: &Supervisor,
    states: &mut [SlotState],
    resumed_flags: &[bool],
    pending: &mut BTreeMap<usize, T>,
    next_fold: &mut usize,
    acc: &mut Option<A>,
    fold: &mut G,
    cov: &mut Coverage,
    sink: &mut SinkRef<'_, T>,
    journal_err: &mut Option<JournalError>,
) where
    I: Sync,
    T: Send,
    F: Fn(&Shard<I>) -> T + Sync,
    G: FnMut(A, usize, T) -> A,
{
    let n = shards.len();
    let workers = exec.jobs().min(n);
    let capacity = workers * 2;
    let queue: BoundedQueue<(usize, u32)> = BoundedQueue::new(capacity);
    let (tx, rx) = mpsc::channel::<(usize, u32, Result<T, ShardError>)>();

    thread::scope(|scope| {
        let queue = &queue;
        let faults = &sup.faults;
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some((slot, attempt)) = queue.pop() {
                    let Some(shard) = shards.get(slot) else { continue };
                    let result = run_injected(task, shard, attempt, faults);
                    if tx.send((slot, attempt, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut backlog: VecDeque<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == SlotState::Open)
            .map(|(i, _)| i)
            .collect();
        let mut unresolved = backlog.len();
        let mut outstanding = 0usize;
        let mut budget_dispatched = vec![0u32; n];
        let mut inflight = vec![0u32; n];
        let mut had_failure = vec![false; n];
        let mut spec_issued = vec![0u32; n];
        let mut last_error: Vec<Option<String>> = vec![None; n];
        let mut last_dispatch: Vec<Option<Instant>> = vec![None; n];

        loop {
            // Dispatch from the backlog while there is room in flight;
            // outstanding < capacity guarantees push never blocks.
            while outstanding < capacity {
                let Some(slot) = backlog.pop_front() else { break };
                if states[slot] != SlotState::Open {
                    continue;
                }
                let attempt = budget_dispatched[slot];
                budget_dispatched[slot] += 1;
                if !queue.push((slot, attempt)) {
                    break;
                }
                outstanding += 1;
                inflight[slot] += 1;
                // lint:allow(determinism::wall-clock) -- dispatch timestamps feed only the watchdog's speculation deadline; results and the failure set are pure functions of the shard plan
                last_dispatch[slot] = Some(Instant::now());
            }
            if unresolved == 0 {
                break;
            }

            let message = match sup.watchdog {
                Some(w) => match rx.recv_timeout(w.deadline) {
                    Ok(m) => Some(m),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                },
                None => match rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                },
            };

            let Some((slot, attempt, result)) = message else {
                // Watchdog tick: speculate on every overdue open shard.
                let Some(w) = sup.watchdog else { continue };
                for slot in 0..n {
                    if outstanding >= capacity {
                        break;
                    }
                    let overdue = states[slot] == SlotState::Open
                        && inflight[slot] > 0
                        && spec_issued[slot] < w.max_speculative
                        && last_dispatch[slot].is_some_and(|t| t.elapsed() >= w.deadline);
                    if !overdue {
                        continue;
                    }
                    let attempt = SPECULATIVE_BASE + spec_issued[slot];
                    spec_issued[slot] += 1;
                    cov.speculated += 1;
                    if !queue.push((slot, attempt)) {
                        break;
                    }
                    outstanding += 1;
                    inflight[slot] += 1;
                    // lint:allow(determinism::wall-clock) -- same scheduling-only timestamp as above, for the speculative copy
                    last_dispatch[slot] = Some(Instant::now());
                }
                continue;
            };

            outstanding -= 1;
            inflight[slot] -= 1;
            if states[slot] != SlotState::Open {
                // First completion already won; drop the duplicate.
                continue;
            }
            match result {
                Ok(value) => {
                    states[slot] = SlotState::Done;
                    unresolved -= 1;
                    cov.completed += 1;
                    if had_failure[slot] {
                        cov.retried += 1;
                    }
                    pending.insert(slot, value);
                    advance_fold(
                        next_fold,
                        states,
                        pending,
                        acc,
                        fold,
                        resumed_flags,
                        sink,
                        journal_err,
                    );
                }
                Err(err) => {
                    let budgeted = attempt < SPECULATIVE_BASE;
                    if budgeted {
                        had_failure[slot] = true;
                        last_error[slot] = Some(err.message);
                        if budget_dispatched[slot] < sup.retry.max_attempts {
                            // Seeded requeue position: spread retries so
                            // they do not redispatch in lockstep.
                            let draw = splitmix64(sup.retry.seed ^ u64::from(attempt), slot as u64);
                            if draw & 1 == 0 {
                                backlog.push_back(slot);
                            } else {
                                backlog.push_front(slot);
                            }
                            continue;
                        }
                    }
                    // Budget exhausted (or a speculative copy died): the
                    // shard fails once nothing else is in flight for it.
                    if budget_dispatched[slot] >= sup.retry.max_attempts && inflight[slot] == 0 {
                        states[slot] = SlotState::Failed;
                        unresolved -= 1;
                        cov.failed.push(ShardFailure {
                            shard_id: shards.get(slot).map_or(slot, |s| s.id),
                            attempts: budget_dispatched[slot],
                            message: last_error[slot]
                                .take()
                                .unwrap_or_else(|| "shard failed".to_string()),
                        });
                        advance_fold(
                            next_fold,
                            states,
                            pending,
                            acc,
                            fold,
                            resumed_flags,
                            sink,
                            journal_err,
                        );
                    }
                }
            }
        }
        queue.close();
        // Workers drain whatever is still queued (results for already-
        // resolved slots are dropped above) and exit; the scope joins.
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ShardPlan;

    fn clean_sum(shards: &[Shard<usize>]) -> u64 {
        shards.iter().fold(0u64, |acc, s| acc.wrapping_add(s.seed ^ s.input as u64))
    }

    fn sum_supervised(jobs: usize, shards: &[Shard<usize>], sup: &Supervisor) -> SweepOutcome<u64> {
        Executor::new(jobs).run_fold_supervised(
            shards,
            |s| s.seed ^ s.input as u64,
            0u64,
            |acc, _slot, v| acc.wrapping_add(v),
            sup,
        )
    }

    #[test]
    fn clean_supervised_run_matches_plain_fold_at_any_job_count() {
        let shards = ShardPlan::new(7).over(0..97usize);
        let want = clean_sum(&shards);
        for jobs in [1, 2, 8] {
            let out = sum_supervised(jobs, &shards, &Supervisor::new());
            assert_eq!(out.value, want, "jobs={jobs}");
            assert!(out.coverage.is_complete());
            assert_eq!(out.coverage.completed, 97);
            assert_eq!(out.coverage.retried, 0);
        }
    }

    #[test]
    fn injected_panics_are_retried_to_byte_identical_results() {
        let shards = ShardPlan::new(3).over(0..64usize);
        let want = clean_sum(&shards);
        // Every first attempt panics; the retry (attempt 1) runs clean.
        let sup = Supervisor {
            retry: RetryPolicy::new(2),
            watchdog: None,
            faults: EngineFaultPlan {
                seed: 5,
                panic_per_mille: 1000,
                stall_per_mille: 0,
                stall: Duration::from_millis(0),
                faulty_attempts: 1,
            },
        };
        for jobs in [1, 3, 8] {
            let out = sum_supervised(jobs, &shards, &sup);
            assert_eq!(out.value, want, "jobs={jobs}");
            assert!(out.coverage.is_complete(), "jobs={jobs}: {}", out.coverage.table());
            assert_eq!(out.coverage.retried, 64, "jobs={jobs}");
        }
    }

    #[test]
    fn exhausted_budgets_degrade_with_deterministic_coverage() {
        let shards = ShardPlan::new(1).over(0..40usize);
        // ~30% of (shard, attempt) draws panic forever: some shards burn
        // the whole budget, and exactly which ones is seed-determined.
        let sup = Supervisor {
            retry: RetryPolicy::new(2),
            watchdog: None,
            faults: EngineFaultPlan {
                seed: 42,
                panic_per_mille: 300,
                stall_per_mille: 0,
                stall: Duration::from_millis(0),
                faulty_attempts: u32::MAX,
            },
        };
        let serial = sum_supervised(1, &shards, &sup);
        assert!(!serial.coverage.is_complete(), "seed 42 must fail some shard");
        for f in &serial.coverage.failed {
            assert_eq!(f.attempts, 2);
            assert!(f.message.contains("injected worker panic"), "{}", f.message);
        }
        for jobs in [2, 4, 8] {
            let par = sum_supervised(jobs, &shards, &sup);
            assert_eq!(par.value, serial.value, "jobs={jobs}");
            assert_eq!(par.coverage.failed, serial.coverage.failed, "jobs={jobs}");
            assert_eq!(par.coverage.completed, serial.coverage.completed, "jobs={jobs}");
            assert_eq!(par.coverage.retried, serial.coverage.retried, "jobs={jobs}");
        }
        // The degraded fold must equal summing exactly the non-failed shards.
        let failed: std::collections::BTreeSet<usize> =
            serial.coverage.failed.iter().map(|f| f.shard_id).collect();
        let expect: u64 = shards
            .iter()
            .filter(|s| !failed.contains(&s.id))
            .fold(0u64, |acc, s| acc.wrapping_add(s.seed ^ s.input as u64));
        assert_eq!(serial.value, expect);
    }

    #[test]
    fn watchdog_speculation_beats_stalled_shards() {
        let shards = ShardPlan::new(9).over(0..8usize);
        let want = clean_sum(&shards);
        // Every first attempt stalls half a second; the watchdog fires
        // after 20ms and the speculative copy runs clean immediately.
        let sup = Supervisor {
            retry: RetryPolicy::new(2),
            watchdog: Some(Watchdog::new(Duration::from_millis(20))),
            faults: EngineFaultPlan {
                seed: 8,
                panic_per_mille: 0,
                stall_per_mille: 1000,
                stall: Duration::from_millis(500),
                faulty_attempts: 1,
            },
        };
        let out = sum_supervised(4, &shards, &sup);
        assert_eq!(out.value, want);
        assert!(out.coverage.is_complete(), "{}", out.coverage.table());
        assert!(out.coverage.speculated >= 1, "watchdog must have speculated");
        assert_eq!(out.coverage.retried, 0, "stalls are not failures");
    }

    #[test]
    fn coverage_table_is_explicit_about_failures() {
        let mut cov = Coverage { total: 4, completed: 3, ..Coverage::default() };
        cov.failed.push(ShardFailure { shard_id: 2, attempts: 3, message: "boom".to_string() });
        let table = cov.table();
        assert!(table.contains("coverage 3/4 shards"), "{table}");
        assert!(table.contains("shard 2: failed after 3 attempts: boom"), "{table}");
        assert!(!cov.is_complete());
    }

    #[test]
    fn fault_plan_draws_are_pure_and_capped() {
        let plan = EngineFaultPlan {
            seed: 17,
            panic_per_mille: 500,
            stall_per_mille: 100,
            stall: Duration::from_millis(5),
            faulty_attempts: 2,
        };
        for shard in 0..32usize {
            for attempt in 0..4u32 {
                assert_eq!(plan.draw(shard, attempt), plan.draw(shard, attempt));
            }
            assert_eq!(plan.draw(shard, 2), EngineFault::None, "cap must win");
        }
        assert!(EngineFaultPlan::NONE.is_none());
    }

    #[test]
    fn fault_spec_parses_and_ignores_garbage() {
        let plan = parse_fault_spec("panic=40,stall=20,stall_ms=30,seed=7,cap=1,wat=9,junk");
        assert_eq!(plan.panic_per_mille, 40);
        assert_eq!(plan.stall_per_mille, 20);
        assert_eq!(plan.stall, Duration::from_millis(30));
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faulty_attempts, 1);
        assert!(parse_fault_spec("").is_none());
    }

    #[test]
    fn run_supervised_marks_failed_shards_as_none() {
        let shards = ShardPlan::new(1).over(0..10usize);
        let sup = Supervisor {
            retry: RetryPolicy::NONE,
            watchdog: None,
            faults: EngineFaultPlan {
                seed: 42,
                panic_per_mille: 300,
                stall_per_mille: 0,
                stall: Duration::from_millis(0),
                faulty_attempts: u32::MAX,
            },
        };
        let out = Executor::new(4).run_supervised(&shards, |s| s.input * 2, &sup);
        assert_eq!(out.value.len(), 10);
        let failed: std::collections::BTreeSet<usize> =
            out.coverage.failed.iter().map(|f| f.shard_id).collect();
        assert!(!failed.is_empty(), "seed 42 must fail a shard at one attempt");
        for (i, cell) in out.value.iter().enumerate() {
            if failed.contains(&i) {
                assert!(cell.is_none(), "failed shard {i} must be None");
            } else {
                assert_eq!(*cell, Some(i * 2), "shard {i}");
            }
        }
    }

    #[test]
    fn checkpointed_run_resumes_without_rerunning_journaled_shards() {
        use crate::checkpoint::{run_fingerprint, Checkpoint};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let mut path = std::env::temp_dir();
        path.push(format!("lookaside-sup-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let run_id = run_fingerprint(&[0xf16, 12, 20]);
        let shards = ShardPlan::new(12).over(0..20usize);
        let task = |s: &Shard<usize>| s.seed ^ s.input as u64;

        // First run: journal everything, remember the clean fold.
        let mut ck: Checkpoint<u64> = Checkpoint::fresh(&path, run_id, 1).expect("fresh");
        let first = Executor::new(2)
            .run_fold_checkpointed(
                &shards,
                task,
                Vec::new(),
                |mut acc: Vec<u64>, _slot, v| {
                    acc.push(v);
                    acc
                },
                &Supervisor::new(),
                &mut ck,
            )
            .expect("checkpointed run");
        assert!(first.coverage.is_complete());
        drop(ck);

        // Second run resumes: every shard must come from the journal and
        // the fold must be byte-identical; re-running any shard panics.
        let reran = AtomicUsize::new(0);
        let mut ck: Checkpoint<u64> = Checkpoint::resume(&path, run_id, 1).expect("resume");
        let second = Executor::new(4)
            .run_fold_checkpointed(
                &shards,
                |s: &Shard<usize>| {
                    reran.fetch_add(1, Ordering::Relaxed);
                    s.seed ^ s.input as u64
                },
                Vec::new(),
                |mut acc: Vec<u64>, _slot, v| {
                    acc.push(v);
                    acc
                },
                &Supervisor::new(),
                &mut ck,
            )
            .expect("resumed run");
        assert_eq!(reran.load(Ordering::Relaxed), 0, "journaled shards must not re-run");
        assert_eq!(second.value, first.value);
        assert_eq!(second.coverage.resumed, 20);
        assert!(second.coverage.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn partially_journaled_run_resumes_the_remainder_only() {
        use crate::checkpoint::{run_fingerprint, Checkpoint};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let mut path = std::env::temp_dir();
        path.push(format!("lookaside-sup-partial-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let run_id = run_fingerprint(&[0xf17, 5, 16]);
        let shards = ShardPlan::new(5).over(0..16usize);

        // Journal only the first 6 shards, as a killed run would have.
        {
            let mut ck: Checkpoint<u64> = Checkpoint::fresh(&path, run_id, 1).expect("fresh");
            for s in shards.iter().take(6) {
                ck.record(s.id, &(s.seed ^ s.input as u64)).expect("record");
            }
        }
        let reran = AtomicUsize::new(0);
        let mut ck: Checkpoint<u64> = Checkpoint::resume(&path, run_id, 1).expect("resume");
        let out = Executor::new(3)
            .run_fold_checkpointed(
                &shards,
                |s: &Shard<usize>| {
                    reran.fetch_add(1, Ordering::Relaxed);
                    s.seed ^ s.input as u64
                },
                0u64,
                |acc, _slot, v| acc.wrapping_add(v),
                &Supervisor::new(),
                &mut ck,
            )
            .expect("resumed run");
        assert_eq!(reran.load(Ordering::Relaxed), 10, "only the tail re-runs");
        assert_eq!(out.value, clean_sum(&shards));
        assert_eq!(out.coverage.resumed, 6);
        assert!(out.coverage.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn env_supervisor_has_safe_defaults() {
        let sup = Supervisor::new();
        assert_eq!(sup.retry.max_attempts, 3);
        assert!(sup.watchdog.is_none());
        assert!(sup.faults.is_none());
    }
}
