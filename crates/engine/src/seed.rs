//! Per-shard seed derivation.
//!
//! Every shard owns an independent deterministic RNG stream derived from
//! the experiment's root seed and the shard's position in the plan —
//! never from thread identity, scheduling order, or wall clocks. Two runs
//! of the same plan therefore hand every shard the same seed regardless
//! of how many workers execute it.

/// Derives the seed of shard `shard_id` from `root_seed` with one
/// splitmix64 step.
///
/// The increment is applied `shard_id + 1` times worth of golden-ratio
/// stride in a single multiply, so `splitmix64(s, 0)` already differs
/// from `s` — a shard never accidentally reuses the root stream.
pub fn splitmix64(root_seed: u64, shard_id: u64) -> u64 {
    let mut z =
        root_seed.wrapping_add(shard_id.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_get_distinct_seeds() {
        let seeds: Vec<u64> = (0..64).map(|id| splitmix64(42, id)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
    }

    #[test]
    fn derivation_is_pure() {
        assert_eq!(splitmix64(7, 3), splitmix64(7, 3));
        assert_ne!(splitmix64(7, 3), splitmix64(8, 3));
        assert_ne!(splitmix64(7, 0), 7, "shard 0 must not reuse the root stream");
    }
}
