//! Streaming shard driver: fold results into one accumulator in shard-id
//! order instead of materialising a `Vec` of per-shard outputs.
//!
//! This is the engine half of the streaming trace mode. `Executor::run`
//! keeps every shard's result alive until the caller reduces them —
//! O(shards) results, but each result may itself hold O(queries) state
//! (packet captures). [`Executor::run_fold`] instead hands each finished
//! shard to a fold closure the moment all lower-numbered shards have been
//! folded, so steady-state memory is the accumulator plus a reorder
//! buffer of at most O(shards) small shard outputs.
//!
//! Determinism contract: the fold always observes shard results in
//! ascending shard id, exactly as a serial loop would, for every worker
//! count. Errors are deterministic too — the returned [`ShardError`] is
//! the one with the smallest shard id, regardless of which worker hit a
//! panic first on the wall clock.

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::thread;

use crate::executor::{run_one, Executor, ShardError};
use crate::plan::Shard;
use crate::queue::BoundedQueue;

impl Executor {
    /// Runs every shard through `task` and folds the results into `init`
    /// in shard-id order, returning the final accumulator.
    ///
    /// With one worker (or one shard) everything runs inline; otherwise a
    /// scoped pool drains a bounded queue and the calling thread folds
    /// results as they arrive, buffering out-of-order completions in a
    /// `BTreeMap` keyed by shard id. A panicking shard aborts the fold:
    /// the error with the smallest shard id is returned and later shards'
    /// results are dropped (workers still drain the queue so the scope
    /// joins cleanly).
    ///
    /// # Errors
    ///
    /// Returns the smallest-shard-id [`ShardError`] if any shard panicked.
    // lint:entry(hot-path)
    pub fn run_fold<I, T, A, F, G>(
        &self,
        shards: &[Shard<I>],
        task: F,
        init: A,
        mut fold: G,
    ) -> Result<A, ShardError>
    where
        I: Sync,
        T: Send,
        F: Fn(&Shard<I>) -> T + Sync,
        G: FnMut(A, T) -> A,
    {
        let workers = self.jobs().min(shards.len());
        if workers <= 1 {
            let mut acc = init;
            for shard in shards {
                acc = fold(acc, run_one(&task, shard)?);
            }
            return Ok(acc);
        }

        let queue: BoundedQueue<(usize, &Shard<I>)> = BoundedQueue::new(workers * 2);
        let (tx, rx) = mpsc::channel::<(usize, Result<T, ShardError>)>();
        let mut acc = Some(init);
        let mut first_error: Option<ShardError> = None;
        thread::scope(|scope| {
            let queue = &queue;
            let task = &task;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    while let Some((slot, shard)) = queue.pop() {
                        if tx.send((slot, run_one(task, shard))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for item in shards.iter().enumerate() {
                if !queue.push(item) {
                    break;
                }
            }
            queue.close();

            // Fold strictly in shard-id order; out-of-order completions
            // wait in the reorder buffer. Workers send on an unbounded
            // channel so they never block on a slow fold.
            let mut pending: BTreeMap<usize, Result<T, ShardError>> = BTreeMap::new();
            let mut next = 0usize;
            for (slot, result) in rx {
                pending.insert(slot, result);
                while let Some(ready) = pending.remove(&next) {
                    next += 1;
                    if first_error.is_some() {
                        continue;
                    }
                    match ready {
                        Ok(value) => {
                            if let Some(current) = acc.take() {
                                acc = Some(fold(current, value));
                            }
                        }
                        Err(err) => first_error = Some(err),
                    }
                }
            }
        });
        match first_error {
            Some(err) => Err(err),
            // lint:allow(panic::expect) -- the accumulator is only taken while folding and always put back; a hole here is an engine bug worth failing loudly
            None => Ok(acc.expect("accumulator survives the fold")),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::executor::{Executor, ShardError};
    use crate::plan::ShardPlan;

    #[test]
    fn fold_matches_serial_reduce_at_any_job_count() {
        let shards = ShardPlan::new(7).over(0..97usize);
        let serial = Executor::serial()
            .run_fold(
                &shards,
                |s| s.seed ^ s.input as u64,
                Vec::new(),
                |mut acc, v| {
                    acc.push(v);
                    acc
                },
            )
            .expect("serial fold");
        for jobs in [2, 3, 8] {
            let parallel = Executor::new(jobs)
                .run_fold(
                    &shards,
                    |s| s.seed ^ s.input as u64,
                    Vec::new(),
                    |mut acc, v| {
                        acc.push(v);
                        acc
                    },
                )
                .expect("parallel fold");
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn fold_reports_the_smallest_failing_shard() {
        let shards = ShardPlan::new(1).over(0..32usize);
        for jobs in [1, 4] {
            let err: ShardError = Executor::new(jobs)
                .run_fold(
                    &shards,
                    |s| {
                        assert!(s.input != 5 && s.input != 20, "cell {} exploded", s.input);
                        s.input
                    },
                    0usize,
                    |acc, v| acc + v,
                )
                .expect_err("two shards explode");
            assert_eq!(err.shard_id, 5, "jobs={jobs}");
        }
    }

    #[test]
    fn fold_on_empty_plan_returns_init() {
        let shards: Vec<crate::plan::Shard<u8>> = Vec::new();
        let folded =
            Executor::new(4).run_fold(&shards, |s| s.input, 41u32, |acc, v| acc + v as u32);
        assert_eq!(folded.expect("empty fold"), 41);
    }

    #[test]
    fn fold_sees_results_in_shard_order() {
        let shards = ShardPlan::new(0).over(0..64usize);
        for jobs in [1, 2, 8] {
            let order = Executor::new(jobs)
                .run_fold(
                    &shards,
                    |s| s.input,
                    Vec::new(),
                    |mut acc: Vec<usize>, v| {
                        acc.push(v);
                        acc
                    },
                )
                .expect("fold");
            assert_eq!(order, (0..64).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }
}
