//! Crash-safe shard journaling: the checkpoint half of the supervision
//! layer (DESIGN.md §14).
//!
//! A supervised sweep appends each completed shard result to a journal
//! file in ascending shard-id order as the fold front advances. Every
//! record is length-framed and CRC-checked, so a run killed mid-write
//! leaves at worst a torn tail that the loader silently truncates;
//! resuming then re-runs only the shards past the last durable record
//! and produces byte-identical output to an uninterrupted run.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header:  b"LKCP" | version u16 | run_id u64 | crc32(previous 14 bytes)
//! record:  shard_id u64 | payload_len u32 | payload | crc32(record so far)
//! ```
//!
//! The `run_id` is a caller-computed fingerprint of everything that
//! shapes the sweep (figure tag, seed, scale, shard count — see
//! [`run_fingerprint`]); resuming with a mismatched fingerprint is
//! refused rather than silently blending two different runs.

// lint:checkpoint-codec

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::seed::splitmix64;

/// Journal file magic bytes.
pub const JOURNAL_MAGIC: [u8; 4] = *b"LKCP";

/// Journal format version.
pub const JOURNAL_VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 2 + 8 + 4;
const RECORD_PREFIX: usize = 8 + 4;
const CRC_LEN: usize = 4;

/// CRC-32 (IEEE 802.3, reflected polynomial) over `bytes` — hand-rolled
/// and table-free so the journal format has zero dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Chains `parts` into one run fingerprint via repeated [`splitmix64`].
///
/// Callers fold every input that shapes a sweep (an experiment tag, the
/// root seed, the scale divisor, the shard count) so a journal can never
/// be resumed against a differently-shaped run.
pub fn run_fingerprint(parts: &[u64]) -> u64 {
    let mut acc = 0x1007_a51d_ec0d_e000 ^ u64::from(JOURNAL_VERSION);
    for (i, &part) in parts.iter().enumerate() {
        acc = splitmix64(acc ^ part, i as u64);
    }
    acc
}

/// Fixed-layout little-endian encoding for journaled shard results.
///
/// Implementations must be exact round-trips: `decode(encode(v)) == v`
/// bit for bit, with no platform-dependent widths, so a resumed fold is
/// byte-identical to an uninterrupted one.
pub trait JournalCodec: Sized {
    /// Appends the encoded value to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `*bytes`, advancing it past
    /// the consumed prefix. `None` on any shape mismatch.
    fn decode_from(bytes: &mut &[u8]) -> Option<Self>;
    /// Decodes a value that must consume `bytes` exactly.
    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut rest = bytes;
        let value = Self::decode_from(&mut rest)?;
        rest.is_empty().then_some(value)
    }
}

fn take<'a>(r: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if r.len() < n {
        return None;
    }
    let (head, tail) = r.split_at(n);
    *r = tail;
    Some(head)
}

fn take_u64(r: &mut &[u8]) -> Option<u64> {
    let mut b = [0u8; 8];
    b.copy_from_slice(take(r, 8)?);
    Some(u64::from_le_bytes(b))
}

fn take_u32(r: &mut &[u8]) -> Option<u32> {
    let mut b = [0u8; 4];
    b.copy_from_slice(take(r, 4)?);
    Some(u32::from_le_bytes(b))
}

fn take_u16(r: &mut &[u8]) -> Option<u16> {
    let mut b = [0u8; 2];
    b.copy_from_slice(take(r, 2)?);
    Some(u16::from_le_bytes(b))
}

impl JournalCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode_from(bytes: &mut &[u8]) -> Option<Self> {
        take_u64(bytes)
    }
}

impl JournalCodec for (u64, u64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode_from(bytes: &mut &[u8]) -> Option<Self> {
        Some((take_u64(bytes)?, take_u64(bytes)?, take_u64(bytes)?))
    }
}

impl<T: JournalCodec> JournalCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode_from(bytes: &mut &[u8]) -> Option<Self> {
        let count = usize::try_from(take_u64(bytes)?).ok()?;
        // Pre-size conservatively: a corrupt count must not OOM before
        // the element decode fails.
        let mut items = Vec::with_capacity(count.min(bytes.len()));
        for _ in 0..count {
            items.push(T::decode_from(bytes)?);
        }
        Some(items)
    }
}

/// Why a journal could not be opened, read, or written.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but does not start with a valid journal header.
    BadHeader(&'static str),
    /// The journal was written by a differently-configured run.
    RunIdMismatch {
        /// Fingerprint of the run being resumed.
        expected: u64,
        /// Fingerprint found in the journal header.
        found: u64,
    },
    /// A CRC-valid record failed to decode as the expected shard type.
    Decode {
        /// The shard id of the undecodable record.
        shard_id: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::BadHeader(why) => write!(f, "not a checkpoint journal: {why}"),
            JournalError::RunIdMismatch { expected, found } => write!(
                f,
                "journal belongs to a different run \
                 (expected fingerprint {expected:#x}, found {found:#x})"
            ),
            JournalError::Decode { shard_id } => {
                write!(f, "journal record for shard {shard_id} does not decode as this sweep's shard type")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

fn encode_header(run_id: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&JOURNAL_MAGIC);
    out.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out.extend_from_slice(&run_id.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    h.copy_from_slice(&out);
    h
}

/// A typed checkpoint: records recovered from a previous run plus an
/// open journal appending this run's completions.
///
/// `every` is the flush cadence: every N appended records the file is
/// synced to disk, bounding how much work a SIGKILL can lose.
#[derive(Debug)]
pub struct Checkpoint<T> {
    file: File,
    path: PathBuf,
    every: usize,
    unflushed: usize,
    buf: Vec<u8>,
    resumed: BTreeMap<usize, T>,
}

impl<T: JournalCodec> Checkpoint<T> {
    /// Starts a fresh journal at `path`, truncating any existing file.
    pub fn fresh(path: &Path, run_id: u64, every: usize) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        file.write_all(&encode_header(run_id))?;
        file.sync_data()?;
        Ok(Checkpoint {
            file,
            path: path.to_path_buf(),
            every: every.max(1),
            unflushed: 0,
            buf: Vec::new(),
            resumed: BTreeMap::new(),
        })
    }

    /// Opens `path`, recovers every valid record, truncates any torn
    /// tail, and continues appending after it. A missing or header-less
    /// (torn before the first sync) file starts fresh.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadHeader`] if the file is not a journal,
    /// [`JournalError::RunIdMismatch`] if it belongs to a different run,
    /// [`JournalError::Decode`] if a CRC-valid record does not decode as
    /// `T`, or [`JournalError::Io`] on filesystem failure.
    pub fn resume(path: &Path, run_id: u64, every: usize) -> Result<Self, JournalError> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Checkpoint::fresh(path, run_id, every);
            }
            Err(e) => return Err(e.into()),
        }
        if bytes.len() < HEADER_LEN {
            // Died before the header hit the disk: nothing recoverable.
            return Checkpoint::fresh(path, run_id, every);
        }
        let mut header = bytes.get(..HEADER_LEN).unwrap_or_default();
        let magic = take(&mut header, 4).unwrap_or_default();
        if magic != JOURNAL_MAGIC {
            return Err(JournalError::BadHeader("wrong magic bytes"));
        }
        let version = take_u16(&mut header).unwrap_or(0);
        if version != JOURNAL_VERSION {
            return Err(JournalError::BadHeader("unsupported version"));
        }
        let found = take_u64(&mut header).unwrap_or(0);
        let stored_crc = take_u32(&mut header).unwrap_or(0);
        let crc_input = bytes.get(..HEADER_LEN - CRC_LEN).unwrap_or_default();
        if stored_crc != crc32(crc_input) {
            return Err(JournalError::BadHeader("header checksum mismatch"));
        }
        if found != run_id {
            return Err(JournalError::RunIdMismatch { expected: run_id, found });
        }

        let mut resumed = BTreeMap::new();
        let mut valid_end = HEADER_LEN;
        loop {
            let rest = bytes.get(valid_end..).unwrap_or_default();
            let Some(record_len) = framed_record_len(rest) else { break };
            let Some(record) = rest.get(..record_len) else { break };
            let mut r = record;
            let shard_id = take_u64(&mut r).unwrap_or(0);
            let payload_len = take_u32(&mut r).unwrap_or(0) as usize;
            let payload = take(&mut r, payload_len).unwrap_or_default();
            let stored = {
                let mut tail = r;
                take_u32(&mut tail).unwrap_or(0)
            };
            let covered = record.get(..RECORD_PREFIX + payload_len).unwrap_or_default();
            if stored != crc32(covered) {
                break; // torn or corrupt tail: drop it and everything after
            }
            let Some(value) = T::decode(payload) else {
                return Err(JournalError::Decode { shard_id });
            };
            let Ok(id) = usize::try_from(shard_id) else {
                return Err(JournalError::Decode { shard_id });
            };
            resumed.insert(id, value);
            valid_end += record_len;
        }

        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_end as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Checkpoint {
            file,
            path: path.to_path_buf(),
            every: every.max(1),
            unflushed: 0,
            buf: Vec::new(),
            resumed,
        })
    }

    /// The journal's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Shard results recovered from the journal, keyed by shard id. The
    /// supervisor takes these once and folds them without re-running or
    /// re-journaling the shards.
    pub fn take_resumed(&mut self) -> BTreeMap<usize, T> {
        std::mem::take(&mut self.resumed)
    }

    /// Appends one completed shard result; the record is built in memory
    /// and written with a single `write_all`, then synced to disk every
    /// `every` records.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write or sync failure.
    pub fn record(&mut self, shard_id: usize, value: &T) -> Result<(), JournalError> {
        self.buf.clear();
        self.buf.extend_from_slice(&(shard_id as u64).to_le_bytes());
        self.buf.extend_from_slice(&[0u8; 4]);
        value.encode(&mut self.buf);
        let payload_len = (self.buf.len() - RECORD_PREFIX) as u32;
        if let Some(slot) = self.buf.get_mut(8..RECORD_PREFIX) {
            slot.copy_from_slice(&payload_len.to_le_bytes());
        }
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.file.write_all(&self.buf)?;
        self.unflushed += 1;
        if self.unflushed >= self.every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces buffered records to disk.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on sync failure.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data()?;
        self.unflushed = 0;
        Ok(())
    }
}

/// Total framed length of the record at the front of `rest`, if the
/// prefix is complete enough to tell.
fn framed_record_len(rest: &[u8]) -> Option<usize> {
    if rest.len() < RECORD_PREFIX + CRC_LEN {
        return None;
    }
    let mut r = rest;
    let _shard = take_u64(&mut r)?;
    let payload_len = take_u32(&mut r)? as usize;
    let total = RECORD_PREFIX + payload_len + CRC_LEN;
    (rest.len() >= total).then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lookaside-ckpt-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn codec_round_trips_exactly() {
        let rows: Vec<(u64, u64, u64)> = vec![(1, 2, 3), (u64::MAX, 0, 7)];
        let mut buf = Vec::new();
        rows.encode(&mut buf);
        assert_eq!(Vec::<(u64, u64, u64)>::decode(&buf), Some(rows));
        // Trailing garbage must be rejected by the exact-decode form.
        buf.push(0);
        assert_eq!(Vec::<(u64, u64, u64)>::decode(&buf), None);
    }

    #[test]
    fn fresh_write_then_resume_recovers_every_record() {
        let path = tmp("roundtrip");
        let run = run_fingerprint(&[1, 2, 3]);
        {
            let mut ck: Checkpoint<Vec<u64>> = Checkpoint::fresh(&path, run, 2).expect("fresh");
            ck.record(0, &vec![10, 11]).expect("record");
            ck.record(1, &vec![]).expect("record");
            ck.record(2, &vec![99]).expect("record");
            ck.sync().expect("sync");
        }
        let mut ck: Checkpoint<Vec<u64>> = Checkpoint::resume(&path, run, 2).expect("resume");
        let got = ck.take_resumed();
        assert_eq!(got.len(), 3);
        assert_eq!(got.get(&0), Some(&vec![10, 11]));
        assert_eq!(got.get(&1), Some(&vec![]));
        assert_eq!(got.get(&2), Some(&vec![99]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_valid_record() {
        let path = tmp("torn");
        let run = run_fingerprint(&[9]);
        {
            let mut ck: Checkpoint<u64> = Checkpoint::fresh(&path, run, 1).expect("fresh");
            ck.record(0, &111).expect("record");
            ck.record(1, &222).expect("record");
        }
        // Simulate a SIGKILL mid-write: append half a record of garbage.
        let mut bytes = std::fs::read(&path).expect("read");
        let full = bytes.len();
        bytes.extend_from_slice(&[0x5a; 9]);
        std::fs::write(&path, &bytes).expect("write");

        let mut ck: Checkpoint<u64> = Checkpoint::resume(&path, run, 1).expect("resume");
        let got = ck.take_resumed();
        assert_eq!(got.len(), 2);
        assert_eq!(got.get(&1), Some(&222));
        // The torn bytes are gone from disk; appends restart cleanly.
        assert_eq!(std::fs::metadata(&path).expect("meta").len() as usize, full);
        ck.record(2, &333).expect("record");
        drop(ck);
        let mut again: Checkpoint<u64> = Checkpoint::resume(&path, run, 1).expect("resume2");
        assert_eq!(again.take_resumed().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_body_drops_it_and_everything_after() {
        let path = tmp("corrupt");
        let run = run_fingerprint(&[4]);
        {
            let mut ck: Checkpoint<u64> = Checkpoint::fresh(&path, run, 1).expect("fresh");
            ck.record(0, &5).expect("record");
            ck.record(1, &6).expect("record");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a payload byte inside the first record.
        let idx = HEADER_LEN + RECORD_PREFIX;
        bytes[idx] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        let mut ck: Checkpoint<u64> = Checkpoint::resume(&path, run, 1).expect("resume");
        assert!(ck.take_resumed().is_empty(), "corrupt first record drops the tail too");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_id_mismatch_is_refused() {
        let path = tmp("runid");
        {
            let _ck: Checkpoint<u64> = Checkpoint::fresh(&path, 7, 1).expect("fresh");
        }
        let err = Checkpoint::<u64>::resume(&path, 8, 1).expect_err("mismatch");
        assert!(matches!(err, JournalError::RunIdMismatch { expected: 8, found: 7 }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_journal_file_is_refused() {
        let path = tmp("notajournal");
        std::fs::write(&path, b"totally not a journal, but long enough to parse").expect("write");
        let err = Checkpoint::<u64>::resume(&path, 1, 1).expect_err("bad header");
        assert!(matches!(err, JournalError::BadHeader(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_resumes_as_fresh() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let mut ck: Checkpoint<u64> = Checkpoint::resume(&path, 3, 4).expect("fresh resume");
        assert!(ck.take_resumed().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_separates_runs_and_orders() {
        assert_ne!(run_fingerprint(&[1, 2]), run_fingerprint(&[2, 1]));
        assert_ne!(run_fingerprint(&[1]), run_fingerprint(&[1, 0]));
        assert_eq!(run_fingerprint(&[5, 6]), run_fingerprint(&[5, 6]));
    }
}
