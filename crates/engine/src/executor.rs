//! The parallel executor: a `std::thread` worker pool draining a bounded
//! shard queue, with per-shard panic isolation and order-preserving
//! result collection.

use std::env;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

use crate::plan::Shard;
use crate::queue::BoundedQueue;

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "LOOKASIDE_JOBS";

/// Environment variable forcing the streaming execution mode
/// (`1`/`true`/`on`). Streaming has been the default since PR 9; this
/// knob remains for scripts that set it explicitly and wins over
/// [`BATCH_ENV`] when both are set. Streaming and batch are
/// byte-identical by contract; the variables only pick which machinery
/// produces those bytes.
pub const STREAM_ENV: &str = "LOOKASIDE_STREAM";

/// Environment variable opting out of the streaming default and into the
/// batch oracle (`1`/`true`/`on`) — the `repro --batch` flag sets it.
pub const BATCH_ENV: &str = "LOOKASIDE_BATCH";

pub(crate) fn env_flag(name: &str) -> bool {
    // lint:allow(determinism::env-read) -- LOOKASIDE_STREAM/LOOKASIDE_BATCH pick between two byte-identical execution paths; they can never reach results
    matches!(env::var(name).ok().as_deref().map(str::trim), Some("1" | "true" | "on"))
}

/// Whether batch execution was requested via [`BATCH_ENV`].
pub fn batch_requested() -> bool {
    env_flag(BATCH_ENV)
}

/// Whether streaming execution is selected: the default, unless
/// [`BATCH_ENV`] opts out. An explicit [`STREAM_ENV`] always wins.
pub fn stream_requested() -> bool {
    env_flag(STREAM_ENV) || !batch_requested()
}

/// A shard that panicked instead of producing a result.
///
/// Panic isolation keeps one bad cell from poisoning a whole sweep: the
/// worker catches the unwind, reports it here, and moves on to the next
/// shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Position of the failing shard in the submitted plan.
    pub shard_id: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} panicked: {}", self.shard_id, self.message)
    }
}

impl std::error::Error for ShardError {}

/// Runs shard plans across a worker pool.
///
/// Determinism contract: `run` returns results in submission order, each
/// produced by a pure function of its shard — so the output is identical
/// for every `jobs` value, including 1. Thread scheduling can only change
/// *when* a shard runs, never what it computes or where its result lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with exactly `jobs` workers (minimum 1).
    pub fn new(jobs: usize) -> Self {
        Executor { jobs: jobs.max(1) }
    }

    /// A single-worker executor — the reference for byte-identity checks.
    pub fn serial() -> Self {
        Executor::new(1)
    }

    /// Worker count from `LOOKASIDE_JOBS` when set to a positive integer,
    /// else [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        // lint:allow(determinism::env-read) -- LOOKASIDE_JOBS selects the worker count only; the reduction is ordered by shard id, so jobs never reaches results
        let from_var = env::var(JOBS_ENV).ok().and_then(|v| v.trim().parse::<usize>().ok());
        match from_var {
            Some(n) if n >= 1 => Executor::new(n),
            _ => Executor::new(thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)),
        }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every shard through `task`, returning one result per shard in
    /// submission order.
    ///
    /// With one worker (or one shard) everything runs inline on the
    /// calling thread; otherwise a scoped pool of `min(jobs, shards)`
    /// workers drains a bounded queue. A panicking shard yields
    /// `Err(ShardError)` in its slot; the remaining shards still run.
    pub fn run<I, T, F>(&self, shards: &[Shard<I>], task: F) -> Vec<Result<T, ShardError>>
    where
        I: Sync,
        T: Send,
        F: Fn(&Shard<I>) -> T + Sync,
    {
        let workers = self.jobs.min(shards.len());
        if workers <= 1 {
            return shards.iter().map(|shard| run_one(&task, shard)).collect();
        }
        let queue: BoundedQueue<(usize, &Shard<I>)> = BoundedQueue::new(workers * 2);
        let mut slots: Vec<Option<Result<T, ShardError>>> = shards.iter().map(|_| None).collect();
        thread::scope(|scope| {
            let queue = &queue;
            let task = &task;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        while let Some((slot, shard)) = queue.pop() {
                            done.push((slot, run_one(task, shard)));
                        }
                        done
                    })
                })
                .collect();
            for item in shards.iter().enumerate() {
                if !queue.push(item) {
                    break;
                }
            }
            queue.close();
            for handle in handles {
                // lint:allow(panic::expect) -- worker closures only pop the queue and call run_one, which catches every shard panic; a failed join is an engine bug, not a shard fault
                let worker_results = handle.join().expect("worker died outside a shard");
                for (slot, result) in worker_results {
                    if let Some(cell) = slots.get_mut(slot) {
                        *cell = Some(result);
                    }
                }
            }
        });
        // lint:allow(panic::expect) -- every shard id is pushed exactly once and each worker reports every shard it popped, so a hole here is an engine bug worth failing loudly
        slots.into_iter().map(|slot| slot.expect("every shard reports exactly once")).collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

/// Unwraps a full set of shard results, panicking with the first
/// [`ShardError`] — for experiments where a missing cell would corrupt
/// the table being built.
///
/// # Panics
///
/// Panics if any shard failed.
#[allow(clippy::panic)]
pub fn expect_all<T>(results: Vec<Result<T, ShardError>>) -> Vec<T> {
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            // lint:allow(panic::panic-macro) -- expect_all's documented contract is to propagate the first shard failure as a panic
            Err(e) => panic!("{e}"),
        })
        .collect()
}

pub(crate) fn run_one<I, T, F>(task: &F, shard: &Shard<I>) -> Result<T, ShardError>
where
    F: Fn(&Shard<I>) -> T,
{
    catch_unwind(AssertUnwindSafe(|| task(shard)))
        .map_err(|payload| ShardError { shard_id: shard.id, message: panic_message(&*payload) })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ShardPlan;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_submission_order_at_any_job_count() {
        let shards = ShardPlan::new(3).over(0..64usize);
        let serial: Vec<u64> =
            expect_all(Executor::serial().run(&shards, |s| s.seed ^ s.input as u64));
        for jobs in [2, 3, 8] {
            let parallel: Vec<u64> =
                expect_all(Executor::new(jobs).run(&shards, |s| s.seed ^ s.input as u64));
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        let shards = ShardPlan::new(0).over(0..100usize);
        let ran = AtomicUsize::new(0);
        let results = Executor::new(4).run(&shards, |s| {
            ran.fetch_add(1, Ordering::Relaxed);
            s.input
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn panicking_shard_reports_error_without_poisoning_the_run() {
        let shards = ShardPlan::new(1).over(0..10usize);
        for jobs in [1, 4] {
            let results = Executor::new(jobs).run(&shards, |s| {
                assert!(s.input != 3, "cell {} exploded", s.input);
                s.input * 2
            });
            for (i, result) in results.iter().enumerate() {
                if i == 3 {
                    let err = result.as_ref().expect_err("shard 3 must fail");
                    assert_eq!(err.shard_id, 3);
                    assert!(err.message.contains("cell 3 exploded"), "{err}");
                } else {
                    assert_eq!(*result.as_ref().expect("healthy shard"), i * 2);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard 2 panicked")]
    fn expect_all_surfaces_the_first_failure() {
        let shards = ShardPlan::new(1).over(0..4usize);
        let results = Executor::serial().run(&shards, |s| {
            assert!(s.input != 2, "boom");
            s.input
        });
        let _ = expect_all(results);
    }

    #[test]
    fn empty_plan_is_fine() {
        let shards: Vec<crate::plan::Shard<u8>> = Vec::new();
        let results = Executor::new(8).run(&shards, |s| s.input);
        assert!(results.is_empty());
    }

    #[test]
    fn from_env_floor_is_one_worker() {
        assert!(Executor::from_env().jobs() >= 1);
        assert_eq!(Executor::new(0).jobs(), 1);
    }
}
