//! Plain-text table rendering for the `repro` binary and EXPERIMENTS.md.

use crate::experiments::LeakPoint;

/// Renders a fixed-width table with a header row and separator.
///
/// # Example
///
/// ```
/// let s = lookaside::report::render_table(
///     &["N", "leaked", "%"],
///     &[vec!["100".into(), "84".into(), "84.0".into()]],
/// );
/// assert!(s.contains("leaked"));
/// assert!(s.lines().count() >= 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push(' ');
            line.push_str(cell);
            line.push_str(&" ".repeat(w - cell.len()));
            line.push_str(" |");
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders the Figs. 8–9 sweep as the canonical text table — the exact
/// bytes `repro fig9` prints. Shared by the binary and the engine
/// determinism tests, so "`--jobs 1` and `--jobs N` are byte-identical"
/// is asserted against the same rendering the user sees.
pub fn fig8_9_table(points: &[LeakPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.dlv_queries.to_string(),
                p.leaked_domains.to_string(),
                pct(p.proportion),
                p.suppressed.to_string(),
            ]
        })
        .collect();
    render_table(&["#domains", "DLV queries", "leaked domains", "leaked %", "suppressed"], &rows)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count as megabytes (10⁶) with two decimals, the paper's
/// unit.
pub fn megabytes(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Formats nanoseconds as seconds with two decimals.
pub fn seconds(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(
            &["a", "bbbb"],
            &[vec!["xxxxx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(megabytes(36_310_000), "36.31");
        assert_eq!(seconds(2_324_450_000_000), "2324.45");
    }
}
