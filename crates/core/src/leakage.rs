//! The Case-1 / Case-2 leakage classifier (§3 of the paper).
//!
//! Like the paper's pipeline, classification runs over the *packet capture*
//! rather than resolver internals: a DLV query is Case 1 when the registry
//! answered `NOERROR` (a record was deposited — no worse than ordinary DNS
//! exposure) and Case 2 — a privacy leak — when it answered `NXDOMAIN`
//! ("No such name"), i.e. the registry observed a domain it holds nothing
//! for. §5.3 measures validation utility the same way.

use std::collections::BTreeSet;

use lookaside_netsim::{Capture, Direction};
use lookaside_wire::{Name, Rcode};
use serde::Serialize;

/// Classification of one run's DLV traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct LeakageReport {
    /// DLV queries observed on the wire.
    pub dlv_queries: usize,
    /// DLV responses observed.
    pub dlv_responses: usize,
    /// Case 1: answered `NOERROR` — the registry held a record.
    pub case1: usize,
    /// Case 2: answered `NXDOMAIN` — pure leakage.
    pub case2: usize,
    /// Distinct leaked names (stripped of the registry suffix where
    /// possible; hashed-mode labels stay hashed).
    pub leaked_names: BTreeSet<Name>,
}

impl LeakageReport {
    /// Fraction of DLV queries that were leakage (the §5.3 "≈98.8 %").
    pub fn leak_fraction(&self) -> f64 {
        if self.dlv_responses == 0 {
            return 0.0;
        }
        self.case2 as f64 / self.dlv_responses as f64
    }

    /// Fraction of DLV queries the registry could actually serve.
    pub fn utility_fraction(&self) -> f64 {
        if self.dlv_responses == 0 {
            return 0.0;
        }
        self.case1 as f64 / self.dlv_responses as f64
    }

    /// Number of distinct leaked names.
    pub fn distinct_leaked(&self) -> usize {
        self.leaked_names.len()
    }

    /// Merges another shard's report into this one: counts add, leaked
    /// name sets union. Because [`classify`] examines each packet
    /// independently and `leaked_names` is an order-insensitive set,
    /// merging per-shard reports equals classifying the shards' merged
    /// capture — a property the engine determinism tests pin down.
    // lint:sink(determinism)
    pub fn merge(&mut self, other: &LeakageReport) {
        self.dlv_queries += other.dlv_queries;
        self.dlv_responses += other.dlv_responses;
        self.case1 += other.case1;
        self.case2 += other.case2;
        self.leaked_names.extend(other.leaked_names.iter().cloned());
    }
}

/// Classifies a capture's DLV traffic against the registry apex.
pub fn classify(capture: &Capture, dlv_apex: &Name) -> LeakageReport {
    let mut report = LeakageReport::default();
    for packet in capture.dlv_queries() {
        report.dlv_queries += 1;
        let _ = packet;
    }
    for packet in capture.dlv_responses() {
        debug_assert_eq!(packet.direction, Direction::Response);
        report.dlv_responses += 1;
        // Case 1 requires the registry to actually serve a DLV record.
        // An empty NOERROR (a NODATA at an empty non-terminal like
        // `com.dlv.isc.org`) exposed the name without any utility, so it
        // counts as leakage like an NXDOMAIN.
        match (packet.rcode, packet.answers) {
            (Rcode::NoError, answers) if answers > 0 => report.case1 += 1,
            (Rcode::NoError, _) | (Rcode::NxDomain, _) => {
                report.case2 += 1;
                let leaked = packet
                    .qname
                    .strip_suffix(dlv_apex)
                    .filter(|n| !n.is_root())
                    .unwrap_or_else(|| packet.qname.clone());
                report.leaked_names.insert(leaked);
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_netsim::{CaptureFilter, Packet};
    use lookaside_wire::RrType;
    use std::net::Ipv4Addr;

    fn packet(qname: &str, direction: Direction, rcode: Rcode) -> Packet {
        Packet {
            time_ns: 0,
            dst: Ipv4Addr::new(10, 2, 0, 2),
            direction,
            qname: Name::parse(qname).unwrap(),
            qtype: RrType::Dlv,
            rcode,
            answers: u16::from(direction == Direction::Response && rcode == Rcode::NoError),
            size: 80,
        }
    }

    #[test]
    fn classify_splits_cases() {
        let apex = Name::parse("dlv.isc.org.").unwrap();
        let mut cap = Capture::new(CaptureFilter::DlvOnly);
        cap.record(packet("island.com.dlv.isc.org.", Direction::Query, Rcode::NoError));
        cap.record(packet("island.com.dlv.isc.org.", Direction::Response, Rcode::NoError));
        cap.record(packet("leaky.com.dlv.isc.org.", Direction::Query, Rcode::NoError));
        cap.record(packet("leaky.com.dlv.isc.org.", Direction::Response, Rcode::NxDomain));
        cap.record(packet("com.dlv.isc.org.", Direction::Query, Rcode::NoError));
        cap.record(packet("com.dlv.isc.org.", Direction::Response, Rcode::NxDomain));
        // An empty NOERROR (NODATA at an empty non-terminal) is also a leak.
        cap.record(packet("net.dlv.isc.org.", Direction::Query, Rcode::NoError));
        cap.record(Packet {
            answers: 0,
            ..packet("net.dlv.isc.org.", Direction::Response, Rcode::NoError)
        });

        let report = classify(&cap, &apex);
        assert_eq!(report.dlv_queries, 4);
        assert_eq!(report.case1, 1);
        assert_eq!(report.case2, 3);
        assert!((report.leak_fraction() - 3.0 / 4.0).abs() < 1e-9);
        assert!((report.utility_fraction() - 1.0 / 4.0).abs() < 1e-9);
        let leaked: Vec<String> = report.leaked_names.iter().map(|n| n.to_string()).collect();
        // Canonical order: names under com before net.
        assert_eq!(leaked, ["com.", "leaky.com.", "net."]);
    }

    #[test]
    fn merged_reports_equal_report_of_merged_capture() {
        let apex = Name::parse("dlv.isc.org.").unwrap();
        let mut shard0 = Capture::new(CaptureFilter::DlvOnly);
        shard0.record(packet("island.com.dlv.isc.org.", Direction::Query, Rcode::NoError));
        shard0.record(packet("island.com.dlv.isc.org.", Direction::Response, Rcode::NoError));
        shard0.record(packet("leaky.com.dlv.isc.org.", Direction::Query, Rcode::NoError));
        shard0.record(packet("leaky.com.dlv.isc.org.", Direction::Response, Rcode::NxDomain));
        let mut shard1 = Capture::new(CaptureFilter::DlvOnly);
        shard1.record(packet("other.net.dlv.isc.org.", Direction::Query, Rcode::NoError));
        shard1.record(packet("other.net.dlv.isc.org.", Direction::Response, Rcode::NxDomain));
        // Same leaked name observed by both shards: the set must dedup.
        shard1.record(packet("leaky.com.dlv.isc.org.", Direction::Query, Rcode::NoError));
        shard1.record(packet("leaky.com.dlv.isc.org.", Direction::Response, Rcode::NxDomain));

        let mut merged_reports = classify(&shard0, &apex);
        merged_reports.merge(&classify(&shard1, &apex));

        let mut merged_capture = Capture::new(CaptureFilter::DlvOnly);
        merged_capture.merge(&shard0);
        merged_capture.merge(&shard1);
        assert_eq!(merged_reports, classify(&merged_capture, &apex));
        assert_eq!(merged_reports.distinct_leaked(), 2);
        assert_eq!(merged_reports.case2, 3);
    }

    #[test]
    fn empty_capture_yields_zero_fractions() {
        let report =
            classify(&Capture::new(CaptureFilter::DlvOnly), &Name::parse("dlv.isc.org.").unwrap());
        assert_eq!(report.leak_fraction(), 0.0);
        assert_eq!(report.utility_fraction(), 0.0);
        assert_eq!(report.distinct_leaked(), 0);
    }
}
