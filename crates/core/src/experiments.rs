//! One experiment runner per table and figure of the paper's evaluation.
//!
//! Every experiment is deterministic given its seed, builds a fresh
//! simulated Internet (cold caches, like the paper's per-dataset runs),
//! drives the resolver, and interprets the packet capture.

use lookaside_engine::{expect_all, Executor, ShardPlan};
use lookaside_netsim::{CaptureFilter, TrafficStats};
use lookaside_resolver::{BindConfig, Counters, InstallMethod, ResolverConfig};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::{Name, RrType};
use lookaside_workload::{DitlTrace, PopulationParams, Zipf};
use serde::Serialize;

use crate::internet::{Internet, InternetParams};
use crate::leakage::{classify, LeakageReport};

/// Which names a run queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySet {
    /// The top-`n` ranked domains, in rank order.
    Top(usize),
    /// Specific ranks, in the given order.
    Ranks(Vec<usize>),
    /// Top-`n`, shuffled with a seed (§5.1 "order matters").
    Shuffled {
        /// How many domains.
        n: usize,
        /// Shuffle seed.
        seed: u64,
    },
    /// The 45 DNSSEC-secured domains (§5.2).
    Huque,
}

impl QuerySet {
    pub(crate) fn max_rank(&self) -> usize {
        match self {
            QuerySet::Top(n) | QuerySet::Shuffled { n, .. } => *n,
            QuerySet::Ranks(ranks) => ranks.iter().copied().max().unwrap_or(0),
            QuerySet::Huque => 0,
        }
    }

    pub(crate) fn names(&self, internet: &Internet) -> Vec<Name> {
        match self {
            QuerySet::Top(n) => internet.population.top(*n),
            QuerySet::Ranks(ranks) => {
                ranks.iter().map(|&r| internet.population.domain(r)).collect()
            }
            QuerySet::Shuffled { n, seed } => {
                let mut names = internet.population.top(*n);
                // Fisher–Yates with a splitmix stream.
                let mut state = *seed;
                let mut next = || {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                for i in (1..names.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    names.swap(i, j);
                }
                names
            }
            QuerySet::Huque => {
                lookaside_workload::huque45().iter().map(|d| d.name.clone()).collect()
            }
        }
    }
}

/// A full experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Population parameters.
    pub population: PopulationParams,
    /// Names to query.
    pub queries: QuerySet,
    /// Resolver configuration (install-method preset or custom).
    pub resolver: ResolverConfig,
    /// Active remedy.
    pub remedy: RemedyMode,
    /// Capture filter.
    pub capture: CaptureFilter,
    /// Master seed (latency, behavioural probabilities).
    pub seed: u64,
    /// DLV registry NSEC span TTL.
    pub dlv_span_ttl: u32,
    /// DLV registry denial mechanism (NSEC by default; NSEC3 for the §7.3
    /// trade-off experiment).
    pub dlv_denial: lookaside_zone::DenialMode,
}

impl RunConfig {
    /// A correctly configured BIND resolver querying the top-`n` of a small
    /// population — cheap enough for unit tests.
    pub fn quick(n: usize) -> Self {
        RunConfig {
            population: PopulationParams { size: n.max(1000), ..PopulationParams::default() },
            queries: QuerySet::Top(n),
            resolver: ResolverConfig::Bind(BindConfig::correct()),
            remedy: RemedyMode::None,
            capture: CaptureFilter::DlvOnly,
            seed: 1,
            dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
            dlv_denial: lookaside_zone::DenialMode::Nsec,
        }
    }

    /// Top-`n` of the full-size population under the given remedy.
    pub fn for_top(n: usize, remedy: RemedyMode) -> Self {
        RunConfig {
            population: PopulationParams { size: n.max(1000), ..PopulationParams::default() },
            queries: QuerySet::Top(n),
            resolver: ResolverConfig::Bind(BindConfig::correct()),
            remedy,
            capture: CaptureFilter::DlvOnly,
            seed: 1,
            dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
            dlv_denial: lookaside_zone::DenialMode::Nsec,
        }
    }
}

/// Validation-status tallies over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatusTally {
    /// Resolutions ending Secure.
    pub secure: usize,
    /// …of which through DLV (Case 1 utility).
    pub secure_via_dlv: usize,
    /// Insecure.
    pub insecure: usize,
    /// Bogus (stub saw SERVFAIL).
    pub bogus: usize,
    /// Indeterminate.
    pub indeterminate: usize,
    /// Resolution errors (lame servers etc.).
    pub errors: usize,
}

impl StatusTally {
    /// Adds another shard's tallies — all fields are additive counts.
    // lint:sink(determinism)
    pub fn merge(&mut self, other: &StatusTally) {
        self.secure += other.secure;
        self.secure_via_dlv += other.secure_via_dlv;
        self.insecure += other.insecure;
        self.bogus += other.bogus;
        self.indeterminate += other.indeterminate;
        self.errors += other.errors;
    }
}

/// Everything a run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregate upstream traffic.
    pub stats: TrafficStats,
    /// DLV leakage classification.
    pub leakage: LeakageReport,
    /// Resolver-internal counters.
    pub counters: Counters,
    /// Validation statuses.
    pub statuses: StatusTally,
    /// Simulated wall-clock of the run, nanoseconds.
    pub elapsed_ns: u64,
    /// Number of names queried.
    pub queried: usize,
}

/// Executes one run.
pub fn run(config: &RunConfig) -> RunOutcome {
    let limit = config.queries.max_rank().max(1);
    let mut params = InternetParams::for_top(limit, config.population, config.remedy);
    params.dlv_span_ttl = config.dlv_span_ttl;
    params.dlv_denial = config.dlv_denial;
    params.seed = config.seed;
    params.capture = config.capture;
    let mut internet = Internet::build(params);
    let mut resolver = internet.resolver(config.resolver, config.seed ^ 0x5a17);
    let names = config.queries.names(&internet);
    let mut statuses = StatusTally::default();
    for name in &names {
        let result = resolver.resolve(&mut internet.net, name, RrType::A);
        crate::parallel::tally(&mut statuses, &result);
    }
    RunOutcome {
        stats: internet.net.stats().clone(),
        leakage: classify(internet.net.capture(), &internet.dlv_apex),
        counters: resolver.counters,
        statuses,
        elapsed_ns: internet.net.now_ns(),
        queried: names.len(),
    }
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// Table 3: does the secured (huque45) corpus leak to DLV under each
/// install method?
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Install method label (`apt-get`, `apt-get†`, `yum`, `manual`).
    pub method: String,
    /// Whether *fully secured* domains (DS present) were sent to the DLV
    /// server — the paper's "DLV: Yes/No" row.
    pub secured_leaked: bool,
    /// How many of the 5 islands were sent to DLV (always ≥ 1 when DLV is
    /// on; this is expected behaviour, not the Table 3 signal).
    pub islands_to_dlv: usize,
}

/// Runs Table 3 for the given population seed.
pub fn table3(seed: u64) -> Vec<Table3Row> {
    InstallMethod::ALL
        .iter()
        .map(|method| {
            let config = RunConfig {
                population: PopulationParams { size: 1000, ..PopulationParams::default() },
                queries: QuerySet::Huque,
                resolver: ResolverConfig::Bind(method.bind_config()),
                remedy: RemedyMode::None,
                capture: CaptureFilter::DlvOnly,
                seed,
                dlv_span_ttl: lookaside_server::DLV_SPAN_TTL,
                dlv_denial: lookaside_zone::DenialMode::Nsec,
            };
            let outcome = run(&config);
            let corpus = lookaside_workload::huque45();
            let secured_leaked = corpus
                .iter()
                .filter(|d| d.ds_in_parent)
                .any(|d| outcome.leakage.leaked_names.iter().any(|l| *l == d.name));
            let islands_to_dlv = corpus
                .iter()
                .filter(|d| !d.ds_in_parent)
                .filter(|d| {
                    outcome.leakage.leaked_names.iter().any(|l| *l == d.name)
                        || internet_case1_contains(&outcome, &d.name)
                })
                .count();
            Table3Row { method: method.label().to_string(), secured_leaked, islands_to_dlv }
        })
        .collect()
}

fn internet_case1_contains(outcome: &RunOutcome, _name: &Name) -> bool {
    // Case-1 names are not recorded individually; approximate via count.
    outcome.leakage.case1 > 0
}

/// One row of Table 4: query counts by type.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Table4Row {
    /// Dataset size.
    pub n: usize,
    /// A queries.
    pub a: u64,
    /// AAAA queries.
    pub aaaa: u64,
    /// DNSKEY queries.
    pub dnskey: u64,
    /// DS queries.
    pub ds: u64,
    /// NS queries.
    pub ns: u64,
    /// PTR queries.
    pub ptr: u64,
}

impl Table4Row {
    /// The paper's "# Issued Queries" total (sum of the six columns).
    pub fn total(&self) -> u64 {
        self.a + self.aaaa + self.dnskey + self.ds + self.ns + self.ptr
    }
}

/// Runs Table 4 for the given dataset sizes.
pub fn table4(sizes: &[usize], seed: u64) -> Vec<Table4Row> {
    sizes
        .iter()
        .map(|&n| {
            let mut config = RunConfig::for_top(n, RemedyMode::None);
            config.seed = seed;
            config.capture = CaptureFilter::None;
            let outcome = run(&config);
            let s = &outcome.stats;
            Table4Row {
                n,
                a: s.queries_of(RrType::A),
                aaaa: s.queries_of(RrType::Aaaa),
                dnskey: s.queries_of(RrType::Dnskey),
                ds: s.queries_of(RrType::Ds),
                ns: s.queries_of(RrType::Ns),
                ptr: s.queries_of(RrType::Ptr),
            }
        })
        .collect()
}

/// One row of Table 5 / Fig. 10: TXT-remedy overhead on one dataset size.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Table5Row {
    /// Dataset size.
    pub n: usize,
    /// Baseline response time, seconds.
    pub base_seconds: f64,
    /// Added response time, seconds.
    pub overhead_seconds: f64,
    /// Baseline traffic, MB.
    pub base_mb: f64,
    /// Added traffic, MB.
    pub overhead_mb: f64,
    /// Baseline issued queries (six ambient types).
    pub base_queries: u64,
    /// Added queries (TXT probes).
    pub overhead_queries: u64,
}

impl Table5Row {
    /// Latency overhead ratio.
    pub fn time_ratio(&self) -> f64 {
        self.overhead_seconds / self.base_seconds
    }
    /// Traffic overhead ratio.
    pub fn traffic_ratio(&self) -> f64 {
        self.overhead_mb / self.base_mb
    }
    /// Query-count overhead ratio.
    pub fn query_ratio(&self) -> f64 {
        self.overhead_queries as f64 / self.base_queries as f64
    }
}

fn six_type_total(stats: &TrafficStats) -> u64 {
    [RrType::A, RrType::Aaaa, RrType::Dnskey, RrType::Ds, RrType::Ns, RrType::Ptr]
        .iter()
        .map(|&t| stats.queries_of(t))
        .sum()
}

/// Runs Table 5 (and Fig. 10): baseline vs TXT remedy per dataset size.
pub fn table5(sizes: &[usize], seed: u64) -> Vec<Table5Row> {
    sizes
        .iter()
        .map(|&n| {
            let mut base_cfg = RunConfig::for_top(n, RemedyMode::None);
            base_cfg.seed = seed;
            base_cfg.capture = CaptureFilter::None;
            let base = run(&base_cfg);
            let mut txt_cfg = RunConfig::for_top(n, RemedyMode::TxtSignal);
            txt_cfg.seed = seed;
            txt_cfg.capture = CaptureFilter::None;
            let txt = run(&txt_cfg);
            // The paper's §6.2.3 method inserts TXT probes and compares
            // against "DLV alone": the overhead is the TXT-attributable
            // traffic itself (the remedy *also* saves DLV traffic, but that
            // saving is not part of Table 5's accounting).
            Table5Row {
                n,
                base_seconds: base.stats.total_seconds(),
                overhead_seconds: txt.stats.time_of(RrType::Txt) as f64 / 1e9,
                base_mb: base.stats.total_megabytes(),
                overhead_mb: txt.stats.bytes_of(RrType::Txt) as f64 / 1e6,
                base_queries: six_type_total(&base.stats),
                overhead_queries: txt.stats.queries_of(RrType::Txt),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

/// One point of Figs. 8–9.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LeakPoint {
    /// Number of domains queried.
    pub n: usize,
    /// DLV queries observed (Fig. 8).
    pub dlv_queries: usize,
    /// Distinct leaked domains.
    pub leaked_domains: usize,
    /// Proportion of queried domains leaked (Fig. 9).
    pub proportion: f64,
    /// DLV lookups suppressed by aggressive negative caching.
    pub suppressed: u64,
}

/// Runs the Fig. 8 / Fig. 9 sweep on the session executor (`--jobs` /
/// `LOOKASIDE_JOBS`), streaming when `LOOKASIDE_STREAM` is set.
pub fn fig8_9(sizes: &[usize], seed: u64) -> Vec<LeakPoint> {
    if crate::stream::ExecMode::from_env().is_stream() {
        crate::stream::fig8_9_stream(&crate::parallel::executor(), sizes, seed)
    } else {
        fig8_9_with(&crate::parallel::executor(), sizes, seed)
    }
}

/// [`fig8_9`] on an explicit executor. Each dataset size is one shard — a
/// full cold-cache run, exactly as the serial sweep performed them — so
/// the reduced point list is identical for every worker count.
pub fn fig8_9_with(exec: &Executor, sizes: &[usize], seed: u64) -> Vec<LeakPoint> {
    let shards = ShardPlan::new(seed).over(sizes.iter().copied());
    expect_all(exec.run(&shards, |shard| {
        let n = shard.input;
        let mut config = RunConfig::for_top(n, RemedyMode::None);
        config.seed = seed;
        let outcome = run(&config);
        LeakPoint {
            n,
            dlv_queries: outcome.leakage.dlv_queries,
            leaked_domains: count_leaked_ranked(&outcome),
            proportion: count_leaked_ranked(&outcome) as f64 / n as f64,
            suppressed: outcome.counters.dlv_suppressed_by_nsec,
        }
    }))
}

/// Distinct leaked *ranked domains* (TLD-level strip leaks and hoster-zone
/// leaks excluded), matching the paper's "leaked domains" notion.
pub(crate) fn count_leaked_ranked(outcome: &RunOutcome) -> usize {
    outcome
        .leakage
        .leaked_names
        .iter()
        .filter(|name| {
            name.label_count() == 2 && {
                let sld = name.label(0).to_string();
                sld.len() == 8 && sld.starts_with('d')
            }
        })
        .count()
}

/// §5.1 "order matters": leaked percentage for each shuffle seed.
pub fn order_matters(n: usize, shuffle_seeds: &[u64], seed: u64) -> Vec<(u64, f64)> {
    shuffle_seeds
        .iter()
        .map(|&shuffle| {
            let mut config = RunConfig::for_top(n, RemedyMode::None);
            config.seed = seed;
            config.queries = QuerySet::Shuffled { n, seed: shuffle };
            // A finite span TTL lets order interact with expiry, the way
            // the paper's live runs did.
            config.dlv_span_ttl = 30;
            let outcome = run(&config);
            (shuffle, count_leaked_ranked(&outcome) as f64 / n as f64)
        })
        .collect()
}

/// §5.3 validation utility: run under the §5.2 misconfiguration so every
/// domain consults DLV, then measure what fraction of DLV queries the
/// registry could answer.
pub fn utility(n: usize, seed: u64) -> LeakageReport {
    let mut config = RunConfig::for_top(n, RemedyMode::None);
    config.seed = seed;
    config.resolver = ResolverConfig::Bind(InstallMethod::AptGetCompliant.bind_config());
    run(&config).leakage
}

/// One bar group of Fig. 11: totals per remedy.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// Remedy label.
    pub remedy: String,
    /// Total response time, seconds.
    pub seconds: f64,
    /// Total traffic, MB.
    pub megabytes: f64,
    /// Total issued queries.
    pub queries: u64,
    /// Case-2 leaks remaining.
    pub leaks: usize,
}

/// Runs the Fig. 11 comparison (standard DLV vs TXT vs Z-bit; hashed DLV
/// included as the §6.2.2 extension).
pub fn fig11(n: usize, seed: u64) -> Vec<Fig11Row> {
    [RemedyMode::None, RemedyMode::TxtSignal, RemedyMode::ZBit, RemedyMode::HashedDlv]
        .iter()
        .map(|&remedy| {
            let mut config = RunConfig::for_top(n, remedy);
            config.seed = seed;
            let outcome = run(&config);
            Fig11Row {
                remedy: remedy.label().to_string(),
                seconds: outcome.stats.total_seconds(),
                megabytes: outcome.stats.total_megabytes(),
                queries: outcome.stats.total_queries(),
                leaks: outcome.leakage.case2,
            }
        })
        .collect()
}

/// Per-TLD leakage (mechanism slice: a broken link at the TLD dooms every
/// child).
#[derive(Debug, Clone, Serialize)]
pub struct TldBreakdownRow {
    /// TLD label.
    pub tld: &'static str,
    /// Whether the TLD zone is signed.
    pub tld_signed: bool,
    /// Queried domains under this TLD.
    pub domains: usize,
    /// How many of them leaked to the registry.
    pub leaked: usize,
    /// Fully-secured children (signed + DS) under this TLD that leaked —
    /// nonzero only where the TLD itself is unsigned.
    pub secure_children_leaked: usize,
}

impl TldBreakdownRow {
    /// Leak fraction for this TLD.
    pub fn fraction(&self) -> f64 {
        if self.domains == 0 {
            return 0.0;
        }
        self.leaked as f64 / self.domains as f64
    }
}

/// Slices the top-`n` leakage per TLD. Under a *signed* TLD only unsigned
/// children and islands leak; under an *unsigned* TLD the chain of trust
/// breaks at the TLD, so even children with DS records go to the DLV
/// server — the island-of-security mechanism of §2.3 acting one level up.
pub fn tld_breakdown(n: usize, seed: u64) -> Vec<TldBreakdownRow> {
    let mut config = RunConfig::for_top(n, RemedyMode::None);
    config.seed = seed;
    let limit = n.max(1);
    let population = lookaside_workload::DomainPopulation::new(config.population);
    let outcome = run(&config);
    lookaside_workload::TLDS
        .iter()
        .map(|tld| {
            let mut domains = 0usize;
            let mut leaked = 0usize;
            let mut secure_children_leaked = 0usize;
            for rank in 1..=limit {
                let attrs = population.attributes(rank);
                if attrs.tld != tld.label {
                    continue;
                }
                domains += 1;
                if outcome.leakage.leaked_names.contains(&attrs.name) {
                    leaked += 1;
                    if attrs.signed && attrs.ds_in_parent {
                        secure_children_leaked += 1;
                    }
                }
            }
            TldBreakdownRow {
                tld: tld.label,
                tld_signed: tld.signed,
                domains,
                leaked,
                secure_children_leaked,
            }
        })
        .collect()
}

/// One vantage point's results (§7.1 "Experiment Generality").
#[derive(Debug, Clone, Serialize)]
pub struct VantageRow {
    /// Vantage label.
    pub vantage: String,
    /// Case-2 leaks observed.
    pub leaks: usize,
    /// Distinct leaked names.
    pub distinct_leaked: usize,
    /// Total simulated response time, seconds.
    pub seconds: f64,
}

/// §7.1: the paper ran from a campus network and from DigitalOcean/EC2 and
/// found "results among different platforms remain the same". Runs the same
/// workload from each vantage (only the latency profile differs) and
/// returns the leakage per vantage — identical by construction of the
/// mechanism, which is the point being verified.
pub fn vantage_sweep(n: usize, seed: u64) -> Vec<VantageRow> {
    vantage_sweep_with(&crate::parallel::executor(), n, seed)
}

/// [`vantage_sweep`] on an explicit executor: one shard per vantage, each
/// building its own Internet replica with that vantage's latency profile.
pub fn vantage_sweep_with(exec: &Executor, n: usize, seed: u64) -> Vec<VantageRow> {
    let shards = ShardPlan::new(seed).over(crate::internet::VantagePoint::ALL);
    expect_all(exec.run(&shards, |shard| {
        let vantage = shard.input;
        let population = PopulationParams { size: n.max(1000), ..PopulationParams::default() };
        let mut params = InternetParams::for_top(n, population, RemedyMode::None);
        params.seed = seed;
        params.vantage = vantage;
        let mut internet = Internet::build(params);
        let mut resolver =
            internet.resolver(ResolverConfig::Bind(BindConfig::correct()), seed ^ 0x7a);
        for rank in 1..=n {
            let qname = internet.population.domain(rank);
            let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
        }
        let leakage = classify(internet.net.capture(), &internet.dlv_apex);
        VantageRow {
            vantage: vantage.label().to_string(),
            leaks: leakage.case2,
            distinct_leaked: leakage.distinct_leaked(),
            seconds: internet.net.stats().total_seconds(),
        }
    }))
}

/// One side of the §7.3 NSEC-vs-NSEC3 trade-off.
#[derive(Debug, Clone, Serialize)]
pub struct Nsec3TradeoffRow {
    /// Denial mechanism label.
    pub denial: String,
    /// DLV queries that reached the registry.
    pub dlv_queries: usize,
    /// Lookups suppressed by aggressive negative caching.
    pub suppressed: u64,
    /// Case-2 leaks.
    pub leaks: usize,
}

/// §7.3: an NSEC3 DLV registry resists zone enumeration but its denials
/// cannot be aggressively cached (RFC 5074 §5 permits that only for NSEC),
/// so "every query to the resolver would trigger a query to the DLV
/// server". Runs the same workload against both registry flavours.
pub fn nsec3_tradeoff(n: usize, seed: u64) -> Vec<Nsec3TradeoffRow> {
    [lookaside_zone::DenialMode::Nsec, lookaside_zone::DenialMode::Nsec3]
        .iter()
        .map(|&denial| {
            let mut config = RunConfig::for_top(n, RemedyMode::None);
            config.seed = seed;
            config.dlv_denial = denial;
            let outcome = run(&config);
            Nsec3TradeoffRow {
                denial: format!("{denial:?}"),
                dlv_queries: outcome.leakage.dlv_queries,
                suppressed: outcome.counters.dlv_suppressed_by_nsec,
                leaks: outcome.leakage.case2,
            }
        })
        .collect()
}

/// Per-party name exposure with and without QNAME minimisation (an RFC
/// 7816 extension of the §3 threat model).
#[derive(Debug, Clone, Serialize)]
pub struct ExposureRow {
    /// Whether minimisation was on.
    pub minimized: bool,
    /// Full (SLD-or-deeper) query names the root observed.
    pub root_full_names: usize,
    /// Sub-SLD (three-or-more-label) query names TLD servers observed —
    /// host names inside zones, which a TLD has no business seeing.
    pub tld_full_names: usize,
    /// Full names the DLV registry observed (Case-2 leaks) — unchanged by
    /// minimisation, which is the point.
    pub dlv_leaks: usize,
}

/// Measures how much of the query stream each uninvolved-ish party sees,
/// with QNAME minimisation off and on. Minimisation protects the on-path
/// upper servers of §3's threat model but does nothing about DLV leakage.
pub fn qmin_exposure(n: usize, seed: u64) -> Vec<ExposureRow> {
    use lookaside_resolver::FeatureModel;

    [false, true]
        .iter()
        .map(|&minimized| {
            let population = PopulationParams { size: n.max(1000), ..PopulationParams::default() };
            let mut params = InternetParams::for_top(n, population, RemedyMode::None);
            params.seed = seed;
            params.capture = CaptureFilter::All;
            let mut internet = Internet::build(params);
            let features =
                FeatureModel { qname_minimization: minimized, ..FeatureModel::default() };
            let mut resolver = internet.resolver_with_features(
                ResolverConfig::Bind(BindConfig::correct()),
                features,
                seed ^ 0x9,
            );
            for rank in 1..=n {
                let qname = internet.population.domain(rank);
                let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
            }
            let mut root_full = std::collections::BTreeSet::new();
            let mut tld_full = std::collections::BTreeSet::new();
            for p in internet.net.capture().packets() {
                if p.direction != lookaside_netsim::Direction::Query
                    || !matches!(p.qtype, RrType::A | RrType::Ns | RrType::Aaaa)
                    || p.qname.label_count() < 2
                {
                    continue;
                }
                if p.dst == crate::internet::ROOT_ADDR {
                    root_full.insert(p.qname.clone());
                } else if p.qname.label_count() >= 3
                    && internet
                        .net
                        .label_of(p.dst)
                        .is_some_and(|l| lookaside_workload::TLDS.iter().any(|t| t.label == l))
                {
                    tld_full.insert(p.qname.clone());
                }
            }
            let leakage = classify(internet.net.capture(), &internet.dlv_apex);
            ExposureRow {
                minimized,
                root_full_names: root_full.len(),
                tld_full_names: tld_full.len(),
                dlv_leaks: leakage.case2,
            }
        })
        .collect()
}

/// One point of the §7.1 deployment sweep: leakage as a function of how
/// many zones actually deposit DLV records.
#[derive(Debug, Clone, Serialize)]
pub struct DeploymentPoint {
    /// Per-mille of islands that deposited a record.
    pub deposited_given_island_milli: u16,
    /// Case-1 (useful) DLV answers.
    pub case1: usize,
    /// Case-2 leaks.
    pub case2: usize,
    /// Leak fraction of DLV queries.
    pub leak_fraction: f64,
}

/// §7.1 "Impact of DLV Increased Deployment": the paper argues the findings
/// become less significant as more domains are populated in the registry.
/// Sweeps the deposit density and measures the leak fraction.
pub fn deployment_sweep(n: usize, densities_milli: &[u16], seed: u64) -> Vec<DeploymentPoint> {
    deployment_sweep_with(&crate::parallel::executor(), n, densities_milli, seed)
}

/// [`deployment_sweep`] on an explicit executor: one shard per density.
pub fn deployment_sweep_with(
    exec: &Executor,
    n: usize,
    densities_milli: &[u16],
    seed: u64,
) -> Vec<DeploymentPoint> {
    let shards = ShardPlan::new(seed).over(densities_milli.iter().copied());
    expect_all(exec.run(&shards, |shard| {
        let density = shard.input;
        let mut config = RunConfig::for_top(n, RemedyMode::None);
        config.seed = seed;
        config.population.deposited_given_island_milli = density;
        let outcome = run(&config);
        DeploymentPoint {
            deposited_given_island_milli: density,
            case1: outcome.leakage.case1,
            case2: outcome.leakage.case2,
            leak_fraction: outcome.leakage.leak_fraction(),
        }
    }))
}

/// Results of replaying a repeat-heavy query trace through the *real*
/// resolver — the cross-check for Fig. 12's analytic cache model.
#[derive(Debug, Clone, Serialize)]
pub struct TraceReplayRow {
    /// Remedy in force.
    pub remedy: String,
    /// Stub queries replayed.
    pub stub_queries: usize,
    /// Distinct domains among them.
    pub distinct_domains: usize,
    /// Upstream queries the resolver issued.
    pub upstream_queries: u64,
    /// Upstream queries per stub query (cache efficiency).
    pub upstream_per_query: f64,
    /// TXT probes issued (TxtSignal remedy only).
    pub txt_probes: u64,
}

/// Replays `draws` Zipf-distributed stub queries over the top-`support`
/// domains through the full resolver, with and without the TXT remedy.
/// Validates the cache assumptions behind [`fig12`]: upstream traffic and
/// TXT probes are driven by *distinct* domains, not query volume.
pub fn trace_replay(draws: usize, support: usize, seed: u64) -> Vec<TraceReplayRow> {
    [RemedyMode::None, RemedyMode::TxtSignal]
        .iter()
        .map(|&remedy| {
            let population =
                PopulationParams { size: support.max(1000), ..PopulationParams::default() };
            let mut params = InternetParams::for_top(support, population, remedy);
            params.seed = seed;
            params.capture = CaptureFilter::None;
            let mut internet = Internet::build(params);
            let mut resolver =
                internet.resolver(ResolverConfig::Bind(BindConfig::correct()), seed ^ 0x77);
            let zipf = Zipf::new(support, 0.9);
            let mut state = seed ^ 0x7ace;
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut distinct = std::collections::BTreeSet::new();
            for _ in 0..draws {
                let rank = zipf.sample_hash(next());
                distinct.insert(rank);
                let qname = internet.population.domain(rank);
                let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
            }
            let stats = internet.net.stats();
            TraceReplayRow {
                remedy: remedy.label().to_string(),
                stub_queries: draws,
                distinct_domains: distinct.len(),
                upstream_queries: stats.total_queries(),
                upstream_per_query: stats.total_queries() as f64 / draws as f64,
                txt_probes: stats.queries_of(RrType::Txt),
            }
        })
        .collect()
}

/// Fig. 12 data: the DITL trace and the modelled TXT-signaling overhead.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Data {
    /// Queries per minute (Fig. 12a).
    pub per_minute: Vec<u64>,
    /// Cumulative queries (Fig. 12b).
    pub cumulative_queries: Vec<u64>,
    /// Cumulative baseline bytes at the recursive (Fig. 12c).
    pub cumulative_baseline_bytes: Vec<u64>,
    /// Cumulative TXT-signaling overhead bytes (Fig. 12c).
    pub cumulative_overhead_bytes: Vec<u64>,
    /// Mean added bandwidth, Mbit/s.
    pub overhead_mbps: f64,
}

/// Builds Fig. 12 from a generated DITL trace.
///
/// Per-query byte costs are *measured* from a calibration run of the full
/// simulator; the trace is then aggregated analytically (92.7M queries are
/// not resolved one by one — the paper's own Fig. 12 likewise replays
/// aggregate volumes). `scale` divides the trace volume for cheap test
/// runs; use 1 for the full figure.
pub fn fig12(seed: u64, scale: u64) -> Fig12Data {
    if crate::stream::ExecMode::from_env().is_stream() {
        crate::stream::fig12_stream(&crate::parallel::executor(), seed, scale)
    } else {
        fig12_with(&crate::parallel::executor(), seed, scale)
    }
}

/// [`fig12`] on an explicit executor.
///
/// Parallel decomposition: the cache model resets its TTL window every 60
/// minutes, so the 420-minute trace is seven *independent* windows. Each
/// window is one shard with its own splitmix draw stream (seeded from the
/// shard seed), simulated in isolation; reduction concatenates the
/// windows in shard order and prefix-sums the cumulative series — the
/// same totals at any worker count. The two calibration runs (baseline
/// and TXT remedy) are likewise independent shards.
pub fn fig12_with(exec: &Executor, seed: u64, scale: u64) -> Fig12Data {
    assert!(scale >= 1);
    let trace = DitlTrace::generate(seed);

    // Calibration: measure average upstream bytes per cold resolution and
    // per TXT probe from a small real run of each configuration.
    let calib = ShardPlan::new(seed ^ 0xca11b).over([RemedyMode::None, RemedyMode::TxtSignal]);
    let calibrated = expect_all(exec.run(&calib, |shard| {
        let mut cfg = RunConfig::quick(60);
        cfg.remedy = shard.input;
        cfg.capture = CaptureFilter::None;
        run(&cfg)
    }));
    let (base, txt) = (&calibrated[0], &calibrated[1]);
    let cold_bytes_per_resolution = base.stats.total_bytes() as f64 / base.queried as f64;
    let txt_probes = txt.stats.queries_of(RrType::Txt).max(1);
    let txt_bytes_per_probe = txt.stats.bytes_of(RrType::Txt) as f64 / txt_probes as f64;
    // Stub-side cost of answering one query (query + typical answer).
    let stub_bytes_per_query = 130.0;

    // Cache model over the trace: domains drawn Zipf over 2M; a cache
    // miss pays the cold upstream cost and (with the remedy) one TXT
    // probe. The exponent is calibrated so the full-scale (scale = 1) run
    // lands near the paper's ≈1.2 GB / 0.38 Mbps signaling overhead;
    // sampled runs (scale > 1) overstate the miss rate and are for
    // smoke-testing only.
    let windows: Vec<Vec<u64>> =
        trace.per_minute().chunks(60).map(|chunk| chunk.to_vec()).collect();
    let shards = ShardPlan::new(seed ^ 0xd17f).over(windows);
    let per_window = expect_all(exec.run(&shards, |shard| {
        let zipf = Zipf::new(2_000_000, 0.92);
        let mut seen = vec![false; zipf.n() + 1];
        let mut rng_state = shard.seed;
        let mut next = || {
            rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = rng_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut minutes = Vec::with_capacity(shard.input.len());
        for &volume in &shard.input {
            let sampled = volume / scale;
            let mut misses = 0u64;
            for _ in 0..sampled {
                let domain = zipf.sample_hash(next());
                if !seen[domain] {
                    seen[domain] = true;
                    misses += 1;
                }
            }
            let scaled_misses = misses * scale;
            let base_bytes = (volume as f64 * stub_bytes_per_query) as u64
                + (scaled_misses as f64 * cold_bytes_per_resolution) as u64;
            let overhead_bytes = (scaled_misses as f64 * txt_bytes_per_probe) as u64;
            minutes.push((volume, base_bytes, overhead_bytes));
        }
        minutes
    }));

    // Reduce in window order: concatenate, then prefix-sum.
    let mut cum_q = 0u64;
    let mut cum_base = 0u64;
    let mut cum_overhead = 0u64;
    let mut cumulative_queries = Vec::with_capacity(trace.per_minute().len());
    let mut cumulative_baseline_bytes = Vec::with_capacity(trace.per_minute().len());
    let mut cumulative_overhead_bytes = Vec::with_capacity(trace.per_minute().len());
    for (volume, base_bytes, overhead_bytes) in per_window.into_iter().flatten() {
        cum_q += volume;
        cum_base += base_bytes;
        cum_overhead += overhead_bytes;
        cumulative_queries.push(cum_q);
        cumulative_baseline_bytes.push(cum_base);
        cumulative_overhead_bytes.push(cum_overhead);
    }
    let overhead_mbps =
        *cumulative_overhead_bytes.last().unwrap() as f64 * 8.0 / (420.0 * 60.0) / 1e6;
    Fig12Data {
        per_minute: trace.per_minute().to_vec(),
        cumulative_queries,
        cumulative_baseline_bytes,
        cumulative_overhead_bytes,
        overhead_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_leaks_and_accounts() {
        let outcome = run(&RunConfig::quick(40));
        assert_eq!(outcome.queried, 40);
        assert!(outcome.leakage.case2 > 0, "popular domains leak");
        assert!(outcome.stats.total_queries() > 40, "ambient traffic present");
        assert!(outcome.elapsed_ns > 0);
        assert_eq!(
            outcome.statuses.secure
                + outcome.statuses.insecure
                + outcome.statuses.bogus
                + outcome.statuses.indeterminate
                + outcome.statuses.errors,
            40
        );
        assert_eq!(outcome.statuses.errors, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&RunConfig::quick(25));
        let b = run(&RunConfig::quick(25));
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.leakage, b.leakage);
    }

    #[test]
    fn table3_matches_paper_pattern() {
        let rows = table3(3);
        let flags: Vec<(String, bool)> =
            rows.iter().map(|r| (r.method.clone(), r.secured_leaked)).collect();
        assert_eq!(flags[0], ("apt-get".to_string(), false));
        assert!(flags[1].1, "apt-get† leaks secured domains");
        assert_eq!(flags[2], ("yum".to_string(), false));
        assert!(flags[3].1, "manual leaks secured domains");
        // Islands go to DLV even under correct configs (§5.2's 5 domains).
        assert!(rows[2].islands_to_dlv >= 1);
    }

    #[test]
    fn table4_counts_grow_with_n() {
        let rows = table4(&[30, 120], 5);
        assert!(rows[1].a > rows[0].a);
        assert!(rows[1].ds > rows[0].ds);
        assert!(rows[0].total() > 0);
    }

    #[test]
    fn table5_overheads_are_positive_and_modest() {
        let rows = table5(&[60], 7);
        let row = &rows[0];
        assert!(row.overhead_queries >= 60, "≈1 TXT probe per domain");
        assert!(row.query_ratio() > 0.05 && row.query_ratio() < 0.4, "{}", row.query_ratio());
        assert!(row.traffic_ratio() > 0.0 && row.traffic_ratio() < 0.3);
        assert!(row.time_ratio() > 0.0 && row.time_ratio() < 0.5);
    }

    #[test]
    fn fig8_9_proportion_decays() {
        let points = fig8_9(&[50, 400], 11);
        assert!(points[0].proportion > points[1].proportion, "{points:?}");
        assert!(points[1].dlv_queries > points[0].dlv_queries);
    }

    #[test]
    fn utility_is_mostly_leakage() {
        let report = utility(150, 13);
        assert!(report.leak_fraction() > 0.9, "leak fraction {}", report.leak_fraction());
        // Aggressive negative caching still suppresses repeats, so the wire
        // sees fewer queries than domains — but a large fraction gets out.
        assert!(report.dlv_queries >= 75, "got {}", report.dlv_queries);
    }

    #[test]
    fn fig11_remedies_eliminate_leaks() {
        let rows = fig11(80, 17);
        let by_label = |l: &str| rows.iter().find(|r| r.remedy == l).unwrap();
        assert!(by_label("DLV").leaks > 0);
        assert_eq!(by_label("TXT").leaks, 0);
        assert_eq!(by_label("Z-bit").leaks, 0);
        // TXT costs more queries than Z-bit, which is ≈ the baseline.
        assert!(by_label("TXT").queries > by_label("Z-bit").queries);
        // Hashed DLV still leaks *queries* but only digests.
        assert!(by_label("hashed-DLV").leaks > 0);
    }

    #[test]
    fn fig12_shapes_hold() {
        let data = fig12(23, 2000);
        assert_eq!(data.per_minute.len(), lookaside_workload::DITL_MINUTES);
        assert_eq!(
            *data.cumulative_queries.last().unwrap(),
            lookaside_workload::DITL_TOTAL_QUERIES
        );
        let base = *data.cumulative_baseline_bytes.last().unwrap();
        let over = *data.cumulative_overhead_bytes.last().unwrap();
        assert!(over > 0);
        assert!(over < base / 5, "overhead {over} must be small vs baseline {base}");
        assert!(data.overhead_mbps > 0.01 && data.overhead_mbps < 10.0);
    }

    #[test]
    fn qmin_protects_upper_servers_but_not_dlv() {
        let rows = qmin_exposure(40, 37);
        let off = &rows[0];
        let on = &rows[1];
        assert!(!off.minimized && on.minimized);
        // The root is consulted once per uncached TLD, so its exposure is a
        // handful of names even without minimisation — but strictly more
        // than the zero qmin leaves it.
        assert!(off.root_full_names >= 3, "without qmin the root sees names ({off:?})");
        assert_eq!(on.root_full_names, 0, "qmin hides full names from the root");
        assert!(off.tld_full_names > 0, "without qmin TLDs see host names ({off:?})");
        assert_eq!(on.tld_full_names, 0, "qmin keeps sub-SLD names from TLDs");
        // DLV leakage is untouched: the look-aside query *is* the name.
        assert!(on.dlv_leaks > 0);
        assert_eq!(on.dlv_leaks, off.dlv_leaks);
    }

    #[test]
    fn deployment_sweep_improves_utility() {
        let points = deployment_sweep(150, &[0, 300, 1000], 39);
        assert_eq!(points[0].case1, 0, "no deposits, no utility");
        assert!(points[2].case1 > points[1].case1);
        assert!(
            points[2].leak_fraction < points[0].leak_fraction,
            "more deployment, smaller leak share"
        );
    }

    #[test]
    fn unsigned_tlds_leak_even_their_secure_children() {
        let rows = tld_breakdown(600, 49);
        let signed_total: usize =
            rows.iter().filter(|r| r.tld_signed).map(|r| r.secure_children_leaked).sum();
        assert_eq!(signed_total, 0, "secure children under signed TLDs never leak");
        // No TLD is spared: every TLD with a meaningful sample shows leaks
        // (under unsigned TLDs, *no* child can be secure — the population
        // model never grants a DS through an unsigned parent, which is the
        // chain-break-at-the-TLD mechanism expressed structurally).
        for row in rows.iter().filter(|r| r.domains > 5) {
            assert!(row.leaked > 0, "tld {} leaked nothing: {row:?}", row.tld);
        }
        let com = rows.iter().find(|r| r.tld == "com").unwrap();
        assert!(com.domains > 200, "com dominates the sample");
    }

    #[test]
    fn trace_replay_scales_with_distinct_not_volume() {
        let rows = trace_replay(400, 80, 47);
        let base = &rows[0];
        let txt = &rows[1];
        assert!(base.distinct_domains < base.stub_queries, "zipf repeats domains");
        // Cache efficiency: far fewer upstream queries than a cold resolve
        // per stub query would cost (~8).
        assert!(base.upstream_per_query < 4.0, "upstream per query {}", base.upstream_per_query);
        // TXT probes track distinct zones (domains + their hosters + TLD
        // probes), not the 400 stub queries.
        assert!(txt.txt_probes >= base.distinct_domains as u64);
        assert!(
            txt.txt_probes < base.stub_queries as u64,
            "probes {} must stay below stub volume",
            txt.txt_probes
        );
    }

    #[test]
    fn leakage_is_vantage_independent() {
        let rows = vantage_sweep(60, 43);
        assert_eq!(rows.len(), 3);
        // §7.1: identical findings across vantage points…
        assert!(rows.windows(2).all(|w| w[0].leaks == w[1].leaks));
        assert!(rows.windows(2).all(|w| w[0].distinct_leaked == w[1].distinct_leaked));
        // …even though the latency profiles genuinely differ.
        assert!(rows.windows(2).any(|w| (w[0].seconds - w[1].seconds).abs() > 0.01));
    }

    #[test]
    fn nsec3_registry_leaks_more_than_nsec() {
        let rows = nsec3_tradeoff(120, 29);
        let nsec = &rows[0];
        let nsec3 = &rows[1];
        assert!(nsec.suppressed > 0, "NSEC spans suppress lookups");
        assert_eq!(nsec3.suppressed, 0, "NSEC3 denials are not cacheable");
        assert!(
            nsec3.dlv_queries > nsec.dlv_queries,
            "NSEC3 must leak more ({} vs {})",
            nsec3.dlv_queries,
            nsec.dlv_queries
        );
    }

    #[test]
    fn order_matters_runs_all_seeds() {
        let results = order_matters(60, &[1, 2, 3], 19);
        assert_eq!(results.len(), 3);
        for (_, prop) in &results {
            assert!(*prop > 0.0 && *prop <= 1.0);
        }
    }
}
