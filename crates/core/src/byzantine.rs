//! The Byzantine data-plane sweep: wrong answers, not just lost ones.
//!
//! The chaos harness ([`crate::chaos`]) degrades the DLV path with loss
//! and blackholes; this module completes the threat model with *Byzantine*
//! faults — in-flight corruption, forced truncation, off-path spoofed
//! responses — and with the registry's actual end of life (the 2015–2017
//! `dlv.isc.org` decommission), each stage of which is a different kind of
//! wrong answer ([`DecommissionStage`]).
//!
//! Each adversary is crossed with a resolver hardening profile:
//!
//! * **off** — the 2016-era subject resolvers of the paper: no RFC 5452
//!   transaction checks beyond what the simulator always did, no BAD
//!   cache, no serve-stale,
//! * **full** — RFC 5452 qid/source checks, the RFC 4035 §4.7 bounded BAD
//!   cache, and RFC 8767 serve-stale.
//!
//! The sweep reports, per cell, the privacy metric the paper cares about
//! (DLV query packets leaked per client query — Byzantine faults trigger
//! retries and TCP fallbacks, each a fresh leak) next to the robustness
//! metrics the hardening ladder trades on: answer availability, how often
//! validation concluded `Secure` via DLV, stale serves, BAD-cache hits,
//! and how many forgeries were accepted versus discarded.
//!
//! Everything is a pure function of the configured seed; the sweep runs on
//! the sharded executor and is byte-identical for every `--jobs` value.

use lookaside_netsim::{CaptureFilter, Direction, LinkFaults};
use lookaside_resolver::{
    BindConfig, FeatureModel, Hardening, Lookaside, ResolverConfig, RetryPolicy, SecurityStatus,
};
use lookaside_server::DecommissionStage;
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::{Rcode, RrType};
use lookaside_workload::PopulationParams;
use serde::Serialize;

use crate::internet::{Internet, InternetParams, DLV_ADDR};

/// One adversary model applied to the DLV path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Adversary {
    /// Healthy populated registry, look-aside enabled — the reference.
    Baseline,
    /// Control cell: look-aside disabled entirely (`dnssec-lookaside no`).
    /// Whatever availability this cell achieves, a hardened resolver under
    /// registry decommission must not do worse.
    NoDlv,
    /// Seeded bit-flip corruption of DLV-link UDP payloads, per-mille.
    Corrupt(u16),
    /// Forced truncation (TC=1, clipped answers) on the DLV link,
    /// per-mille; every hit provokes a TCP retry.
    Truncate(u16),
    /// Off-path spoofed responses racing the genuine answer on the DLV
    /// link, per-mille (wrong qid and/or wrong source address).
    Spoof(u16),
    /// The registry itself misbehaves: one stage of the decommission
    /// timeline or its failure variants.
    Decommission(DecommissionStage),
}

impl Adversary {
    /// Human-readable label (stable: the `--jobs` diff gate compares it).
    pub fn label(self) -> String {
        match self {
            Adversary::Baseline => "baseline".to_string(),
            Adversary::NoDlv => "no-dlv".to_string(),
            Adversary::Corrupt(milli) => format!("corrupt {:.0}%", f64::from(milli) / 10.0),
            Adversary::Truncate(milli) => format!("truncate {:.0}%", f64::from(milli) / 10.0),
            Adversary::Spoof(milli) => format!("spoof {:.0}%", f64::from(milli) / 10.0),
            Adversary::Decommission(stage) => match stage {
                DecommissionStage::Populated => "decomm:populated".to_string(),
                DecommissionStage::Emptied => "decomm:emptied".to_string(),
                DecommissionStage::NxDomainAll => "decomm:nxdomain".to_string(),
                DecommissionStage::ServFailAll => "decomm:servfail".to_string(),
                DecommissionStage::BogusSignatures => "decomm:bogus-sigs".to_string(),
                DecommissionStage::Offline => "decomm:offline".to_string(),
            },
        }
    }
}

/// Resolver hardening profile under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum HardeningProfile {
    /// All defences off ([`Hardening::off`]) — the paper's subjects.
    Off,
    /// All defences on ([`Hardening::full`]).
    Full,
}

impl HardeningProfile {
    /// Both profiles, weakest first.
    pub const ALL: [HardeningProfile; 2] = [HardeningProfile::Off, HardeningProfile::Full];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            HardeningProfile::Off => "off",
            HardeningProfile::Full => "full",
        }
    }

    /// The hardening flags this profile selects.
    pub fn hardening(self) -> Hardening {
        match self {
            HardeningProfile::Off => Hardening::off(),
            HardeningProfile::Full => Hardening::full(),
        }
    }
}

/// Configuration of one Byzantine sweep.
#[derive(Debug, Clone)]
pub struct ByzantineConfig {
    /// Client queries measured per cell (fresh, previously-unseen names).
    pub queries: usize,
    /// Warm-up queries resolved first so root/TLD delegations and zone
    /// keys are cached; data-plane faults are installed only afterwards.
    pub warmup: usize,
    /// Master seed: faults, latency, and workload all derive from it.
    pub seed: u64,
    /// Adversaries to sweep.
    pub adversaries: Vec<Adversary>,
    /// Hardening profiles to cross with each adversary.
    pub profiles: Vec<HardeningProfile>,
}

impl ByzantineConfig {
    /// The canonical adversary ladder crossed with both profiles.
    pub fn quick(queries: usize) -> Self {
        ByzantineConfig {
            queries,
            warmup: 8,
            seed: 0xb1_2a17,
            adversaries: vec![
                Adversary::Baseline,
                Adversary::NoDlv,
                Adversary::Corrupt(400),
                Adversary::Truncate(400),
                Adversary::Spoof(400),
                Adversary::Decommission(DecommissionStage::Emptied),
                Adversary::Decommission(DecommissionStage::NxDomainAll),
                Adversary::Decommission(DecommissionStage::ServFailAll),
                Adversary::Decommission(DecommissionStage::BogusSignatures),
                Adversary::Decommission(DecommissionStage::Offline),
            ],
            profiles: HardeningProfile::ALL.to_vec(),
        }
    }
}

/// One cell of the sweep: an adversary crossed with a hardening profile.
#[derive(Debug, Clone, Serialize)]
pub struct ByzantinePoint {
    /// Adversary in force.
    pub adversary: Adversary,
    /// Hardening profile in force.
    pub profile: HardeningProfile,
    /// Client queries measured.
    pub client_queries: usize,
    /// DLV query packets on the wire (retransmissions and TCP retries
    /// included — every transmission exposes the name again).
    pub dlv_packets: usize,
    /// Leaked DLV query packets per client query.
    pub dlv_per_query: f64,
    /// Client queries that produced a usable answer (NOERROR with data).
    pub answered: usize,
    /// `answered / client_queries` — the availability metric.
    pub availability: f64,
    /// Resolutions that concluded `Secure` *via the DLV chain*. Must be
    /// zero whenever the registry serves bogus signatures or forged data.
    pub dlv_secure: usize,
    /// Expired answers served under RFC 8767.
    pub stale_serves: u64,
    /// `stale_serves / client_queries`.
    pub stale_rate: f64,
    /// Lookups answered SERVFAIL straight from the RFC 4035 §4.7 BAD
    /// cache (no wire traffic).
    pub bad_cache_hits: u64,
    /// Validation failures observed.
    pub bogus: u64,
    /// Off-path forgeries accepted as the answer (unhardened resolvers).
    pub spoofs_accepted: u64,
    /// Off-path forgeries discarded by qid/source checks.
    pub spoofs_discarded: u64,
    /// Responses that failed to decode and were retried.
    pub malformed_retries: u64,
    /// Responses truncated in flight by the fault plane.
    pub forced_truncations: u64,
    /// Retransmitted queries.
    pub retransmissions: u64,
    /// Exchanges that timed out.
    pub timeouts: u64,
}

/// Runs the full sweep on the session executor (`--jobs` /
/// `LOOKASIDE_JOBS`): every adversary crossed with every hardening
/// profile, in profile-major order.
pub fn byzantine_sweep(config: &ByzantineConfig) -> Vec<ByzantinePoint> {
    byzantine_sweep_with(&crate::parallel::executor(), config)
}

/// [`byzantine_sweep`] on an explicit executor. Each cell builds a fresh
/// Internet replica, so cells are natural shards; the point list comes
/// back in serial order, identical for every worker count.
pub fn byzantine_sweep_with(
    exec: &lookaside_engine::Executor,
    config: &ByzantineConfig,
) -> Vec<ByzantinePoint> {
    let mut cells = Vec::with_capacity(config.adversaries.len() * config.profiles.len());
    for &profile in &config.profiles {
        for &adversary in &config.adversaries {
            cells.push((adversary, profile));
        }
    }
    let shards = lookaside_engine::ShardPlan::new(config.seed).over(cells);
    lookaside_engine::expect_all(
        exec.run(&shards, |shard| run_cell(config, shard.input.0, shard.input.1)),
    )
}

/// The measured workload: mostly sequential ranks (fresh names, as in the
/// chaos harness), with every fourth slot replaced by a deposited island
/// so each cell exercises the *positive* DLV path too — without islands in
/// the mix, `dlv_secure` could not distinguish a healthy registry from a
/// bogus one. Purely rank-arithmetic, so identical for every worker count.
fn measured_ranks(internet: &Internet, config: &ByzantineConfig) -> Vec<usize> {
    let mut used: std::collections::BTreeSet<usize> = (1..=config.warmup).collect();
    let mut deposited = internet
        .population
        .deposited_ranks(internet.params.query_limit)
        .filter(|&r| r > config.warmup);
    let mut ranks = Vec::with_capacity(config.queries);
    let mut next_seq = config.warmup + 1;
    for i in 0..config.queries {
        if i % 4 == 3 {
            if let Some(r) = deposited.find(|&r| !used.contains(&r)) {
                used.insert(r);
                ranks.push(r);
                continue;
            }
        }
        while !used.insert(next_seq) {
            next_seq += 1;
        }
        ranks.push(next_seq);
    }
    ranks
}

fn run_cell(
    config: &ByzantineConfig,
    adversary: Adversary,
    profile: HardeningProfile,
) -> ByzantinePoint {
    let size = (config.warmup + config.queries).max(1000);
    let population = PopulationParams { size, ..PopulationParams::default() };
    // query_limit covers the whole population: the workload below pulls
    // deposited islands from anywhere in it, and their registry deposits
    // must be materialised.
    let mut params = InternetParams::for_top(size, population, RemedyMode::None);
    params.seed = config.seed;
    params.capture = CaptureFilter::DlvOnly;
    if let Adversary::Decommission(stage) = adversary {
        params.dlv_stage = stage;
    }
    let mut internet = Internet::build(params);

    // As in the chaos harness: aggressive NSEC caching would suppress most
    // look-aside lookups for fresh names, hiding exactly the traffic the
    // adversary attacks. Turn it off so every measured name walks the
    // registry path.
    let features = FeatureModel { aggressive_nsec: false, ..FeatureModel::default() };
    let bind = match adversary {
        Adversary::NoDlv => BindConfig { lookaside: Lookaside::No, ..BindConfig::correct() },
        _ => BindConfig::correct(),
    };
    let mut resolver =
        internet.resolver_with_features(ResolverConfig::Bind(bind), features, config.seed ^ 0x5eed);
    // All cells run the robust timer profile from the chaos study — the
    // Byzantine sweep isolates the *hardening* axis, not the timer axis.
    resolver.set_retry_policy(RetryPolicy::default().with_servfail_cache(900));
    resolver.set_hardening(profile.hardening());

    // Warm-up: caches root/TLD delegations and validated zone keys. The
    // decommission stages are in force from the first packet (the registry
    // was built that way); link-level faults start after warm-up.
    for rank in 1..=config.warmup {
        let qname = internet.population.domain(rank);
        let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
    }
    internet.net.reset_measurement();
    let link_faults = match adversary {
        Adversary::Corrupt(milli) => Some(LinkFaults::quiet().with_corrupt_milli(milli)),
        Adversary::Truncate(milli) => Some(LinkFaults::quiet().with_truncate_milli(milli)),
        Adversary::Spoof(milli) => Some(LinkFaults::quiet().with_spoof_milli(milli)),
        _ => None,
    };
    if let Some(faults) = link_faults {
        internet.net.fault_plane_mut().set_link(DLV_ADDR, faults);
    }

    let counters_before = resolver.counters;
    let mut answered = 0usize;
    let mut dlv_secure = 0usize;
    for rank in measured_ranks(&internet, config) {
        let qname = internet.population.domain(rank);
        if let Ok(res) = resolver.resolve(&mut internet.net, &qname, RrType::A) {
            if res.rcode == Rcode::NoError && !res.answers.is_empty() {
                answered += 1;
            }
            if res.status == SecurityStatus::Secure && res.secured_via_dlv {
                dlv_secure += 1;
            }
        }
    }

    let dlv_packets =
        internet.net.capture().dlv_queries().filter(|p| p.direction == Direction::Query).count();
    let stats = internet.net.stats();
    let c = &resolver.counters;
    ByzantinePoint {
        adversary,
        profile,
        client_queries: config.queries,
        dlv_packets,
        dlv_per_query: dlv_packets as f64 / config.queries.max(1) as f64,
        answered,
        availability: answered as f64 / config.queries.max(1) as f64,
        dlv_secure,
        stale_serves: stats.stale_serves,
        stale_rate: stats.stale_serves as f64 / config.queries.max(1) as f64,
        bad_cache_hits: c.bad_cache_hits - counters_before.bad_cache_hits,
        bogus: c.bogus - counters_before.bogus,
        spoofs_accepted: c.spoofs_accepted - counters_before.spoofs_accepted,
        spoofs_discarded: c.spoofs_discarded - counters_before.spoofs_discarded,
        malformed_retries: c.malformed_retries - counters_before.malformed_retries,
        forced_truncations: stats.forced_truncations,
        retransmissions: stats.retransmissions,
        timeouts: stats.timeouts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(
        points: &[ByzantinePoint],
        adversary: Adversary,
        profile: HardeningProfile,
    ) -> &ByzantinePoint {
        points
            .iter()
            .find(|p| p.adversary == adversary && p.profile == profile)
            .expect("cell present")
    }

    fn small() -> ByzantineConfig {
        ByzantineConfig { warmup: 6, ..ByzantineConfig::quick(12) }
    }

    #[test]
    fn sweep_is_deterministic() {
        let config = ByzantineConfig {
            adversaries: vec![Adversary::Baseline, Adversary::Spoof(500)],
            profiles: vec![HardeningProfile::Full],
            ..small()
        };
        let a = byzantine_sweep(&config);
        let b = byzantine_sweep(&config);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dlv_packets, y.dlv_packets);
            assert_eq!(x.answered, y.answered);
            assert_eq!(x.spoofs_discarded, y.spoofs_discarded);
        }
    }

    #[test]
    fn hardening_survives_decommission_at_no_dlv_availability() {
        let points = byzantine_sweep(&small());
        let no_dlv = cell(&points, Adversary::NoDlv, HardeningProfile::Off);
        assert!(no_dlv.availability > 0.9, "control cell must resolve: {no_dlv:?}");
        // Graceful degradation: every decommission stage under full
        // hardening keeps availability at least at the no-DLV control —
        // look-aside failure costs the security status, never the answer.
        for stage in [
            DecommissionStage::Emptied,
            DecommissionStage::NxDomainAll,
            DecommissionStage::ServFailAll,
            DecommissionStage::BogusSignatures,
            DecommissionStage::Offline,
        ] {
            let p = cell(&points, Adversary::Decommission(stage), HardeningProfile::Full);
            assert!(
                p.availability >= no_dlv.availability - 1e-9,
                "{stage:?} under full hardening must not lose answers: {} vs control {}",
                p.availability,
                no_dlv.availability
            );
        }
    }

    #[test]
    fn forged_and_bogus_data_is_never_secure() {
        let points = byzantine_sweep(&ByzantineConfig {
            adversaries: vec![
                Adversary::Baseline,
                Adversary::Spoof(1000),
                Adversary::Decommission(DecommissionStage::BogusSignatures),
            ],
            ..small()
        });
        let baseline = cell(&points, Adversary::Baseline, HardeningProfile::Off);
        assert!(baseline.dlv_secure > 0, "deposited islands must secure via DLV: {baseline:?}");
        // Accepted forgeries carry no valid signatures: an unhardened
        // resolver that swallows every spoof must never conclude Secure.
        let spoofed = cell(&points, Adversary::Spoof(1000), HardeningProfile::Off);
        assert!(spoofed.spoofs_accepted > 0, "unhardened resolver accepts spoofs: {spoofed:?}");
        assert_eq!(spoofed.dlv_secure, 0, "forged data must never be Secure: {spoofed:?}");
        // A hardened resolver discards the forgeries and still validates
        // the *genuine* answer — Secure via DLV survives the attack.
        let hardened = cell(&points, Adversary::Spoof(1000), HardeningProfile::Full);
        assert_eq!(hardened.spoofs_accepted, 0, "{hardened:?}");
        assert!(hardened.dlv_secure > 0, "genuine path survives the spoof storm: {hardened:?}");
        // A registry serving broken signatures yields Secure for no one.
        for &profile in &HardeningProfile::ALL {
            let p =
                cell(&points, Adversary::Decommission(DecommissionStage::BogusSignatures), profile);
            assert_eq!(
                p.dlv_secure, 0,
                "bogus registry signatures must never validate ({profile:?}): {p:?}"
            );
        }
    }

    #[test]
    fn qid_and_source_checks_discard_forgeries() {
        let points = byzantine_sweep(&ByzantineConfig {
            adversaries: vec![Adversary::Spoof(1000)],
            ..small()
        });
        let off = cell(&points, Adversary::Spoof(1000), HardeningProfile::Off);
        let full = cell(&points, Adversary::Spoof(1000), HardeningProfile::Full);
        assert!(off.spoofs_accepted > 0, "unhardened resolver accepts forgeries: {off:?}");
        assert_eq!(full.spoofs_accepted, 0, "hardened resolver accepts none: {full:?}");
        assert!(full.spoofs_discarded > 0, "hardened resolver saw and discarded them: {full:?}");
    }

    #[test]
    fn corruption_triggers_retries_and_amplifies_leakage() {
        let points = byzantine_sweep(&ByzantineConfig {
            adversaries: vec![Adversary::Baseline, Adversary::Corrupt(500)],
            profiles: vec![HardeningProfile::Off],
            ..small()
        });
        let baseline = cell(&points, Adversary::Baseline, HardeningProfile::Off);
        let corrupt = cell(&points, Adversary::Corrupt(500), HardeningProfile::Off);
        assert!(corrupt.malformed_retries > 0, "corruption must be detected: {corrupt:?}");
        assert!(
            corrupt.dlv_per_query > baseline.dlv_per_query,
            "every retry re-leaks the name: {} vs {}",
            corrupt.dlv_per_query,
            baseline.dlv_per_query
        );
    }

    #[test]
    fn truncation_forces_tcp_fallback_without_losing_answers() {
        let points = byzantine_sweep(&ByzantineConfig {
            adversaries: vec![Adversary::Truncate(1000)],
            profiles: vec![HardeningProfile::Off],
            ..small()
        });
        let p = cell(&points, Adversary::Truncate(1000), HardeningProfile::Off);
        assert!(p.forced_truncations > 0, "truncation fault must fire: {p:?}");
        assert!(p.availability > 0.9, "TCP fallback keeps answers flowing: {p:?}");
        assert!(p.dlv_secure > 0, "TCP retry carries the full signed answer: {p:?}");
    }
}
