//! Sharded parallel execution of experiments.
//!
//! This module is the glue between the generic `lookaside-engine`
//! executor and the study's simulated Internet. The paper's own
//! methodology is embarrassingly parallel: independent measurement boxes
//! each run a slice of the ranked query list against their own resolver,
//! and the pcaps are merged offline. [`run_sharded`] reproduces exactly
//! that fleet model:
//!
//! * the rank list is split into contiguous ranges by
//!   [`ShardPlan::split_range`],
//! * each shard's [`Worker`] builds a **private replica** of the
//!   simulated Internet (the simulator's `Rc`-based oracle is not
//!   thread-shareable — and per-box replicas are the honest model
//!   anyway), runs its ranks in its own virtual time, and returns its
//!   capture plus additive counters. The replica's capture owns a
//!   private `NameTable` (see `lookaside_wire::NameTable`), so repeated
//!   qnames within a shard share one allocation while shards share no
//!   memory at all — interning changes where bytes live, never what they
//!   are, which is why it cannot perturb determinism,
//! * reduction merges captures in ascending shard id
//!   ([`Capture::merge`]'s `(shard_id, seq)` total order), sums the
//!   additive statistics, classifies leakage over the merged capture,
//!   and takes the *maximum* shard virtual time as the fleet's elapsed
//!   time (the boxes run concurrently in simulated time too).
//!
//! Every replica is built from the same [`RunConfig`], so with one shard
//! the fleet degenerates to exactly [`run`]'s serial path — byte for
//! byte. With any shard count, the output is a pure function of
//! `(config, shard count)`: worker threads only decide *when* a shard
//! runs, never what it produces, so `--jobs 1` and `--jobs N` are
//! byte-identical (the engine determinism suite pins this down).
//!
//! # Two cohort models
//!
//! The workspace shards along two different axes, and the distinction is
//! load-bearing:
//!
//! * **Rank sweeps shard by contiguous rank range** (this module's
//!   [`run_sharded`]). The paper's boxes each replay a contiguous slice
//!   of the ranked list, and adjacent ranks share registry NSEC spans —
//!   slicing contiguously preserves the span-cache locality the Fig. 8/9
//!   calibration anchors depend on. Hashing ranks across boxes would
//!   scatter neighbours and silently deflate cache-hit ratios.
//! * **Client planes shard by hashed client cohort** ([`map_cohorts`],
//!   used by [`crate::farm`]). Clients are independent; their cohort is a
//!   pure function of `(seed, client)` (see
//!   `lookaside_population::StubPlane::cohort_of`), and the farm's
//!   reduction is a set union plus a min-merge — associative and
//!   commutative — so *any* partition of clients reduces to the same
//!   bytes. Here hashing is correct **and** required: it keeps cohort
//!   sizes balanced no matter how client ids are distributed.
//!
//! Both models end at the same place: output is a pure function of the
//! configuration, never of the worker pool.

use std::ops::Range;

use lookaside_engine::{expect_all, Executor, ShardPlan, Supervisor, SweepOutcome};
use lookaside_netsim::{Capture, TrafficStats};
use lookaside_resolver::{Counters, RecursiveResolver, SecurityStatus};
use lookaside_wire::{Name, RrType};

use crate::experiments::{run, QuerySet, RunConfig, RunOutcome, StatusTally};
use crate::internet::{Internet, InternetParams};
use crate::leakage::classify;

/// The executor experiments route through: honours `LOOKASIDE_JOBS`,
/// defaulting to the machine's available parallelism.
pub fn executor() -> Executor {
    Executor::from_env()
}

/// The supervisor experiments route through: honours
/// `LOOKASIDE_RETRIES`, `LOOKASIDE_WATCHDOG_MS` and `LOOKASIDE_FAULTS`,
/// defaulting to three attempts per shard with the watchdog disarmed and
/// no injected faults — a configuration under which every clean run is
/// byte-identical to the unsupervised path.
pub fn supervisor() -> Supervisor {
    Supervisor::from_env()
}

/// Unwraps a supervised sweep, enforcing the no-silent-caps contract.
///
/// Complete sweeps pass straight through (with `--allow-partial` the
/// coverage summary is still printed, so a "clean" resumed run shows its
/// resumed-shard count). Degraded sweeps — shards that exhausted their
/// retry budget — print the full per-shard coverage table to **stderr**
/// (stdout stays byte-diffable) and then abort, unless the session opted
/// into partial results via `repro --allow-partial` /
/// `LOOKASIDE_ALLOW_PARTIAL`, in which case the partial accumulator is
/// returned and the caller's tables simply omit the failed shards.
pub fn accept<A>(outcome: SweepOutcome<A>) -> A {
    let allow_partial = lookaside_engine::allow_partial_requested();
    if !outcome.coverage.is_complete() {
        lookaside_engine::diag::note(&outcome.coverage.table());
        assert!(
            allow_partial,
            "sweep degraded: {} (rerun with --allow-partial to accept partial coverage)",
            outcome.coverage.summary()
        );
    } else if allow_partial {
        lookaside_engine::diag::note(&outcome.coverage.summary());
    }
    outcome.value
}

/// Maps `work` over cohorts `0..cohorts` on `exec`'s pool and returns the
/// per-cohort results in cohort order.
///
/// This is the client-plane half of the fleet machinery (see the module
/// docs): each shard's input is a cohort *index*, the caller resolves
/// membership through a stable hash, and the caller's reduction must be
/// order-independent. The engine seeds each shard from
/// `splitmix64(seed, cohort)` should `work` want per-cohort entropy;
/// results come back indexed by cohort id, never by completion order, so
/// the worker pool cannot leak into the output.
pub fn map_cohorts<T, F>(seed: u64, cohorts: usize, exec: &Executor, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(&lookaside_engine::Shard<usize>) -> T + Sync,
{
    assert!(cohorts > 0, "cohort count must be positive");
    let plan = ShardPlan::new(seed).over(0..cohorts);
    let sup = supervisor();
    accept(exec.run_fold_supervised(
        &plan,
        work,
        Vec::with_capacity(cohorts),
        |mut acc, _cohort, t| {
            acc.push(t);
            acc
        },
        &sup,
    ))
}

/// [`map_cohorts`]'s streaming twin: folds per-cohort results into one
/// accumulator in ascending cohort order instead of collecting a vector,
/// so only one cohort result is live at a time. For the order-free
/// reductions client planes use (set union + min-merge), the fold equals
/// merging the collected vector — the farm equivalence tests pin it down.
///
/// Runs under the session [`supervisor`]: failed cohorts are retried
/// under the bounded budget, and a degraded sweep aborts with its
/// coverage table via [`accept`] unless `--allow-partial` is set.
pub fn fold_cohorts<T, A, F, G>(
    seed: u64,
    cohorts: usize,
    exec: &Executor,
    work: F,
    init: A,
    mut fold: G,
) -> A
where
    T: Send,
    F: Fn(&lookaside_engine::Shard<usize>) -> T + Sync,
    G: FnMut(A, T) -> A,
{
    assert!(cohorts > 0, "cohort count must be positive");
    let plan = ShardPlan::new(seed).over(0..cohorts);
    let sup = supervisor();
    accept(exec.run_fold_supervised(&plan, work, init, |acc, _cohort, t| fold(acc, t), &sup))
}

/// One measurement box of the fleet: a private simulated-Internet replica
/// plus the resolver under test, re-buildable cheaply from a [`RunConfig`].
pub struct Worker {
    internet: Internet,
    resolver: RecursiveResolver,
}

impl Worker {
    /// Builds a replica for `config` — identical to the environment
    /// [`run`] builds, so a single-shard fleet reproduces the serial path
    /// exactly. Each worker calls this on its own thread; replicas share
    /// nothing.
    pub fn replica(config: &RunConfig) -> Self {
        let limit = config.queries.max_rank().max(1);
        let mut params = InternetParams::for_top(limit, config.population, config.remedy);
        params.dlv_span_ttl = config.dlv_span_ttl;
        params.dlv_denial = config.dlv_denial;
        params.seed = config.seed;
        params.capture = config.capture;
        let internet = Internet::build(params);
        let resolver = internet.resolver(config.resolver, config.seed ^ 0x5a17);
        Worker { internet, resolver }
    }

    /// Resolves the half-open rank range `lo..hi` in order and returns the
    /// box's local measurements. Consumes the worker: a fleet box runs one
    /// slice, then ships its capture for offline merging.
    pub fn run_ranks(mut self, ranks: Range<usize>) -> ShardOutcome {
        let mut statuses = StatusTally::default();
        let names: Vec<Name> = self.internet.population.rank_range(ranks).collect();
        for name in &names {
            let result = self.resolver.resolve(&mut self.internet.net, name, RrType::A);
            tally(&mut statuses, &result);
        }
        ShardOutcome {
            capture: self.internet.net.capture().clone(),
            stats: self.internet.net.stats().clone(),
            counters: self.resolver.counters,
            statuses,
            elapsed_ns: self.internet.net.now_ns(),
            queried: names.len(),
            dlv_apex: self.internet.dlv_apex.clone(),
        }
    }
}

/// What one fleet box ships home: its pcap and additive counters. The
/// capture is kept raw (not pre-classified) so reduction can classify the
/// *merged* capture, exactly like the paper's offline analysis.
pub struct ShardOutcome {
    /// The box's packet capture.
    pub capture: Capture,
    /// The box's upstream traffic totals.
    pub stats: TrafficStats,
    /// Resolver-internal counters.
    pub counters: Counters,
    /// Validation-status tallies.
    pub statuses: StatusTally,
    /// The box's simulated wall-clock, nanoseconds.
    pub elapsed_ns: u64,
    /// Names the box queried.
    pub queried: usize,
    /// Registry apex, for classification.
    pub dlv_apex: Name,
}

/// Records one resolution's validation status into a tally.
pub(crate) fn tally(
    statuses: &mut StatusTally,
    result: &Result<lookaside_resolver::Resolution, lookaside_resolver::ResolveError>,
) {
    match result {
        Ok(res) => match res.status {
            SecurityStatus::Secure => {
                statuses.secure += 1;
                if res.secured_via_dlv {
                    statuses.secure_via_dlv += 1;
                }
            }
            SecurityStatus::Insecure => statuses.insecure += 1,
            SecurityStatus::Bogus => statuses.bogus += 1,
            SecurityStatus::Indeterminate => statuses.indeterminate += 1,
        },
        Err(_) => statuses.errors += 1,
    }
}

/// Runs `config` as a fleet of `shards` independent measurement boxes on
/// `exec`'s worker pool and reduces deterministically.
///
/// With `shards <= 1` — or a query set that is not a rank sweep
/// ([`QuerySet::Top`]) — this is exactly [`run`]. With more shards the
/// rank list is split contiguously; each box starts cold (fresh caches,
/// like the paper's per-box runs), so totals can differ from the
/// single-box serial path — but they are **identical across every
/// `jobs` value and across repeated runs**, which is the invariant the
/// engine guarantees and the tests enforce.
pub fn run_sharded(config: &RunConfig, shards: usize, exec: &Executor) -> RunOutcome {
    let n = match &config.queries {
        QuerySet::Top(n) => *n,
        _ => return run(config),
    };
    let plan = ShardPlan::new(config.seed).split_range(1..n + 1, shards);
    if plan.len() <= 1 {
        return run(config);
    }
    let outcomes =
        expect_all(exec.run(&plan, |shard| Worker::replica(config).run_ranks(shard.input.clone())));
    reduce(outcomes)
}

/// Deterministic reduction: captures merge in ascending shard id, the
/// additive counters sum, elapsed time is the fleet maximum.
// lint:sink(determinism)
fn reduce(shards: Vec<ShardOutcome>) -> RunOutcome {
    let mut capture = Capture::default();
    let mut stats = TrafficStats::new();
    let mut counters = Counters::default();
    let mut statuses = StatusTally::default();
    let mut elapsed_ns = 0u64;
    let mut queried = 0usize;
    let mut dlv_apex = None;
    for shard in &shards {
        capture.merge(&shard.capture);
        stats.merge(&shard.stats);
        counters.merge(&shard.counters);
        statuses.merge(&shard.statuses);
        elapsed_ns = elapsed_ns.max(shard.elapsed_ns);
        queried += shard.queried;
        dlv_apex.get_or_insert_with(|| shard.dlv_apex.clone());
    }
    let dlv_apex = dlv_apex.expect("reduce requires at least one shard");
    RunOutcome {
        leakage: classify(&capture, &dlv_apex),
        stats,
        counters,
        statuses,
        elapsed_ns,
        queried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_fleet_is_byte_identical_to_serial() {
        let config = RunConfig::quick(25);
        let serial = run(&config);
        let fleet = run_sharded(&config, 1, &Executor::serial());
        assert_eq!(fleet.stats, serial.stats);
        assert_eq!(fleet.leakage, serial.leakage);
        assert_eq!(fleet.counters, serial.counters);
        assert_eq!(fleet.statuses, serial.statuses);
        assert_eq!(fleet.elapsed_ns, serial.elapsed_ns);
        assert_eq!(fleet.queried, serial.queried);
    }

    #[test]
    fn fleet_output_is_jobs_invariant() {
        let config = RunConfig::quick(24);
        let reference = run_sharded(&config, 3, &Executor::serial());
        for jobs in [2, 4] {
            let parallel = run_sharded(&config, 3, &Executor::new(jobs));
            assert_eq!(parallel.stats, reference.stats, "jobs={jobs}");
            assert_eq!(parallel.leakage, reference.leakage, "jobs={jobs}");
            assert_eq!(parallel.counters, reference.counters, "jobs={jobs}");
            assert_eq!(parallel.elapsed_ns, reference.elapsed_ns, "jobs={jobs}");
        }
    }

    #[test]
    fn fleet_queries_every_rank_exactly_once() {
        let config = RunConfig::quick(30);
        let fleet = run_sharded(&config, 4, &Executor::new(2));
        assert_eq!(fleet.queried, 30);
        let total = fleet.statuses.secure
            + fleet.statuses.insecure
            + fleet.statuses.bogus
            + fleet.statuses.indeterminate
            + fleet.statuses.errors;
        assert_eq!(total, 30);
    }

    #[test]
    fn non_rank_query_sets_fall_back_to_serial() {
        let mut config = RunConfig::quick(12);
        config.queries = QuerySet::Ranks(vec![3, 1, 2]);
        let serial = run(&config);
        let fleet = run_sharded(&config, 4, &Executor::new(4));
        assert_eq!(fleet.stats, serial.stats);
        assert_eq!(fleet.leakage, serial.leakage);
    }
}
