//! The §7.3.2 chaos harness: DLV-registry loss and outage sweeps.
//!
//! The paper argues that DLV's centralization turns the privacy leak into
//! a *reliability* story: when `dlv.isc.org` degrades, resolvers retry and
//! re-leak, multiplying the queries an observer sees. This module drives
//! that mechanism end to end — it injects seeded packet loss (or a full
//! blackhole) on the registry link via the netsim
//! [`FaultPlane`](lookaside_netsim::FaultPlane), runs the real resolver
//! under different timer profiles, and reports *leakage amplification*
//! (leaked DLV query packets per client query) together with degradation
//! curves (success rate, p50/p95 resolution latency in simulated time).
//!
//! Three timer profiles bracket the mechanism:
//!
//! * **no-retry** — one transmission per server; loss silently *reduces*
//!   what the registry link carries,
//! * **retry** — the default retransmit/backoff policy; every lost leg is
//!   re-sent, so the same client workload puts strictly more DLV queries
//!   on the wire as loss grows,
//! * **retry + SERVFAIL cache** — RFC 2308 §7 caching: once a lookup
//!   times out on every registry server the zone is held dead for the
//!   cache TTL, so subsequent look-aside walks never reach the wire and
//!   the amplification collapses.
//!
//! Everything is a pure function of the configured seed: the fault
//! schedule, the latency draws, and the workload are all deterministic, so
//! two runs with the same [`ChaosConfig`] produce identical reports.

use std::cell::RefCell;
use std::rc::Rc;

use lookaside_netsim::{CaptureFilter, Direction, DlvQueryCounter, LinkFaults};
use lookaside_resolver::{BindConfig, FeatureModel, ResolverConfig, RetryPolicy};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::RrType;
use lookaside_workload::PopulationParams;
use serde::Serialize;

use crate::internet::{Internet, InternetParams, DLV_ADDR};
use crate::stream::ExecMode;

/// One fault level applied to the resolver ↔ DLV-registry link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Outage {
    /// Per-leg packet loss, in thousandths (both legs drawn independently).
    Loss(u16),
    /// The registry is unreachable: every query leg is dropped.
    Blackhole,
}

impl Outage {
    /// Severity key for monotonicity checks: loss per-mille, with a
    /// blackhole ordered above every finite loss rate.
    pub fn severity(self) -> u16 {
        match self {
            Outage::Loss(milli) => milli.min(1000),
            Outage::Blackhole => 1001,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> String {
        match self {
            Outage::Loss(milli) => format!("loss {:.0}%", f64::from(milli) / 10.0),
            Outage::Blackhole => "blackhole".to_string(),
        }
    }

    fn faults(self) -> LinkFaults {
        match self {
            Outage::Loss(milli) => LinkFaults::quiet().with_loss_milli(milli),
            Outage::Blackhole => LinkFaults::quiet().with_blackhole(),
        }
    }
}

/// Resolver timer configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TimerProfile {
    /// One transmission per server, no retransmission.
    NoRetry,
    /// Default retransmission and exponential backoff.
    Retry,
    /// Retransmission plus the RFC 2308 §7 SERVFAIL cache.
    RetryServfailCache,
}

impl TimerProfile {
    /// All three profiles, in increasing robustness order.
    pub const ALL: [TimerProfile; 3] =
        [TimerProfile::NoRetry, TimerProfile::Retry, TimerProfile::RetryServfailCache];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TimerProfile::NoRetry => "no-retry",
            TimerProfile::Retry => "retry",
            TimerProfile::RetryServfailCache => "retry+sfcache",
        }
    }

    /// The retry policy this profile selects.
    pub fn policy(self) -> RetryPolicy {
        match self {
            TimerProfile::NoRetry => RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
            TimerProfile::Retry => RetryPolicy::default(),
            TimerProfile::RetryServfailCache => RetryPolicy::default().with_servfail_cache(900),
        }
    }
}

/// Configuration of one chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Client queries measured per cell (fresh, previously-unseen names).
    pub queries: usize,
    /// Warm-up queries resolved against the healthy registry first, so the
    /// DLV zone keys and delegation infrastructure are cached and the
    /// faults hit only the look-aside lookups themselves.
    pub warmup: usize,
    /// Master seed: faults, latency, and workload all derive from it.
    pub seed: u64,
    /// Fault levels to sweep, typically in increasing severity.
    pub outages: Vec<Outage>,
    /// Timer profiles to cross with each fault level.
    pub profiles: Vec<TimerProfile>,
}

impl ChaosConfig {
    /// A small sweep over the canonical loss ladder and all three
    /// profiles.
    pub fn quick(queries: usize) -> Self {
        ChaosConfig {
            queries,
            warmup: 8,
            seed: 0xc4a05,
            outages: vec![
                Outage::Loss(0),
                Outage::Loss(100),
                Outage::Loss(250),
                Outage::Loss(500),
                Outage::Blackhole,
            ],
            profiles: TimerProfile::ALL.to_vec(),
        }
    }
}

/// One cell of the chaos sweep: a fault level crossed with a timer
/// profile.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosPoint {
    /// Fault level applied to the registry link.
    pub outage: Outage,
    /// Timer profile in force.
    pub profile: TimerProfile,
    /// Client queries measured.
    pub client_queries: usize,
    /// DLV query packets put on the wire (retransmissions included — each
    /// transmission exposes the name again).
    pub dlv_packets: usize,
    /// The headline amplification metric: leaked DLV query packets per
    /// client query.
    pub dlv_per_query: f64,
    /// Client queries that resolved to an answer.
    pub answered: usize,
    /// `answered / client_queries`.
    pub success_rate: f64,
    /// Median resolution latency, simulated milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile resolution latency, simulated milliseconds.
    pub p95_ms: f64,
    /// Retransmitted queries (from [`lookaside_netsim::TrafficStats`]).
    pub retransmissions: u64,
    /// Exchanges that timed out.
    pub timeouts: u64,
    /// SERVFAIL-cache occupancy after the run: `(tuples, dead zones)`.
    pub servfail_entries: (usize, usize),
}

/// Runs the full sweep on the session executor (`--jobs` /
/// `LOOKASIDE_JOBS`), streaming when `LOOKASIDE_STREAM` is set: every
/// fault level crossed with every timer profile, in profile-major order.
pub fn chaos_outage(config: &ChaosConfig) -> Vec<ChaosPoint> {
    chaos_outage_mode(&crate::parallel::executor(), config, ExecMode::from_env())
}

/// [`chaos_outage`] on an explicit executor (batch mode). Every grid cell
/// already builds a fresh Internet replica, so cells are natural shards:
/// the point list comes back in the same profile-major order the serial
/// loop produced, identical for every worker count.
pub fn chaos_outage_with(
    exec: &lookaside_engine::Executor,
    config: &ChaosConfig,
) -> Vec<ChaosPoint> {
    chaos_outage_mode(exec, config, ExecMode::Batch)
}

/// [`chaos_outage`] with an explicit execution mode. In streaming mode
/// each cell runs capture-less with a [`DlvQueryCounter`] sink counting
/// leaked packets on the fly — byte-identical to the batch capture count.
///
/// Cells run under the session supervisor: a failed cell is retried
/// within the bounded budget, and with `--allow-partial` a still-failing
/// cell is dropped from the grid (printed in the coverage table, never
/// silently) instead of aborting the sweep.
pub fn chaos_outage_mode(
    exec: &lookaside_engine::Executor,
    config: &ChaosConfig,
    mode: ExecMode,
) -> Vec<ChaosPoint> {
    let mut cells = Vec::with_capacity(config.outages.len() * config.profiles.len());
    for &profile in &config.profiles {
        for &outage in &config.outages {
            cells.push((outage, profile));
        }
    }
    let shards = lookaside_engine::ShardPlan::new(config.seed).over(cells);
    let sup = crate::parallel::supervisor();
    crate::parallel::accept(exec.run_fold_supervised(
        &shards,
        |shard| run_cell(config, shard.input.0, shard.input.1, mode),
        Vec::with_capacity(shards.len()),
        |mut acc, _cell, point| {
            acc.push(point);
            acc
        },
        &sup,
    ))
}

fn run_cell(
    config: &ChaosConfig,
    outage: Outage,
    profile: TimerProfile,
    mode: ExecMode,
) -> ChaosPoint {
    let limit = config.warmup + config.queries;
    let population = PopulationParams { size: limit.max(1000), ..PopulationParams::default() };
    let mut params = InternetParams::for_top(limit, population, RemedyMode::None);
    params.seed = config.seed;
    params.capture = if mode.is_stream() { CaptureFilter::None } else { CaptureFilter::DlvOnly };
    let mut internet = Internet::build(params);
    // Streaming: count DLV query packets as they happen instead of
    // retaining them. `reset_measurement` resets the sink exactly when it
    // clears the capture, so the warm-up epoch is discarded identically.
    let counter = if mode.is_stream() {
        let sink = Rc::new(RefCell::new(DlvQueryCounter::new()));
        internet.net.set_observer(Box::new(Rc::clone(&sink)));
        Some(sink)
    } else {
        None
    };

    // Aggressive NSEC caching would suppress most look-aside lookups for
    // fresh names; §7.3's point is precisely that without it "every query
    // to the resolver would trigger a query to the DLV server", which is
    // the regime where outages amplify. Turn it off so each measured name
    // exercises the registry link.
    let features = FeatureModel { aggressive_nsec: false, ..FeatureModel::default() };
    let mut resolver = internet.resolver_with_features(
        ResolverConfig::Bind(BindConfig::correct()),
        features,
        config.seed ^ 0x5eed,
    );
    resolver.set_retry_policy(profile.policy());

    // Warm-up against the healthy registry: caches the root/TLD
    // delegations, the registry's zone cut, and the validated DLV zone
    // keys, so the fault plane below degrades only the look-aside lookups.
    for rank in 1..=config.warmup {
        let qname = internet.population.domain(rank);
        let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
    }

    // Measurement epoch: clean capture and counters, then break the link.
    internet.net.reset_measurement();
    internet.net.fault_plane_mut().set_link(DLV_ADDR, outage.faults());

    let mut latencies_ns = Vec::with_capacity(config.queries);
    let mut answered = 0usize;
    for rank in config.warmup + 1..=limit {
        let qname = internet.population.domain(rank);
        let before = internet.net.now_ns();
        if resolver.resolve(&mut internet.net, &qname, RrType::A).is_ok() {
            answered += 1;
        }
        latencies_ns.push(internet.net.now_ns() - before);
    }

    let dlv_packets = match &counter {
        Some(sink) => sink.borrow().queries as usize,
        None => {
            internet.net.capture().dlv_queries().filter(|p| p.direction == Direction::Query).count()
        }
    };
    let stats = internet.net.stats();
    latencies_ns.sort_unstable();
    ChaosPoint {
        outage,
        profile,
        client_queries: config.queries,
        dlv_packets,
        dlv_per_query: dlv_packets as f64 / config.queries.max(1) as f64,
        answered,
        success_rate: answered as f64 / config.queries.max(1) as f64,
        p50_ms: percentile_ms(&latencies_ns, 50),
        p95_ms: percentile_ms(&latencies_ns, 95),
        retransmissions: stats.retransmissions,
        timeouts: stats.timeouts,
        servfail_entries: resolver.servfail_cache().len(),
    }
}

fn percentile_ms(sorted_ns: &[u64], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() * pct).div_ceil(100).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by(points: &[ChaosPoint], profile: TimerProfile) -> Vec<&ChaosPoint> {
        points.iter().filter(|p| p.profile == profile).collect()
    }

    #[test]
    fn streamed_sweep_is_byte_identical_to_batch() {
        let config = ChaosConfig {
            outages: vec![Outage::Loss(0), Outage::Loss(250), Outage::Blackhole],
            profiles: vec![TimerProfile::NoRetry, TimerProfile::Retry],
            ..ChaosConfig::quick(10)
        };
        let exec = lookaside_engine::Executor::new(2);
        let batch = chaos_outage_mode(&exec, &config, ExecMode::Batch);
        let stream = chaos_outage_mode(&exec, &config, ExecMode::Stream);
        assert_eq!(batch.len(), stream.len());
        for (b, s) in batch.iter().zip(&stream) {
            let cell = format!("{:?}/{:?}", b.outage, b.profile);
            assert_eq!(b.dlv_packets, s.dlv_packets, "{cell}");
            assert_eq!(b.dlv_per_query, s.dlv_per_query, "{cell}");
            assert_eq!(b.answered, s.answered, "{cell}");
            assert_eq!(b.p50_ms, s.p50_ms, "{cell}");
            assert_eq!(b.p95_ms, s.p95_ms, "{cell}");
            assert_eq!(b.retransmissions, s.retransmissions, "{cell}");
            assert_eq!(b.timeouts, s.timeouts, "{cell}");
            assert_eq!(b.servfail_entries, s.servfail_entries, "{cell}");
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let config = ChaosConfig {
            outages: vec![Outage::Loss(0), Outage::Loss(250)],
            profiles: vec![TimerProfile::Retry],
            ..ChaosConfig::quick(12)
        };
        let a = chaos_outage(&config);
        let b = chaos_outage(&config);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dlv_packets, y.dlv_packets);
            assert_eq!(x.retransmissions, y.retransmissions);
            assert_eq!(x.p95_ms, y.p95_ms);
        }
    }

    #[test]
    fn retries_amplify_leakage_monotonically() {
        let points = chaos_outage(&ChaosConfig::quick(25));
        let retry = by(&points, TimerProfile::Retry);
        let baseline = retry[0].dlv_per_query;
        assert!(baseline > 0.0, "healthy run must still leak look-aside queries");
        // Monotone in outage severity…
        for pair in retry.windows(2) {
            assert!(
                pair[1].dlv_per_query >= pair[0].dlv_per_query,
                "amplification must not decrease with severity: {:?} -> {:?}",
                pair[0].outage,
                pair[1].outage
            );
        }
        // …and strictly above baseline from 10% loss on.
        for point in retry.iter().filter(|p| p.outage.severity() >= 100) {
            assert!(
                point.dlv_per_query > baseline,
                "{:?} must amplify beyond the zero-loss baseline",
                point.outage
            );
        }
        // Retransmission is the multiplier: at every degraded severity the
        // retry profile puts strictly more DLV packets on the wire than the
        // single-shot profile does for the same client workload. (The
        // no-retry profile still drifts above its own baseline — failed
        // lookups of shared walk targets are never negatively cached, so
        // later names re-send them — but retries amplify on top of that.)
        let noretry = by(&points, TimerProfile::NoRetry);
        for (r, n) in retry.iter().zip(&noretry).filter(|(r, _)| r.outage.severity() >= 100) {
            assert_eq!(r.outage, n.outage);
            assert!(
                r.dlv_per_query > n.dlv_per_query,
                "retries must out-leak single-shot at {:?}: {} vs {}",
                r.outage,
                r.dlv_per_query,
                n.dlv_per_query
            );
        }
    }

    #[test]
    fn servfail_cache_collapses_amplification() {
        let points = chaos_outage(&ChaosConfig::quick(25));
        let retry = by(&points, TimerProfile::Retry);
        let cached = by(&points, TimerProfile::RetryServfailCache);
        let baseline = retry[0].dlv_per_query;
        for point in cached.iter().filter(|p| p.outage.severity() >= 500) {
            assert!(
                point.dlv_per_query <= baseline,
                "SERVFAIL cache must collapse {:?} amplification to at most the \
                 healthy baseline, got {} vs {}",
                point.outage,
                point.dlv_per_query,
                baseline
            );
            let (_, dead) = point.servfail_entries;
            assert!(dead > 0, "the registry zone must be held dead under {:?}", point.outage);
        }
    }

    #[test]
    fn latency_degrades_under_outage() {
        let points = chaos_outage(&ChaosConfig {
            outages: vec![Outage::Loss(0), Outage::Blackhole],
            profiles: vec![TimerProfile::Retry],
            ..ChaosConfig::quick(15)
        });
        assert!(points[1].p95_ms > points[0].p95_ms * 5.0, "{points:?}");
        assert!(points[1].timeouts > 0);
        // Registry outages must not take resolution down with them (§7.3.2):
        // look-aside failure degrades the status, not the answer.
        assert!(points[1].success_rate >= points[0].success_rate - 1e-9);
    }
}
