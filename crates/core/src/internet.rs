//! Building the simulated Internet of the study.
//!
//! Topology (cf. DESIGN.md):
//!
//! ```text
//!             root (signed, materialised)
//!         ┌─────┴──────────────┬──────────────┐
//!   com/net/… (15 synthetic   org             in-addr.arpa (answered
//!   TLD authorities)           │               by the root: NXDOMAIN)
//!         │               isc.org (real, signed)
//!   d0000001.com …              │
//!   h0042.net … (served by  dlv.isc.org — the DLV registry
//!   the default-route        (signed; calibrated deposits)
//!   synthetic authority)
//! ```

use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::rc::Rc;

use lookaside_crypto::{ds_rdata, KeyPair, PublicKey};
use lookaside_netsim::{CaptureFilter, LatencyModel, Network};
use lookaside_resolver::{FeatureModel, RecursiveResolver, ResolverConfig, ResolverSetup};
use lookaside_server::{
    AuthoritativeServer, DecommissionStage, DlvDeposit, DlvRegistry, EpochAuthority, EpochRouter,
    SyntheticAuthority, SyntheticSpec, ZoneOracle, DLV_SPAN_TTL,
};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::{Name, RData};
use lookaside_workload::{huque45, DomainPopulation, HuqueDomain, PopEntry, PopulationParams};
use lookaside_zone::{DenialMode, KeyTimeline, LifecycleTarget, PublishedZone, SigningKeys, Zone};

const NS_PER_SEC: u64 = 1_000_000_000;

/// Root server address (mirrors `a.root-servers.net`).
pub const ROOT_ADDR: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
/// `isc.org` server address.
pub const ISC_ADDR: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 1);
/// DLV registry server address.
pub const DLV_ADDR: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 2);

/// Signing epoch used by every zone (inception..expiration).
pub const INCEPTION: u32 = 0;
/// Signature expiration — far future; the steady-state studies never
/// exercise expiry (the lifecycle sweep builds its own windows). Half the
/// serial space, not `u32::MAX`: under RFC 4034 §3.1.5 serial arithmetic
/// `u32::MAX` is one second *before* inception 0, which would invalidate
/// every signature.
pub const EXPIRATION: u32 = 0x7fff_ffff;

/// Seed of the root zone's signing keys. A [`lookaside_zone::KeyTimeline`]
/// built on this seed has generation-0 keys byte-identical to the static
/// seed root, so a lifecycle sweep can take over the root at epoch 0
/// without perturbing any steady-state output.
pub const ROOT_KEY_SEED: u64 = 0x126;

fn tld_addr(index: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 10 + index as u8)
}

fn tld_key_seed(index: usize) -> u64 {
    0x7464_0000 + index as u64
}

/// Measurement vantage point (§7.1 "Experiment Generality"): the paper ran
/// from a campus network and from DigitalOcean/EC2 VPSes and found the
/// findings identical. Each vantage only changes the latency profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VantagePoint {
    /// On-campus host: moderate, stable latency.
    #[default]
    Campus,
    /// DigitalOcean VPS: close to well-peered infrastructure.
    DigitalOcean,
    /// Amazon EC2 instance: similar, different jitter profile.
    Ec2,
}

impl VantagePoint {
    /// All vantage points, for sweeps.
    pub const ALL: [VantagePoint; 3] =
        [VantagePoint::Campus, VantagePoint::DigitalOcean, VantagePoint::Ec2];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            VantagePoint::Campus => "campus",
            VantagePoint::DigitalOcean => "digitalocean",
            VantagePoint::Ec2 => "ec2",
        }
    }

    /// (base-min, base-max, jitter) milliseconds for SLD-class servers.
    fn latency_profile(self) -> (u64, u64, u64) {
        match self {
            VantagePoint::Campus => (35, 75, 6),
            VantagePoint::DigitalOcean => (20, 55, 3),
            VantagePoint::Ec2 => (25, 60, 9),
        }
    }
}

/// Parameters for building an [`Internet`].
#[derive(Debug, Clone)]
pub struct InternetParams {
    /// The ranked domain population.
    pub population: PopulationParams,
    /// Active remedy (affects published TXT records, Z-bit advertising, and
    /// the registry's owner-name hashing).
    pub remedy: RemedyMode,
    /// Highest rank that will be queried; bounds how much of the DLV
    /// repository is materialised.
    pub query_limit: usize,
    /// Negative-caching TTL of the registry's NSEC spans.
    pub dlv_span_ttl: u32,
    /// Denial-of-existence mechanism of the DLV registry (§7.3: NSEC3
    /// forfeits aggressive negative caching).
    pub dlv_denial: lookaside_zone::DenialMode,
    /// Latency seed.
    pub seed: u64,
    /// Capture filter for the network.
    pub capture: CaptureFilter,
    /// Where the measurement runs from (latency profile only).
    pub vantage: VantagePoint,
    /// Decommission stage of the DLV registry (the 2017 wind-down
    /// timeline and its failure variants).
    pub dlv_stage: DecommissionStage,
    /// Scheduled registry stage transitions `(at_ns, stage)`, applied in
    /// simulated time on top of the initial [`Self::dlv_stage`] — the
    /// lifecycle sweep uses this to corrupt and heal the registry while
    /// a key timeline is in motion.
    pub dlv_schedule: Vec<(u64, DecommissionStage)>,
}

impl InternetParams {
    /// Sensible defaults for a top-`limit` experiment.
    pub fn for_top(limit: usize, population: PopulationParams, remedy: RemedyMode) -> Self {
        InternetParams {
            population,
            remedy,
            query_limit: limit,
            dlv_span_ttl: DLV_SPAN_TTL,
            dlv_denial: lookaside_zone::DenialMode::Nsec,
            seed: 0x1ce,
            capture: CaptureFilter::DlvOnly,
            vantage: VantagePoint::Campus,
            dlv_stage: DecommissionStage::Populated,
            dlv_schedule: Vec::new(),
        }
    }
}

/// The oracle mapping names to synthetic zone attributes: ranked domains,
/// hosting providers, the huque45 corpus, and `isc.org`'s delegation data.
pub struct CoreOracle {
    population: DomainPopulation,
    remedy: RemedyMode,
    huque: Vec<HuqueDomain>,
    huque_addr: Ipv4Addr,
    isc_key_seed: u64,
}

impl CoreOracle {
    fn spec_for_domain(&self, attrs: &lookaside_workload::DomainAttrs) -> SyntheticSpec {
        let ns_hosts = if attrs.self_hosted {
            vec![
                (attrs.name.prepend("ns1").expect("ns1"), attrs.server_addr),
                (attrs.name.prepend("ns2").expect("ns2"), attrs.server_addr),
            ]
        } else {
            let h = self.population.hoster(attrs.hoster.expect("hosted domain has hoster"));
            vec![
                (h.name.prepend("ns1").expect("ns1"), h.server_addr),
                (h.name.prepend("ns2").expect("ns2"), h.server_addr),
            ]
        };
        SyntheticSpec {
            apex: attrs.name.clone(),
            signed: attrs.signed,
            ds_in_parent: attrs.ds_in_parent,
            dlv_deposited: attrs.deposited,
            key_seed: attrs.key_seed,
            txt_signal: (self.remedy == RemedyMode::TxtSignal).then_some(attrs.deposited),
            z_signal: self.remedy == RemedyMode::ZBit,
            ns_hosts,
            server_addr: attrs.server_addr,
        }
    }

    fn spec_for_hoster(&self, attrs: &lookaside_workload::HosterAttrs) -> SyntheticSpec {
        SyntheticSpec {
            apex: attrs.name.clone(),
            signed: attrs.signed,
            ds_in_parent: attrs.ds_in_parent,
            dlv_deposited: false,
            key_seed: attrs.key_seed,
            txt_signal: (self.remedy == RemedyMode::TxtSignal).then_some(false),
            z_signal: self.remedy == RemedyMode::ZBit,
            ns_hosts: vec![
                (attrs.name.prepend("ns1").expect("ns1"), attrs.server_addr),
                (attrs.name.prepend("ns2").expect("ns2"), attrs.server_addr),
            ],
            server_addr: attrs.server_addr,
        }
    }

    fn spec_for_huque(&self, domain: &HuqueDomain) -> SyntheticSpec {
        SyntheticSpec {
            apex: domain.name.clone(),
            signed: domain.signed,
            ds_in_parent: domain.ds_in_parent,
            dlv_deposited: domain.deposited,
            key_seed: domain.key_seed,
            txt_signal: (self.remedy == RemedyMode::TxtSignal).then_some(domain.deposited),
            z_signal: self.remedy == RemedyMode::ZBit,
            ns_hosts: vec![(domain.name.prepend("ns1").expect("ns1"), self.huque_addr)],
            server_addr: self.huque_addr,
        }
    }

    fn spec_for_isc(&self) -> SyntheticSpec {
        let apex = Name::parse("isc.org.").expect("static name");
        SyntheticSpec {
            apex: apex.clone(),
            signed: true,
            ds_in_parent: true,
            dlv_deposited: false,
            key_seed: self.isc_key_seed,
            txt_signal: (self.remedy == RemedyMode::TxtSignal).then_some(false),
            z_signal: false,
            ns_hosts: vec![(apex.prepend("ns1").expect("ns1"), ISC_ADDR)],
            server_addr: ISC_ADDR,
        }
    }
}

impl ZoneOracle for CoreOracle {
    fn sld_spec(&self, qname: &Name) -> Option<SyntheticSpec> {
        if qname.label_count() < 2 {
            return None;
        }
        let apex = qname.suffix(2);
        if apex == Name::parse("isc.org.").expect("static name") {
            return Some(self.spec_for_isc());
        }
        if let Some(d) = self.huque.iter().find(|d| d.name == apex) {
            return Some(self.spec_for_huque(d));
        }
        match self.population.entry_of(qname)? {
            PopEntry::Domain(attrs) => Some(self.spec_for_domain(&attrs)),
            PopEntry::Hoster(attrs) => Some(self.spec_for_hoster(&attrs)),
        }
    }
}

/// A fully built simulated Internet plus the data the experiments need to
/// interpret traffic.
pub struct Internet {
    /// The network carrying all traffic.
    pub net: Network,
    /// Root zone KSK — the trust anchor a correctly configured resolver
    /// loads.
    pub root_anchor: PublicKey,
    /// DLV registry KSK — the `bind.keys` DLV anchor.
    pub dlv_anchor: PublicKey,
    /// Registry apex (`dlv.isc.org.`).
    pub dlv_apex: Name,
    /// Domains with deposits, for ground-truth classification.
    pub deposits: BTreeSet<Name>,
    /// The population behind the oracle.
    pub population: DomainPopulation,
    /// Parameters the Internet was built with.
    pub params: InternetParams,
    /// The shared zone oracle, kept so lifecycle timelines can rebuild
    /// TLD authorities per epoch.
    oracle: Rc<CoreOracle>,
}

impl Internet {
    /// Builds the whole topology.
    pub fn build(params: InternetParams) -> Self {
        let population = DomainPopulation::new(params.population);
        let huque = huque45();
        let huque_addr = Ipv4Addr::new(10, 3, 0, 1);
        let isc_key_seed = 0x15c_0000;

        let oracle: Rc<CoreOracle> = Rc::new(CoreOracle {
            population: population.clone(),
            remedy: params.remedy,
            huque: huque.clone(),
            huque_addr,
            isc_key_seed,
        });

        let mut net = Network::new(params.seed);
        net.set_capture_filter(params.capture);
        let mut latency = LatencyModel::new(params.seed ^ 0x1a7);
        // Anycast infrastructure (root, TLDs, the registry's parent chain)
        // is close; SLD content servers are farther — this is what makes the
        // TXT remedy's latency overhead exceed its query-count overhead
        // (§6.2.3, Fig. 10a).
        latency.pin(ROOT_ADDR, 8, 16);
        for i in 0..lookaside_workload::TLDS.len() {
            latency.pin(tld_addr(i), 8, 20);
        }
        latency.pin(ISC_ADDR, 12, 24);
        latency.pin(DLV_ADDR, 15, 30);
        let (base_min, base_max, jitter) = params.vantage.latency_profile();
        net.set_latency(latency.with_base_range(base_min, base_max).with_jitter(jitter));

        // Root zone.
        let root_keys = SigningKeys::from_seed(ROOT_KEY_SEED);
        let root = Self::root_zone_data();
        let root_zone = PublishedZone::signed(root, &root_keys, INCEPTION, EXPIRATION);
        net.register(ROOT_ADDR, "root", Box::new(AuthoritativeServer::single(root_zone)));

        // TLD authorities (synthetic).
        for (i, tld) in lookaside_workload::TLDS.iter().enumerate() {
            let apex = Name::parse(tld.label).expect("valid tld");
            let authority = SyntheticAuthority::tld(
                apex,
                SigningKeys::from_seed(tld_key_seed(i)),
                tld.signed,
                oracle.clone(),
                INCEPTION,
                EXPIRATION,
            );
            net.register(tld_addr(i), tld.label, Box::new(authority));
        }

        // isc.org (real, signed; delegates dlv.isc.org with DS).
        let isc_keys = SigningKeys::from_seed(isc_key_seed);
        let dlv_keys = SigningKeys::from_seed(0xd17);
        let isc_apex = Name::parse("isc.org.").unwrap();
        let dlv_apex = Name::parse("dlv.isc.org.").unwrap();
        let mut isc = Zone::new(isc_apex.clone(), isc_apex.prepend("ns1").unwrap());
        isc.add(isc_apex.prepend("ns1").unwrap(), 3600, RData::A(ISC_ADDR));
        isc.add(isc_apex, 3600, RData::A(ISC_ADDR));
        isc.delegate(dlv_apex.clone(), &[(dlv_apex.prepend("ns").unwrap(), DLV_ADDR)])
            .expect("delegate dlv");
        isc.add_ds(dlv_apex.clone(), ds_rdata(&dlv_apex, &dlv_keys.ksk.public()));
        let isc_zone = PublishedZone::signed(isc, &isc_keys, INCEPTION, EXPIRATION);
        net.register(ISC_ADDR, "isc.org", Box::new(AuthoritativeServer::single(isc_zone)));

        // The DLV registry: calibrated neighbours + real deposits.
        let mut registry_deposits = Vec::new();
        let mut deposits = BTreeSet::new();
        for rank in population.repo_neighbours(params.query_limit) {
            let domain = population.repo_neighbour_name(rank);
            let ksk = KeyPair::generate_ksk(population.repo_neighbour_key_seed(rank));
            registry_deposits.push(DlvDeposit { domain: domain.clone(), ksk: ksk.public() });
            deposits.insert(domain);
        }
        for rank in population.deposited_ranks(params.query_limit) {
            let attrs = population.attributes(rank);
            let keys = SigningKeys::from_seed(attrs.key_seed);
            registry_deposits
                .push(DlvDeposit { domain: attrs.name.clone(), ksk: keys.ksk.public() });
            deposits.insert(attrs.name);
        }
        for domain in huque.iter().filter(|d| d.deposited) {
            let keys = SigningKeys::from_seed(domain.key_seed);
            registry_deposits
                .push(DlvDeposit { domain: domain.name.clone(), ksk: keys.ksk.public() });
            deposits.insert(domain.name.clone());
        }
        let mut registry = DlvRegistry::with_denial(
            dlv_apex.clone(),
            &registry_deposits,
            &dlv_keys,
            INCEPTION,
            EXPIRATION,
            params.remedy == RemedyMode::HashedDlv,
            params.dlv_span_ttl,
            params.dlv_denial,
        );
        registry.set_stage(params.dlv_stage);
        for &(at_ns, stage) in &params.dlv_schedule {
            registry.schedule_stage(at_ns, stage);
        }
        net.register(DLV_ADDR, "dlv-registry", Box::new(registry));

        // Everything else — ranked SLDs, hosters, huque zones — is served by
        // the default-route synthetic authority.
        let sld_authority = SyntheticAuthority::sld_default(oracle.clone(), INCEPTION, EXPIRATION);
        net.set_default_route(Box::new(sld_authority));

        Internet {
            net,
            root_anchor: root_keys.ksk.public(),
            dlv_anchor: dlv_keys.ksk.public(),
            dlv_apex,
            deposits,
            population,
            params,
            oracle,
        }
    }

    /// The root zone's data: TLD delegations plus DS records for the
    /// signed TLDs. Shared by the static seed root and the epoch-published
    /// lifecycle roots, which must serve identical data at epoch 0.
    fn root_zone_data() -> Zone {
        let mut root = Zone::new(Name::root(), Name::parse("a.root-servers.net.").unwrap());
        for (i, tld) in lookaside_workload::TLDS.iter().enumerate() {
            let apex = Name::parse(tld.label).expect("valid tld");
            let ns = apex.prepend("ns").expect("ns name");
            root.delegate(apex.clone(), &[(ns, tld_addr(i))]).expect("delegate tld");
            if tld.signed {
                let keys = SigningKeys::from_seed(tld_key_seed(i));
                root.add_ds(apex.clone(), ds_rdata(&apex, &keys.ksk.public()));
            }
        }
        root
    }

    /// Swaps the static root for an epoch-serving authority replaying
    /// `timeline`'s key lifecycle out to `horizon_secs`. With base seed
    /// [`ROOT_KEY_SEED`] the generation-0 keys equal the static root's, so
    /// traffic at simulated time 0 is byte-identical to before the swap.
    /// The advertised trust anchor follows the timeline's generation-0 KSK.
    pub fn install_root_timeline(&mut self, timeline: &KeyTimeline, horizon_secs: u32) {
        let authority = EpochAuthority::from_epochs(
            &Self::root_zone_data(),
            &timeline.epochs(horizon_secs),
            DenialMode::Nsec,
        );
        let replaced = self.net.replace_node(ROOT_ADDR, "root", Box::new(authority));
        assert!(replaced, "root node must exist before a timeline takes over");
        self.root_anchor = timeline.initial_keys().ksk.public();
    }

    /// The key seed a [`KeyTimeline`] must use as `base_seed` for its
    /// generation-0 keys to equal `target`'s static signing keys — the
    /// property that makes a timeline take-over invisible at epoch 0.
    ///
    /// # Panics
    ///
    /// Panics on an unknown TLD label.
    pub fn timeline_base_seed(target: &LifecycleTarget) -> u64 {
        match target {
            LifecycleTarget::Root => ROOT_KEY_SEED,
            LifecycleTarget::Tld(label) => {
                let index = lookaside_workload::TLDS
                    .iter()
                    .position(|t| t.label == label.as_str())
                    .unwrap_or_else(|| panic!("unknown TLD {label:?}"));
                tld_key_seed(index)
            }
        }
    }

    /// Swaps the static authority of TLD `label` for an epoch router
    /// replaying `timeline` out to `horizon_secs`: each epoch is a full
    /// synthetic TLD authority rebuilt with that epoch's signer keys and
    /// RRSIG validity window, so a late re-sign makes *this TLD's*
    /// referral/DS signatures lapse while every other zone stays healthy.
    ///
    /// With `base_seed = Self::timeline_base_seed(..)` epoch 0 serves
    /// byte-identical data to the static authority. The root's DS record
    /// stays on the generation-0 KSK (the static root is not rebuilt), so
    /// re-sign schedules and [`lookaside_zone::LifecycleFault::LateResign`]
    /// reproduce exactly, while a KSK roll here behaves as
    /// parent-DS-never-updated — the real-world failure that motivated DLV
    /// in the first place.
    ///
    /// # Panics
    ///
    /// Panics on an unknown TLD label.
    pub fn install_tld_timeline(&mut self, label: &str, timeline: &KeyTimeline, horizon_secs: u32) {
        let index = lookaside_workload::TLDS
            .iter()
            .position(|t| t.label == label)
            .unwrap_or_else(|| panic!("unknown TLD {label:?}"));
        let tld = &lookaside_workload::TLDS[index];
        let apex = Name::parse(tld.label).expect("valid tld");
        let oracle = self.oracle.clone();
        let router = EpochRouter::new(
            timeline
                .epochs(horizon_secs)
                .iter()
                .map(|epoch| {
                    let keys = SigningKeys {
                        zsk: *epoch.keyset.zsk_signer(),
                        ksk: *epoch.keyset.ksk_signer(),
                    };
                    let authority = SyntheticAuthority::tld(
                        apex.clone(),
                        keys,
                        tld.signed,
                        oracle.clone(),
                        epoch.inception,
                        epoch.expiration,
                    );
                    (u64::from(epoch.start_secs) * NS_PER_SEC, authority)
                })
                .collect(),
        );
        let replaced = self.net.replace_node(tld_addr(index), tld.label, Box::new(router));
        assert!(replaced, "TLD node must exist before a timeline takes over");
    }

    /// Installs `timeline` on whichever zone `target` names — the root or
    /// a single TLD.
    pub fn install_timeline(
        &mut self,
        target: &LifecycleTarget,
        timeline: &KeyTimeline,
        horizon_secs: u32,
    ) {
        match target {
            LifecycleTarget::Root => self.install_root_timeline(timeline, horizon_secs),
            LifecycleTarget::Tld(label) => self.install_tld_timeline(label, timeline, horizon_secs),
        }
    }

    /// Builds a resolver wired to this Internet.
    pub fn resolver(&self, config: ResolverConfig, salt: u64) -> RecursiveResolver {
        self.resolver_with_features(config, FeatureModel::default(), salt)
    }

    /// Builds a resolver with a custom behavioural feature model (e.g.
    /// QNAME minimisation on, aggressive NSEC caching off).
    pub fn resolver_with_features(
        &self,
        config: ResolverConfig,
        features: FeatureModel,
        salt: u64,
    ) -> RecursiveResolver {
        RecursiveResolver::new(ResolverSetup {
            config,
            features,
            remedy: self.params.remedy,
            root_hint: ROOT_ADDR,
            root_anchor: self.root_anchor,
            dlv_apex: self.dlv_apex.clone(),
            dlv_anchor: self.dlv_anchor,
            salt,
        })
    }

    /// Ground truth: does `domain` (or an enclosing name) have a deposit?
    pub fn is_deposited(&self, domain: &Name) -> bool {
        let mut cur = Some(domain.clone());
        while let Some(name) = cur {
            if name.is_root() {
                return false;
            }
            if self.deposits.contains(&name) {
                return true;
            }
            cur = name.parent();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_resolver::{BindConfig, SecurityStatus};
    use lookaside_wire::RrType;

    fn small_params() -> InternetParams {
        let population = PopulationParams { size: 2000, ..PopulationParams::default() };
        // query_limit covers the whole population so tests may probe any
        // rank's deposit.
        InternetParams::for_top(2000, population, RemedyMode::None)
    }

    #[test]
    fn build_registers_core_infrastructure() {
        let internet = Internet::build(small_params());
        assert!(internet.net.has_node(ROOT_ADDR));
        assert!(internet.net.has_node(ISC_ADDR));
        assert!(internet.net.has_node(DLV_ADDR));
        assert!(!internet.deposits.is_empty());
    }

    #[test]
    fn popular_domain_resolves() {
        let mut internet = Internet::build(small_params());
        let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 1);
        let qname = internet.population.domain(1);
        let res = resolver.resolve(&mut internet.net, &qname, RrType::A).unwrap();
        assert_eq!(res.rcode, lookaside_wire::Rcode::NoError);
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn signed_secure_domain_validates_without_dlv() {
        let mut internet = Internet::build(small_params());
        // Find a signed domain with DS under a signed TLD.
        let rank = (1..2000)
            .find(|&r| {
                let a = internet.population.attributes(r);
                a.signed && a.ds_in_parent
            })
            .expect("population contains secure domains");
        let qname = internet.population.domain(rank);
        let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 2);
        let res = resolver.resolve(&mut internet.net, &qname, RrType::A).unwrap();
        assert_eq!(res.status, SecurityStatus::Secure, "rank {rank} ({qname})");
        assert!(!res.secured_via_dlv);
    }

    #[test]
    fn deposited_island_secures_via_dlv() {
        let mut internet = Internet::build(small_params());
        let rank = internet
            .population
            .deposited_ranks(2000)
            .next()
            .expect("population contains deposited islands");
        let qname = internet.population.domain(rank);
        let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 3);
        let res = resolver.resolve(&mut internet.net, &qname, RrType::A).unwrap();
        assert_eq!(res.status, SecurityStatus::Secure, "rank {rank} ({qname})");
        assert!(res.secured_via_dlv);
    }

    #[test]
    fn unsigned_domain_leaks_to_registry() {
        let mut internet = Internet::build(small_params());
        let rank = (1..2000)
            .find(|&r| !internet.population.attributes(r).signed)
            .expect("most domains are unsigned");
        let qname = internet.population.domain(rank);
        let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 4);
        let res = resolver.resolve(&mut internet.net, &qname, RrType::A).unwrap();
        assert_eq!(res.status, SecurityStatus::Insecure);
        assert!(resolver.counters.dlv_queries_sent >= 1);
        let leaked: Vec<String> =
            internet.net.capture().dlv_queries().map(|p| p.qname.to_string()).collect();
        assert!(
            leaked
                .iter()
                .any(|q| q.starts_with(&qname.to_string().trim_end_matches('.').to_string())),
            "expected {qname} among {leaked:?}"
        );
    }

    #[test]
    fn tld_timeline_fault_severs_only_that_tld() {
        use lookaside_zone::{LifecycleFault, RolloverPolicy};

        let mut internet = Internet::build(small_params());
        let target = LifecycleTarget::Tld("com".to_string());
        let timeline = KeyTimeline {
            base_seed: Internet::timeline_base_seed(&target),
            policy: RolloverPolicy::steady(3_600, 5_000),
            fault: LifecycleFault::LateResign { resign_index: 1, delay_secs: 3_600 },
        };
        internet.install_timeline(&target, &timeline, 16_000);

        let anchored = |internet: &Internet, tld: &str, want: bool| {
            (1..2000)
                .find(|&r| {
                    let a = internet.population.attributes(r);
                    a.signed && a.ds_in_parent && ((a.tld == tld) == want)
                })
                .expect("anchored rank")
        };
        let com_rank = anchored(&internet, "com", true);
        let other_rank = anchored(&internet, "com", false);
        let com_name = internet.population.domain(com_rank);
        let other_name = internet.population.domain(other_rank);

        // Epoch 0 is byte-identical to the static authority: both chains
        // validate at t=0.
        let mut early = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 11);
        let res = early.resolve(&mut internet.net, &com_name, RrType::A).unwrap();
        assert_eq!(res.status, SecurityStatus::Secure, "epoch-0 take-over must be invisible");

        // Advance into the stale gap: the missed re-sign leaves .com's
        // signatures expired from t=5000 until the catch-up at t=7200.
        let target_ns = 6_000 * NS_PER_SEC;
        internet.net.advance(target_ns.saturating_sub(internet.net.now_ns()));
        let mut resolver = internet.resolver(ResolverConfig::Bind(BindConfig::correct()), 12);
        let com = resolver.resolve(&mut internet.net, &com_name, RrType::A).unwrap();
        assert_eq!(com.status, SecurityStatus::Bogus, "stale .com signatures fail closed");
        let other = resolver.resolve(&mut internet.net, &other_name, RrType::A).unwrap();
        assert_eq!(
            other.status,
            SecurityStatus::Secure,
            "{other_name} is outside the faulted TLD's blast radius"
        );
    }

    #[test]
    fn is_deposited_walks_enclosing_names() {
        let internet = Internet::build(small_params());
        let deposited = internet.deposits.iter().next().unwrap().clone();
        assert!(internet.is_deposited(&deposited));
        assert!(internet.is_deposited(&deposited.prepend("www").unwrap()));
        assert!(!internet.is_deposited(&Name::parse("never-there.com.").unwrap()));
    }
}
