//! Attack simulations from §6.2.3 (signaling attacks) and §6.2.4
//! (dictionary attack on hashed DLV).

use std::collections::BTreeMap;

use lookaside_crypto::hashed_dlv_label;
use lookaside_netsim::Direction;
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::{Message, Name, RData};
use serde::Serialize;

use crate::experiments::{run, RunConfig, RunOutcome};

/// Outcome of a man-in-the-middle attack on a remedy signal: leakage with
/// the remedy in place, and leakage once the attacker rewrites the signal.
#[derive(Debug, Clone, Serialize)]
pub struct SignalAttackOutcome {
    /// Case-2 leaks with the remedy active and unattacked.
    pub leaks_with_remedy: usize,
    /// Case-2 leaks under attack.
    pub leaks_under_attack: usize,
}

/// §6.2.3: an attacker flips the spare Z bit on every response, convincing
/// the resolver that every zone has a DLV deposit — re-enabling the leak
/// the Z-bit remedy had closed.
pub fn zbit_flip_attack(n: usize, seed: u64) -> SignalAttackOutcome {
    let mut config = RunConfig::for_top(n, RemedyMode::ZBit);
    config.seed = seed;
    let clean = run(&config);

    let attacked = run_with_tamper(&config, |msg, dir| {
        if dir == Direction::Response {
            msg.header.flags.z = true;
        }
    });
    SignalAttackOutcome {
        leaks_with_remedy: clean.leakage.case2,
        leaks_under_attack: attacked.leakage.case2,
    }
}

/// §6.2.3: an attacker rewrites `dlv=0` TXT signals to `dlv=1`.
pub fn txt_poison_attack(n: usize, seed: u64) -> SignalAttackOutcome {
    let mut config = RunConfig::for_top(n, RemedyMode::TxtSignal);
    config.seed = seed;
    let clean = run(&config);

    let attacked = run_with_tamper(&config, |msg, dir| {
        if dir == Direction::Response {
            for rec in &mut msg.answers {
                if let RData::Txt(segments) = &mut rec.rdata {
                    for seg in segments.iter_mut() {
                        if seg == "dlv=0" {
                            *seg = "dlv=1".to_string();
                        }
                    }
                }
            }
        }
    });
    SignalAttackOutcome {
        leaks_with_remedy: clean.leakage.case2,
        leaks_under_attack: attacked.leakage.case2,
    }
}

/// Like [`run`] but with a man-in-the-middle installed. Reimplements the
/// run loop because the tamper hook must be registered on the freshly
/// built network.
fn run_with_tamper(
    config: &RunConfig,
    tamper: impl FnMut(&mut Message, Direction) + 'static,
) -> RunOutcome {
    use crate::internet::{Internet, InternetParams};
    use lookaside_wire::RrType;

    let limit = match &config.queries {
        crate::experiments::QuerySet::Top(n) => *n,
        other => panic!("tampered runs support Top(n) query sets, got {other:?}"),
    };
    let mut params = InternetParams::for_top(limit, config.population, config.remedy);
    params.seed = config.seed;
    params.capture = config.capture;
    params.dlv_span_ttl = config.dlv_span_ttl;
    let mut internet = Internet::build(params);
    internet.net.set_tamper(Some(Box::new(tamper)));
    let mut resolver = internet.resolver(config.resolver, config.seed ^ 0x5a17);
    let names = internet.population.top(limit);
    for name in &names {
        let _ = resolver.resolve(&mut internet.net, name, RrType::A);
    }
    RunOutcome {
        stats: internet.net.stats().clone(),
        leakage: crate::leakage::classify(internet.net.capture(), &internet.dlv_apex),
        counters: resolver.counters,
        statuses: Default::default(),
        elapsed_ns: internet.net.now_ns(),
        queried: names.len(),
    }
}

/// §6.2.4 dictionary attack on hashed DLV.
#[derive(Debug, Clone, Serialize)]
pub struct DictionaryOutcome {
    /// Hashed labels observed at the registry.
    pub observed: usize,
    /// Candidate names hashed by the attacker.
    pub dictionary_size: usize,
    /// Hash evaluations performed (= dictionary size; each candidate is
    /// hashed once).
    pub hash_ops: u64,
    /// Observed labels whose preimage the dictionary recovered.
    pub recovered: usize,
}

impl DictionaryOutcome {
    /// Fraction of observed hashed queries de-anonymised.
    pub fn recovery_rate(&self) -> f64 {
        if self.observed == 0 {
            return 0.0;
        }
        self.recovered as f64 / self.observed as f64
    }
}

/// Runs a hashed-DLV workload, collects the hashed labels the registry
/// observed, then mounts a dictionary attack with the given candidate set.
pub fn dictionary_attack<I>(n: usize, seed: u64, dictionary: I) -> DictionaryOutcome
where
    I: IntoIterator<Item = Name>,
{
    let mut config = RunConfig::for_top(n, RemedyMode::HashedDlv);
    config.seed = seed;
    let outcome = run(&config);
    // Observed hashed labels (first label of each leaked query name).
    let observed: Vec<String> =
        outcome.leakage.leaked_names.iter().map(|name| name.label(0).to_string()).collect();

    let mut table: BTreeMap<String, Name> = BTreeMap::new();
    let mut hash_ops = 0u64;
    for candidate in dictionary {
        table.insert(hashed_dlv_label(&candidate), candidate);
        hash_ops += 1;
    }
    let recovered = observed.iter().filter(|label| table.contains_key(*label)).count();
    DictionaryOutcome {
        observed: observed.len(),
        dictionary_size: table.len(),
        hash_ops,
        recovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_workload::{DomainPopulation, PopulationParams};

    #[test]
    fn zbit_flip_reenables_leakage() {
        let outcome = zbit_flip_attack(50, 31);
        assert_eq!(outcome.leaks_with_remedy, 0, "remedy works unattacked");
        assert!(outcome.leaks_under_attack > 10, "attack re-enables leaks");
    }

    #[test]
    fn txt_poison_reenables_leakage() {
        let outcome = txt_poison_attack(50, 33);
        assert_eq!(outcome.leaks_with_remedy, 0);
        assert!(outcome.leaks_under_attack > 10);
    }

    #[test]
    fn full_dictionary_recovers_everything() {
        let pop =
            DomainPopulation::new(PopulationParams { size: 1000, ..PopulationParams::default() });
        let dictionary: Vec<_> = (1..=200).map(|r| pop.domain(r)).collect();
        let outcome = dictionary_attack(60, 35, dictionary);
        assert!(outcome.observed > 0);
        // Every queried *ranked* domain is in the attacker's dictionary;
        // hoster zones and unsigned TLDs also leak hashes but are not
        // candidates, so recovery sits well below 100 % yet far above the
        // small-dictionary case.
        // Hash-space NSEC spans suppress many lookups, so the observed set
        // is a fraction of the queried set.
        assert!(outcome.recovered > 10, "recovered {}", outcome.recovered);
        assert!(outcome.recovery_rate() > 0.25, "rate {}", outcome.recovery_rate());
    }

    #[test]
    fn small_dictionary_recovers_little() {
        let pop =
            DomainPopulation::new(PopulationParams { size: 1000, ..PopulationParams::default() });
        // Candidates far outside the queried top-60.
        let dictionary: Vec<_> = (500..=520).map(|r| pop.domain(r)).collect();
        let outcome = dictionary_attack(60, 35, dictionary);
        assert_eq!(outcome.recovered, 0);
        assert_eq!(outcome.hash_ops, 21);
    }
}
