//! Streaming execution mode: fold packets into accumulators as they
//! happen, never materialize a capture.
//!
//! The batch pipeline is faithful to the paper — run, capture, classify
//! the pcap — but it holds O(packets) memory per shard. Streaming mode
//! replaces the capture with a [`LeakSink`]: a [`PacketSink`] installed on
//! the network that applies the run's [`CaptureFilter`] and folds each
//! retained packet straight into a [`LeakageReport`]. The simulation path
//! is untouched (same exchanges, same virtual clock, same RNG draws), so
//! the two modes are **byte-identical** by construction:
//!
//! * [`crate::leakage::classify`] examines packets independently, so
//!   per-packet classification commutes with capture-then-classify;
//! * the sink applies retention via [`CaptureFilter::keeps`] — the same
//!   predicate `Capture::record` uses — not a re-derived rule;
//! * shard reductions fold in ascending shard id
//!   ([`lookaside_engine::Executor::run_fold`]), the order batch merges
//!   captures in.
//!
//! The equivalence suite (`tests/stream_equivalence.rs`) pins the contract
//! down for every experiment family at several worker counts; `ci.sh`
//! additionally byte-diffs `repro --stream` output against batch.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use lookaside_engine::{Checkpoint, Executor, ShardPlan};
use lookaside_netsim::{CaptureFilter, Direction, Packet, PacketSink};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::{Name, Rcode, RrType};
use lookaside_workload::{DitlTrace, Zipf};

use crate::experiments::{
    count_leaked_ranked, Fig12Data, LeakPoint, RunConfig, RunOutcome, StatusTally,
};
use crate::internet::{Internet, InternetParams};
use crate::leakage::LeakageReport;

/// Which execution path an experiment takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Capture packets, classify afterwards — the paper's pcap pipeline
    /// and the correctness oracle (`repro --batch` / `LOOKASIDE_BATCH`).
    Batch,
    /// Fold packets into accumulators on the fly — O(shards) memory.
    /// The default since PR 9.
    #[default]
    Stream,
}

impl ExecMode {
    /// The session's mode: [`ExecMode::Stream`] unless `LOOKASIDE_BATCH`
    /// opts back into the capture oracle (`1`/`true`/`on`);
    /// `LOOKASIDE_STREAM` wins when both are set.
    pub fn from_env() -> Self {
        if lookaside_engine::stream_requested() {
            ExecMode::Stream
        } else {
            ExecMode::Batch
        }
    }

    /// Whether this is the streaming path.
    pub fn is_stream(self) -> bool {
        self == ExecMode::Stream
    }
}

/// The streaming Case-1/Case-2 classifier: `classify()` refactored into a
/// per-packet fold, plus the capture's retention filter.
///
/// Observes every packet the network builds, keeps the ones the run's
/// [`CaptureFilter`] would have retained, and applies exactly the
/// per-packet logic of [`crate::leakage::classify`]. After the run the
/// accumulated [`LeakageReport`] equals classifying the capture the batch
/// path would have recorded.
#[derive(Debug, Clone)]
pub struct LeakSink {
    filter: CaptureFilter,
    dlv_apex: Name,
    /// The report accumulated so far.
    pub report: LeakageReport,
}

impl LeakSink {
    /// A sink for a run using `filter`, classifying against `dlv_apex`.
    pub fn new(filter: CaptureFilter, dlv_apex: Name) -> Self {
        LeakSink { filter, dlv_apex, report: LeakageReport::default() }
    }
}

impl PacketSink for LeakSink {
    fn observe(&mut self, packet: &Packet) {
        // Retention first (the `Capture::record` predicate), then the
        // classifier's own DLV-type filter — `classify` only ever looks
        // at DLV packets, whatever the capture retained.
        if !self.filter.keeps(packet.qtype) || packet.qtype != RrType::Dlv {
            return;
        }
        match packet.direction {
            Direction::Query => self.report.dlv_queries += 1,
            Direction::Response => {
                self.report.dlv_responses += 1;
                match (packet.rcode, packet.answers) {
                    (Rcode::NoError, answers) if answers > 0 => self.report.case1 += 1,
                    (Rcode::NoError, _) | (Rcode::NxDomain, _) => {
                        self.report.case2 += 1;
                        let leaked = packet
                            .qname
                            .strip_suffix(&self.dlv_apex)
                            .filter(|n| !n.is_root())
                            .unwrap_or_else(|| packet.qname.clone());
                        self.report.leaked_names.insert(leaked);
                    }
                    _ => {}
                }
            }
        }
    }

    fn reset(&mut self) {
        self.report = LeakageReport::default();
    }
}

/// [`crate::experiments::run`] in streaming mode: same simulation, no
/// capture — the network retains nothing and a [`LeakSink`] folds the
/// packet stream into the [`LeakageReport`] directly.
pub fn run_stream(config: &RunConfig) -> RunOutcome {
    let limit = config.queries.max_rank().max(1);
    let mut params = InternetParams::for_top(limit, config.population, config.remedy);
    params.dlv_span_ttl = config.dlv_span_ttl;
    params.dlv_denial = config.dlv_denial;
    params.seed = config.seed;
    // The sink replaces the capture; the network stores nothing. The
    // *run's* filter still applies — inside the sink.
    params.capture = CaptureFilter::None;
    let mut internet = Internet::build(params);
    let sink = Rc::new(RefCell::new(LeakSink::new(config.capture, internet.dlv_apex.clone())));
    internet.net.set_observer(Box::new(Rc::clone(&sink)));
    let mut resolver = internet.resolver(config.resolver, config.seed ^ 0x5a17);
    let names = config.queries.names(&internet);
    let mut statuses = StatusTally::default();
    for name in &names {
        let result = resolver.resolve(&mut internet.net, name, RrType::A);
        crate::parallel::tally(&mut statuses, &result);
    }
    let leakage = sink.borrow().report.clone();
    RunOutcome {
        stats: internet.net.stats().clone(),
        leakage,
        counters: resolver.counters,
        statuses,
        elapsed_ns: internet.net.now_ns(),
        queried: names.len(),
    }
}

/// [`crate::experiments::fig8_9_with`] on the streaming path: each dataset
/// size is still one shard, but every shard runs capture-less and under
/// the session supervisor — failed sizes are retried within the bounded
/// budget, and with `--allow-partial` a still-failing size is dropped
/// from the point list (its absence is printed, never silent).
pub fn fig8_9_stream(exec: &Executor, sizes: &[usize], seed: u64) -> Vec<LeakPoint> {
    let shards = ShardPlan::new(seed).over(sizes.iter().copied());
    let sup = crate::parallel::supervisor();
    crate::parallel::accept(exec.run_fold_supervised(
        &shards,
        |shard| {
            let n = shard.input;
            let mut config = RunConfig::for_top(n, RemedyMode::None);
            config.seed = seed;
            let outcome = run_stream(&config);
            LeakPoint {
                n,
                dlv_queries: outcome.leakage.dlv_queries,
                leaked_domains: count_leaked_ranked(&outcome),
                proportion: count_leaked_ranked(&outcome) as f64 / n as f64,
                suppressed: outcome.counters.dlv_suppressed_by_nsec,
            }
        },
        Vec::with_capacity(sizes.len()),
        |mut acc, _shard, point| {
            acc.push(point);
            acc
        },
        &sup,
    ))
}

/// Prefix-sum accumulator for the Fig. 12 cumulative series — the fold
/// state [`fig12_stream`] threads through the window shards.
struct Fig12Acc {
    cum_q: u64,
    cum_base: u64,
    cum_overhead: u64,
    queries: Vec<u64>,
    baseline: Vec<u64>,
    overhead: Vec<u64>,
}

/// [`crate::experiments::fig12_with`] on the streaming path.
///
/// Calibration runs stream (capture-less); the trace windows run through
/// [`Executor::run_fold_supervised`], which folds each window's minute
/// triples into the cumulative prefix sums **as windows complete**, in
/// shard order — so the reduction holds one window's triples at a time
/// instead of all seven, and the arithmetic happens in exactly the order
/// the batch concatenation performs it.
///
/// With `LOOKASIDE_CHECKPOINT` set (the `repro --checkpoint` /
/// `--resume` flags) the window sweep journals through
/// [`fig12_stream_checkpointed`] instead.
pub fn fig12_stream(exec: &Executor, seed: u64, scale: u64) -> Fig12Data {
    match lookaside_engine::checkpoint_path() {
        Some(path) => fig12_stream_checkpointed(exec, seed, scale, Path::new(&path)),
        None => fig12_stream_inner(exec, seed, scale, None),
    }
}

/// [`fig12_stream`] journalling every completed window shard to
/// `journal`: an atomic, CRC-checked [`Checkpoint`] file keyed by a
/// fingerprint of `(seed, scale, window count)`. A run killed mid-sweep
/// resumes from the journal's valid prefix — already-journalled windows
/// fold back without re-running — and produces byte-identical output; a
/// journal written under different parameters is refused.
pub fn fig12_stream_checkpointed(
    exec: &Executor,
    seed: u64,
    scale: u64,
    journal: &Path,
) -> Fig12Data {
    fig12_stream_inner(exec, seed, scale, Some(journal))
}

fn fig12_stream_inner(exec: &Executor, seed: u64, scale: u64, journal: Option<&Path>) -> Fig12Data {
    assert!(scale >= 1);
    let trace = DitlTrace::generate(seed);
    let sup = crate::parallel::supervisor();

    let calib = ShardPlan::new(seed ^ 0xca11b).over([RemedyMode::None, RemedyMode::TxtSignal]);
    let calibrated = crate::parallel::accept(exec.run_supervised(
        &calib,
        |shard| {
            let mut cfg = RunConfig::quick(60);
            cfg.remedy = shard.input;
            cfg.capture = CaptureFilter::None;
            run_stream(&cfg)
        },
        &sup,
    ));
    let (base, txt) = match (&calibrated[0], &calibrated[1]) {
        (Some(base), Some(txt)) => (base, txt),
        // Every window cost derives from calibration; there is no
        // partial figure without it, --allow-partial or not.
        _ => panic!("fig12 calibration shard failed; the figure cannot be produced"),
    };
    let cold_bytes_per_resolution = base.stats.total_bytes() as f64 / base.queried as f64;
    let txt_probes = txt.stats.queries_of(RrType::Txt).max(1);
    let txt_bytes_per_probe = txt.stats.bytes_of(RrType::Txt) as f64 / txt_probes as f64;
    let stub_bytes_per_query = 130.0;

    let windows: Vec<Vec<u64>> =
        trace.per_minute().chunks(60).map(|chunk| chunk.to_vec()).collect();
    let window_count = windows.len() as u64;
    let shards = ShardPlan::new(seed ^ 0xd17f).over(windows);
    let minutes_total = trace.per_minute().len();
    let task = |shard: &lookaside_engine::Shard<Vec<u64>>| {
        let zipf = Zipf::new(2_000_000, 0.92);
        let mut seen = vec![false; zipf.n() + 1];
        let mut rng_state = shard.seed;
        let mut next = || {
            rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = rng_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut minutes = Vec::with_capacity(shard.input.len());
        for &volume in &shard.input {
            let sampled = volume / scale;
            let mut misses = 0u64;
            for _ in 0..sampled {
                let domain = zipf.sample_hash(next());
                if !seen[domain] {
                    seen[domain] = true;
                    misses += 1;
                }
            }
            let scaled_misses = misses * scale;
            let base_bytes = (volume as f64 * stub_bytes_per_query) as u64
                + (scaled_misses as f64 * cold_bytes_per_resolution) as u64;
            let overhead_bytes = (scaled_misses as f64 * txt_bytes_per_probe) as u64;
            minutes.push((volume, base_bytes, overhead_bytes));
        }
        minutes
    };
    let init = Fig12Acc {
        cum_q: 0,
        cum_base: 0,
        cum_overhead: 0,
        queries: Vec::with_capacity(minutes_total),
        baseline: Vec::with_capacity(minutes_total),
        overhead: Vec::with_capacity(minutes_total),
    };
    let fold = |mut acc: Fig12Acc, _window: usize, minutes: Vec<(u64, u64, u64)>| {
        for (volume, base_bytes, overhead_bytes) in minutes {
            acc.cum_q += volume;
            acc.cum_base += base_bytes;
            acc.cum_overhead += overhead_bytes;
            acc.queries.push(acc.cum_q);
            acc.baseline.push(acc.cum_base);
            acc.overhead.push(acc.cum_overhead);
        }
        acc
    };
    let outcome = match journal {
        Some(path) => {
            // The fingerprint binds the journal to everything that shapes
            // a window's bytes; resuming under different parameters is a
            // refusal, not a silent mix of two runs.
            let run_id =
                lookaside_engine::run_fingerprint(&[0xf161_2a11, seed, scale, window_count]);
            let mut ckpt = Checkpoint::resume(path, run_id, 1)
                .unwrap_or_else(|e| panic!("fig12 journal {}: {e}", path.display()));
            exec.run_fold_checkpointed(&shards, task, init, fold, &sup, &mut ckpt)
                .unwrap_or_else(|e| panic!("fig12 journal {}: {e}", path.display()))
        }
        None => exec.run_fold_supervised(&shards, task, init, fold, &sup),
    };
    let acc = crate::parallel::accept(outcome);
    let overhead_mbps = acc.cum_overhead as f64 * 8.0 / (420.0 * 60.0) / 1e6;
    Fig12Data {
        per_minute: trace.per_minute().to_vec(),
        cumulative_queries: acc.queries,
        cumulative_baseline_bytes: acc.baseline,
        cumulative_overhead_bytes: acc.overhead,
        overhead_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run;

    fn assert_outcomes_match(stream: &RunOutcome, batch: &RunOutcome) {
        assert_eq!(stream.leakage, batch.leakage);
        assert_eq!(stream.stats, batch.stats);
        assert_eq!(stream.counters, batch.counters);
        assert_eq!(stream.statuses, batch.statuses);
        assert_eq!(stream.elapsed_ns, batch.elapsed_ns);
        assert_eq!(stream.queried, batch.queried);
    }

    #[test]
    fn stream_run_is_byte_identical_to_batch() {
        let config = RunConfig::quick(25);
        assert_outcomes_match(&run_stream(&config), &run(&config));
    }

    #[test]
    fn stream_honours_the_runs_capture_filter() {
        let mut config = RunConfig::quick(20);
        config.capture = CaptureFilter::None;
        let stream = run_stream(&config);
        let batch = run(&config);
        // A capture-less batch run classifies an empty capture; the sink
        // must reproduce that, not classify the unfiltered stream.
        assert_eq!(stream.leakage, LeakageReport::default());
        assert_outcomes_match(&stream, &batch);
    }

    #[test]
    fn stream_fig12_matches_batch_at_any_job_count() {
        for exec in [Executor::serial(), Executor::new(4)] {
            let stream = fig12_stream(&exec, 7, 500_000);
            let batch = crate::experiments::fig12_with(&exec, 7, 500_000);
            assert_eq!(stream.per_minute, batch.per_minute);
            assert_eq!(stream.cumulative_queries, batch.cumulative_queries);
            assert_eq!(stream.cumulative_baseline_bytes, batch.cumulative_baseline_bytes);
            assert_eq!(stream.cumulative_overhead_bytes, batch.cumulative_overhead_bytes);
            assert_eq!(stream.overhead_mbps, batch.overhead_mbps);
        }
    }

    #[test]
    fn mode_defaults_to_stream() {
        assert!(ExecMode::default().is_stream());
        assert!(!ExecMode::Batch.is_stream());
    }
}
