//! The resolver farm: a million-stub client plane in front of a
//! configurable fleet of recursive caches, with topology-aware,
//! cache-hit-aware, per-client leak accounting.
//!
//! The paper measures what the DLV registry sees from *one* resolver
//! replaying a ranked list. Real DLV exposure was an aggregation
//! phenomenon: millions of stubs funnel through shared recursive caches,
//! and every cache hit is a query the registry never sees. This module
//! closes that gap analytically. A [`StubPlane`] emits per-client query
//! events (Zipf interest, session churn, TTL-driven re-query); the farm
//! model reduces them against two cache layers:
//!
//! * the **answer cache** of the resolver the client is routed to —
//!   distinct `(cache, domain, answer-TTL bucket)` keys are the upstream
//!   misses,
//! * the registry-facing **NSEC-span cache** — for every domain whose
//!   chain of trust is not secure (unsigned, or an island without a DS),
//!   a DLV-configured resolver asks the registry once per
//!   `(cache, domain, span-TTL bucket)`. With the registry's week-long
//!   span TTL that is *once per cache per domain*: aggregation is the
//!   privacy remedy nobody designed.
//!
//! Both reductions are order-free: a key either exists or it doesn't,
//! and the client *attributed* with a leak is the minimum `(time,
//! client)` pair that touched the key — an associative, commutative
//! reduction. That is why the farm shards by **client cohort** (stable
//! client→cohort hashing from the population crate) instead of rank
//! ranges: any partition of clients, processed by any number of workers,
//! merges to the same bytes. The determinism suite pins down both
//! worker-count and cohort-count invariance.
//!
//! Four topologies re-score the paper's threat model (§PAPERS.md):
//!
//! * [`FarmTopology::PerResolver`] — anycast-style client→resolver
//!   assignment, one answer/span cache per resolver,
//! * [`FarmTopology::SharedCache`] — the farm fronts one shared/tiered
//!   cache: maximum aggregation, minimum registry exposure,
//! * [`FarmTopology::Odoh`] — an ODoH-style proxy/target split: the
//!   caches (and the registry's view) behave exactly like per-resolver,
//!   but no single party sees both client identity and qname, so no
//!   case-2 query is *linkable* to a client,
//! * [`FarmTopology::ResolverLess`] — Resolver-Less DNS: records arrive
//!   with the content, no recursive exists, the registry sees nothing —
//!   and every query exposes the client directly to the content server
//!   instead.

use std::collections::{BTreeMap, BTreeSet};

use lookaside_engine::Executor;
use lookaside_population::{PlaneParams, StubPlane};
use lookaside_server::DLV_SPAN_TTL;
use lookaside_workload::{DitlTrace, DomainPopulation, PopulationParams, Zipf, DITL_MINUTES};
use serde::Serialize;

use crate::parallel::{fold_cohorts, map_cohorts};
use crate::stream::ExecMode;

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const SALT_ANYCAST: u64 = 0x616e_7963;
const SALT_DLV_CONF: u64 = 0x646c_7663;
const SALT_DITL_CLIENT: u64 = 0x6463_6c69;
const SALT_DITL_RANK: u64 = 0x6472_616e;

/// How the farm's caches and trust boundaries are arranged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FarmTopology {
    /// Anycast assignment, one cache per resolver instance.
    PerResolver,
    /// All instances front one shared/tiered cache.
    SharedCache,
    /// ODoH-style proxy/target split: per-target caches, but the proxy
    /// sees identity without qname and the target sees qname without
    /// identity — leaks stop being linkable.
    Odoh,
    /// Resolver-Less DNS: no recursive at all; records ride along with
    /// content, so the registry sees nothing and the content server sees
    /// everything.
    ResolverLess,
}

impl FarmTopology {
    /// All topologies, in report order.
    pub const ALL: [FarmTopology; 4] = [
        FarmTopology::PerResolver,
        FarmTopology::SharedCache,
        FarmTopology::Odoh,
        FarmTopology::ResolverLess,
    ];

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            FarmTopology::PerResolver => "per-resolver",
            FarmTopology::SharedCache => "shared-cache",
            FarmTopology::Odoh => "odoh",
            FarmTopology::ResolverLess => "resolver-less",
        }
    }
}

/// Parameters of a farm experiment.
#[derive(Debug, Clone, Serialize)]
pub struct FarmConfig {
    /// The stub-client plane.
    pub plane: PlaneParams,
    /// The ranked domain population behind the queries (must cover the
    /// plane's `domain_support`).
    pub population: PopulationParams,
    /// Number of resolver instances in the farm.
    pub resolvers: usize,
    /// Number of client cohorts the plane shards into. Results are
    /// invariant under this knob (and under `--jobs`); it only bounds
    /// per-shard memory.
    pub cohorts: usize,
    /// Seed of farm-level rolls (anycast routing, per-resolver DLV
    /// configuration) and of the cohort plan.
    pub seed: u64,
    /// Answer-cache TTL, seconds.
    pub answer_ttl_secs: u32,
    /// Registry NSEC-span TTL, seconds (the aggressive-negative-caching
    /// suppressor).
    pub dlv_span_ttl_secs: u32,
    /// Per-mille of resolver instances configured with DLV (the paper's
    /// §5.2 survey: not every operator turned it on).
    pub dlv_enabled_milli: u16,
}

impl FarmConfig {
    /// The flagship configuration: one million stubs over an
    /// eight-resolver farm.
    pub fn paper_scale() -> Self {
        FarmConfig {
            plane: PlaneParams::default(),
            population: PopulationParams { size: 50_000, ..PopulationParams::default() },
            resolvers: 8,
            cohorts: 64,
            seed: 0xfa12,
            answer_ttl_secs: 300,
            dlv_span_ttl_secs: DLV_SPAN_TTL,
            dlv_enabled_milli: 1000,
        }
    }

    /// A small configuration for tests: `clients` stubs over 2 000
    /// domains and 8 cohorts.
    pub fn quick(clients: usize) -> Self {
        FarmConfig {
            plane: PlaneParams { clients, domain_support: 2_000, ..PlaneParams::default() },
            population: PopulationParams { size: 2_000, ..PopulationParams::default() },
            resolvers: 8,
            cohorts: 8,
            seed: 0xfa12,
            answer_ttl_secs: 300,
            dlv_span_ttl_secs: DLV_SPAN_TTL,
            dlv_enabled_milli: 1000,
        }
    }
}

/// What the registry (and everyone else) sees under one topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TopologyReport {
    /// The topology measured.
    pub topology: FarmTopology,
    /// Resolver instances in the farm for this row.
    pub resolvers: usize,
    /// Clients that issued at least one query.
    pub active_clients: u64,
    /// Stub queries that left a client (after its own cache).
    pub stub_queries: u64,
    /// Answer-cache misses — queries that went upstream at all.
    pub upstream_misses: u64,
    /// Queries the DLV registry received.
    pub dlv_queries: u64,
    /// Case 1: the registry answered from a deposit (validation utility).
    pub case1: u64,
    /// Case 2: NXDOMAIN/empty — pure privacy leak.
    pub case2: u64,
    /// Case-2 queries some single party can link to a client identity.
    pub linkable_case2: u64,
    /// Clients with at least one linkable case-2 leak attributed to them.
    pub leaked_clients: u64,
    /// The worst-off client's linkable case-2 count.
    pub max_client_case2: u64,
    /// Queries exposing client identity directly to content servers
    /// (Resolver-Less: all of them; resolver topologies hide the client
    /// behind the farm).
    pub content_exposed: u64,
}

impl TopologyReport {
    /// Mean linkable case-2 leaks per active client.
    pub fn leaks_per_client(&self) -> f64 {
        if self.active_clients == 0 {
            return 0.0;
        }
        self.linkable_case2 as f64 / self.active_clients as f64
    }

    /// Share of active clients with at least one linkable leak.
    pub fn leaked_share(&self) -> f64 {
        if self.active_clients == 0 {
            return 0.0;
        }
        self.leaked_clients as f64 / self.active_clients as f64
    }
}

/// Leak classification of one domain rank, precomputed so event
/// processing never touches name parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeakClass {
    /// Full chain of trust: the resolver never consults the registry.
    Secure,
    /// Not chained, deposit present: registry answers usefully.
    Case1,
    /// Not chained, no deposit: the registry learns the name for nothing.
    Case2,
}

/// One cohort's (or trace window's) contribution, mergeable in any order.
#[derive(Debug, Default, Clone)]
struct CohortTally {
    active_clients: u64,
    clients_seen: BTreeSet<u64>,
    stub_queries: u64,
    /// Distinct `(cache, rank, answer bucket)` keys.
    misses: BTreeSet<(u32, u32, u32)>,
    /// `(cache, rank, span bucket)` → earliest `(time, client)` toucher.
    dlv: BTreeMap<(u32, u32, u32), (u32, u64)>,
}

impl CohortTally {
    fn absorb(&mut self, other: CohortTally) {
        self.active_clients += other.active_clients;
        self.clients_seen.extend(other.clients_seen);
        self.stub_queries += other.stub_queries;
        self.misses.extend(other.misses);
        for (key, candidate) in other.dlv {
            let slot = self.dlv.entry(key).or_insert((u32::MAX, u64::MAX));
            if candidate < *slot {
                *slot = candidate;
            }
        }
    }
}

/// The farm: a built client plane plus the domain population's leak
/// classification, reusable across topologies and farm sizes.
pub struct Farm {
    config: FarmConfig,
    plane: StubPlane,
    classes: Vec<LeakClass>,
}

impl Farm {
    /// Builds the farm model.
    ///
    /// # Panics
    ///
    /// Panics if the domain population does not cover the plane's
    /// support, or if `resolvers`/`cohorts` is zero.
    pub fn new(config: FarmConfig) -> Self {
        assert!(config.resolvers > 0, "a farm needs at least one resolver");
        assert!(config.cohorts > 0, "a farm needs at least one cohort");
        assert!(
            config.population.size >= config.plane.domain_support,
            "population must cover the plane's domain support"
        );
        let plane = StubPlane::new(config.plane);
        let population = DomainPopulation::new(config.population);
        // Rank classification: chain-secure domains never reach the
        // registry; islands and unsigned domains do, and only deposits
        // make the trip useful. `ds_in_parent` already folds in whether
        // the TLD itself is signed.
        let classes = std::iter::once(LeakClass::Secure) // rank 0 unused
            .chain((1..=config.plane.domain_support).map(|rank| {
                let attrs = population.attributes(rank);
                if attrs.signed && attrs.ds_in_parent {
                    LeakClass::Secure
                } else if attrs.deposited {
                    LeakClass::Case1
                } else {
                    LeakClass::Case2
                }
            }))
            .collect();
        Farm { config, plane, classes }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FarmConfig {
        &self.config
    }

    /// The resolver cache `client` is routed to in a farm of `resolvers`.
    fn route(&self, topology: FarmTopology, client: u64, resolvers: usize) -> u32 {
        match topology {
            FarmTopology::SharedCache => 0,
            // ODoH targets are picked by the proxy the same way anycast
            // picks a resolver: hash routing. Same caches, same registry
            // view — only linkability differs.
            FarmTopology::PerResolver | FarmTopology::Odoh | FarmTopology::ResolverLess => {
                (mix(self.config.seed ^ SALT_ANYCAST, client) % resolvers as u64) as u32
            }
        }
    }

    /// Whether resolver instance `cache` is DLV-configured.
    fn dlv_configured(&self, cache: u32) -> bool {
        mix(self.config.seed ^ SALT_DLV_CONF, u64::from(cache)) % 1000
            < u64::from(self.config.dlv_enabled_milli)
    }

    /// Feeds one stub query into a cohort tally.
    fn feed(
        &self,
        tally: &mut CohortTally,
        topology: FarmTopology,
        cache: u32,
        client: u64,
        time_secs: u32,
        rank: u32,
    ) {
        tally.stub_queries += 1;
        if topology == FarmTopology::ResolverLess {
            // No recursive: nothing is cached farm-side, nothing reaches
            // the registry; the content server sees the client directly.
            return;
        }
        let answer_bucket = time_secs / self.config.answer_ttl_secs.max(1);
        tally.misses.insert((cache, rank, answer_bucket));
        if self.classes[rank as usize] == LeakClass::Secure || !self.dlv_configured(cache) {
            return;
        }
        let span_bucket = time_secs / self.config.dlv_span_ttl_secs.max(1);
        let slot = tally.dlv.entry((cache, rank, span_bucket)).or_insert((u32::MAX, u64::MAX));
        let candidate = (time_secs, client);
        if candidate < *slot {
            *slot = candidate;
        }
    }

    /// Merges per-cohort tallies on `exec`: in batch mode all cohort
    /// tallies are collected then absorbed in cohort order; in streaming
    /// mode (`LOOKASIDE_STREAM`) [`fold_cohorts`] absorbs each tally as
    /// its cohort completes, keeping one live tally per worker. The
    /// reduction is a set union plus a min-merge, so both paths (and any
    /// worker count) produce the same bytes.
    fn merged_tallies<F>(&self, cohorts: usize, exec: &Executor, work: F) -> CohortTally
    where
        F: Fn(&lookaside_engine::Shard<usize>) -> CohortTally + Sync,
    {
        if ExecMode::from_env().is_stream() {
            fold_cohorts(
                self.config.seed,
                cohorts,
                exec,
                work,
                CohortTally::default(),
                |mut acc, tally| {
                    acc.absorb(tally);
                    acc
                },
            )
        } else {
            let mut merged = CohortTally::default();
            for tally in map_cohorts(self.config.seed, cohorts, exec, work) {
                merged.absorb(tally);
            }
            merged
        }
    }

    /// Runs one topology at `resolvers` instances, sharded by client
    /// cohort on `exec`. Output is a pure function of `(config,
    /// topology, resolvers)` — invariant under worker count *and* cohort
    /// count, because the reduction is a set union plus a min-merge.
    pub fn run(&self, topology: FarmTopology, resolvers: usize, exec: &Executor) -> TopologyReport {
        let cohorts = self.config.cohorts;
        let merged = self.merged_tallies(cohorts, exec, |shard| {
            let mut tally = CohortTally::default();
            for client in self.plane.cohort_members(shard.input, cohorts) {
                let events = self.plane.events(client);
                if events.is_empty() {
                    continue;
                }
                tally.active_clients += 1;
                let cache = self.route(topology, client, resolvers);
                for event in events {
                    self.feed(&mut tally, topology, cache, client, event.time_secs, event.rank);
                }
            }
            tally
        });
        self.reduce(topology, resolvers, merged, false)
    }

    /// All four topologies at the configured farm size.
    pub fn sweep(&self, exec: &Executor) -> Vec<TopologyReport> {
        FarmTopology::ALL
            .iter()
            .map(|&topology| self.run(topology, self.config.resolvers, exec))
            .collect()
    }

    /// The aggregation curve: per-resolver caches at each farm size —
    /// how per-client leak rates grow as the client base fragments across
    /// more caches (and collapse as it concentrates).
    pub fn scaling(&self, sizes: &[usize], exec: &Executor) -> Vec<TopologyReport> {
        sizes.iter().map(|&n| self.run(FarmTopology::PerResolver, n.max(1), exec)).collect()
    }

    /// Replays the Fig. 12 DITL-scale trace through the farm instead of a
    /// single resolver, sampling one in `scale` queries. The trace is
    /// partitioned into per-cohort minute windows; because the reduction
    /// is partition-free, the window decomposition cannot perturb output.
    pub fn ditl(&self, scale: u64, exec: &Executor) -> Vec<TopologyReport> {
        let trace = DitlTrace::generate(self.config.seed);
        let zipf = Zipf::new(self.config.plane.domain_support, self.config.plane.zipf_s);
        let cohorts = self.config.cohorts.min(DITL_MINUTES);
        FarmTopology::ALL
            .iter()
            .map(|&topology| {
                let merged = self.merged_tallies(cohorts, exec, |shard| {
                    let lo = shard.input * DITL_MINUTES / cohorts;
                    let hi = (shard.input + 1) * DITL_MINUTES / cohorts;
                    let mut tally = CohortTally::default();
                    for minute in lo..hi {
                        let volume = trace.per_minute()[minute] / scale.max(1);
                        for q in 0..volume {
                            let key = ((minute as u64) << 32) | q;
                            let client = mix(self.config.seed ^ SALT_DITL_CLIENT, key)
                                % self.config.plane.clients as u64;
                            let rank = zipf.sample_hash(mix(self.config.seed ^ SALT_DITL_RANK, key))
                                as u32;
                            let time_secs = minute as u32 * 60 + (q % 60) as u32;
                            let cache = self.route(topology, client, self.config.resolvers);
                            tally.clients_seen.insert(client);
                            self.feed(&mut tally, topology, cache, client, time_secs, rank);
                        }
                    }
                    tally
                });
                self.reduce(topology, self.config.resolvers, merged, true)
            })
            .collect()
    }

    /// Classifies the registry's view of the merged cohort tally.
    // lint:sink(determinism)
    fn reduce(
        &self,
        topology: FarmTopology,
        resolvers: usize,
        merged: CohortTally,
        clients_from_set: bool,
    ) -> TopologyReport {
        let mut case1 = 0u64;
        let mut case2 = 0u64;
        let mut per_client: BTreeMap<u64, u64> = BTreeMap::new();
        for ((_cache, rank, _bucket), (_time, client)) in &merged.dlv {
            match self.classes[*rank as usize] {
                LeakClass::Secure => unreachable!("secure ranks never enter the DLV tally"),
                LeakClass::Case1 => case1 += 1,
                LeakClass::Case2 => {
                    case2 += 1;
                    *per_client.entry(*client).or_insert(0) += 1;
                }
            }
        }
        // Linkability: per-resolver and shared farms see identity+qname at
        // the resolver, so every case-2 query is attributable. Under the
        // ODoH split no single party holds both halves.
        let linkable = topology != FarmTopology::Odoh;
        TopologyReport {
            topology,
            resolvers,
            active_clients: if clients_from_set {
                merged.clients_seen.len() as u64
            } else {
                merged.active_clients
            },
            stub_queries: merged.stub_queries,
            upstream_misses: merged.misses.len() as u64,
            dlv_queries: case1 + case2,
            case1,
            case2,
            linkable_case2: if linkable { case2 } else { 0 },
            leaked_clients: if linkable { per_client.len() as u64 } else { 0 },
            max_client_case2: if linkable {
                per_client.values().copied().max().unwrap_or(0)
            } else {
                0
            },
            content_exposed: if topology == FarmTopology::ResolverLess {
                merged.stub_queries
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn farm(clients: usize) -> Farm {
        Farm::new(FarmConfig::quick(clients))
    }

    #[test]
    fn shared_cache_aggregation_collapses_leaks() {
        let farm = farm(4_000);
        let exec = Executor::serial();
        let per = farm.run(FarmTopology::PerResolver, 8, &exec);
        let shared = farm.run(FarmTopology::SharedCache, 8, &exec);
        // Every (rank, bucket) the shared cache leaks is leaked by at
        // least one per-resolver cache too, so aggregation can only
        // reduce the registry's view.
        assert!(shared.case2 <= per.case2, "shared {} vs per {}", shared.case2, per.case2);
        assert!(shared.case2 > 0, "a DLV-configured farm leaks");
        assert!(shared.upstream_misses <= per.upstream_misses);
    }

    #[test]
    fn odoh_matches_per_resolver_caches_but_unlinks_clients() {
        let farm = farm(3_000);
        let exec = Executor::serial();
        let per = farm.run(FarmTopology::PerResolver, 8, &exec);
        let odoh = farm.run(FarmTopology::Odoh, 8, &exec);
        assert_eq!(odoh.dlv_queries, per.dlv_queries);
        assert_eq!(odoh.case2, per.case2);
        assert_eq!(odoh.linkable_case2, 0);
        assert_eq!(odoh.leaked_clients, 0);
        assert!(per.linkable_case2 > 0 && per.leaked_clients > 0);
    }

    #[test]
    fn resolver_less_trades_registry_for_content_exposure() {
        let farm = farm(2_000);
        let report = farm.run(FarmTopology::ResolverLess, 8, &Executor::serial());
        assert_eq!(report.dlv_queries, 0);
        assert_eq!(report.upstream_misses, 0);
        assert_eq!(report.content_exposed, report.stub_queries);
        assert!(report.stub_queries > 0);
    }

    #[test]
    fn fragmentation_grows_per_client_leak_rates() {
        let farm = farm(4_000);
        let exec = Executor::serial();
        let curve = farm.scaling(&[1, 8], &exec);
        assert!(curve[0].case2 <= curve[1].case2, "one cache aggregates at least as well");
        assert!(curve[0].leaks_per_client() <= curve[1].leaks_per_client());
    }

    #[test]
    fn output_is_invariant_under_workers_and_cohorts() {
        let mut config = FarmConfig::quick(2_000);
        let serial = Farm::new(config.clone()).sweep(&Executor::serial());
        let parallel = Farm::new(config.clone()).sweep(&Executor::new(4));
        assert_eq!(serial, parallel);
        config.cohorts = 3;
        let recohorted = Farm::new(config).sweep(&Executor::new(2));
        assert_eq!(serial, recohorted);
    }

    #[test]
    fn ditl_replay_is_deterministic_and_scaled() {
        let farm = farm(2_000);
        let a = farm.ditl(200_000, &Executor::serial());
        let b = farm.ditl(200_000, &Executor::new(3));
        assert_eq!(a, b);
        let per = &a[0];
        assert_eq!(per.topology, FarmTopology::PerResolver);
        assert!(per.stub_queries > 0);
        assert!(per.dlv_queries > 0);
    }

    #[test]
    fn case_split_accounts_every_registry_query() {
        let farm = farm(3_000);
        let report = farm.run(FarmTopology::PerResolver, 8, &Executor::serial());
        assert_eq!(report.dlv_queries, report.case1 + report.case2);
        assert!(report.case1 > 0, "deposited islands produce case-1 traffic");
        assert!(report.upstream_misses <= report.stub_queries);
        assert!(report.dlv_queries <= report.upstream_misses);
    }
}
