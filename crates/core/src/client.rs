//! A batteries-included client facade: one object owning the simulated
//! Internet and a configured resolver, with lookup conveniences mirroring
//! the API shape of mainstream resolver libraries.

use std::net::Ipv4Addr;

use lookaside_resolver::{BindConfig, RecursiveResolver, Resolution, ResolveError, ResolverConfig};
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::{Name, RData, RrType, WireError};
use lookaside_workload::PopulationParams;

use crate::internet::{Internet, InternetParams};
use crate::leakage::{classify, LeakageReport};

/// Errors surfaced by [`Client`] lookups.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The name was not valid.
    Name(WireError),
    /// Resolution failed.
    Resolve(ResolveError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Name(e) => write!(f, "invalid name: {e}"),
            ClientError::Resolve(e) => write!(f, "resolution failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Name(e) => Some(e),
            ClientError::Resolve(e) => Some(e),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Name(e)
    }
}

impl From<ResolveError> for ClientError {
    fn from(e: ResolveError) -> Self {
        ClientError::Resolve(e)
    }
}

/// A simulated Internet plus a configured resolver, behind one handle.
///
/// # Example
///
/// ```
/// use lookaside::Client;
///
/// let mut client = Client::builder().population_size(2_000).build();
/// let name = client.domain(1); // the most popular synthetic domain
/// let addrs = client.lookup_ip(&name.to_string())?;
/// assert!(!addrs.is_empty());
/// // What did the DLV registry see?
/// let report = client.leakage();
/// assert!(report.dlv_queries >= 1);
/// # Ok::<(), lookaside::client::ClientError>(())
/// ```
pub struct Client {
    internet: Internet,
    resolver: RecursiveResolver,
}

/// Builder for [`Client`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    population_size: usize,
    remedy: RemedyMode,
    config: ResolverConfig,
    seed: u64,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            population_size: 5_000,
            remedy: RemedyMode::None,
            config: ResolverConfig::Bind(BindConfig::correct()),
            seed: 1,
        }
    }
}

impl ClientBuilder {
    /// Sets the synthetic population size.
    pub fn population_size(mut self, size: usize) -> Self {
        self.population_size = size;
        self
    }

    /// Deploys a §6.2 remedy across the simulated Internet.
    pub fn remedy(mut self, remedy: RemedyMode) -> Self {
        self.remedy = remedy;
        self
    }

    /// Uses a specific resolver configuration (e.g. an
    /// [`lookaside_resolver::InstallMethod`] preset).
    pub fn resolver_config(mut self, config: ResolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the client (constructs the whole simulated Internet).
    pub fn build(self) -> Client {
        let population =
            PopulationParams { size: self.population_size, ..PopulationParams::default() };
        let mut params = InternetParams::for_top(self.population_size, population, self.remedy);
        params.seed = self.seed;
        let internet = Internet::build(params);
        let resolver = internet.resolver(self.config, self.seed ^ 0xc11e);
        Client { internet, resolver }
    }
}

impl Client {
    /// Starts building a client.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// A default client over a 5 000-domain population.
    pub fn new() -> Client {
        ClientBuilder::default().build()
    }

    /// The rank-`r` domain of the synthetic population.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is 0 or beyond the population size.
    pub fn domain(&self, rank: usize) -> Name {
        self.internet.population.domain(rank)
    }

    /// Resolves a name to its IPv4 addresses.
    ///
    /// # Errors
    ///
    /// Fails on invalid names or unresolvable infrastructure; NXDOMAIN is
    /// not an error (it returns an empty list).
    pub fn lookup_ip(&mut self, name: &str) -> Result<Vec<Ipv4Addr>, ClientError> {
        let qname = Name::parse(name)?;
        let res = self.resolver.resolve(&mut self.internet.net, &qname, RrType::A)?;
        Ok(res
            .answers
            .iter()
            .filter_map(|rec| match rec.rdata {
                RData::A(addr) => Some(addr),
                _ => None,
            })
            .collect())
    }

    /// Resolves an arbitrary query, returning the full [`Resolution`].
    ///
    /// # Errors
    ///
    /// Fails on invalid names or unresolvable infrastructure.
    pub fn query(&mut self, name: &str, rrtype: RrType) -> Result<Resolution, ClientError> {
        let qname = Name::parse(name)?;
        Ok(self.resolver.resolve(&mut self.internet.net, &qname, rrtype)?)
    }

    /// Classifies everything the DLV registry has observed so far.
    pub fn leakage(&self) -> LeakageReport {
        classify(self.internet.net.capture(), &self.internet.dlv_apex)
    }

    /// The underlying Internet (topology, population, capture, stats).
    pub fn internet(&self) -> &Internet {
        &self.internet
    }

    /// The underlying resolver (counters, caches).
    pub fn resolver(&self) -> &RecursiveResolver {
        &self.resolver
    }
}

impl Default for Client {
    fn default() -> Self {
        Client::new()
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("population", &self.internet.population.size())
            .field("remedy", &self.internet.params.remedy)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_ip_resolves_population_domains() {
        let mut client = Client::builder().population_size(1_000).build();
        let name = client.domain(1).to_string();
        let addrs = client.lookup_ip(&name).unwrap();
        assert_eq!(addrs.len(), 1);
        assert!(client.leakage().dlv_queries >= 1 || client.leakage().case1 >= 1);
    }

    #[test]
    fn nxdomain_is_an_empty_answer_not_an_error() {
        let mut client = Client::builder().population_size(1_000).build();
        let addrs = client.lookup_ip("d9999999.com.").unwrap();
        assert!(addrs.is_empty());
    }

    #[test]
    fn invalid_names_error_cleanly() {
        let mut client = Client::builder().population_size(1_000).build();
        let err = client.lookup_ip("bad..name").unwrap_err();
        assert!(matches!(err, ClientError::Name(_)));
        assert!(err.to_string().contains("invalid name"));
    }

    #[test]
    fn query_exposes_validation_status() {
        let mut client = Client::builder().population_size(1_000).seed(9).build();
        let name = client.domain(2).to_string();
        let res = client.query(&name, RrType::A).unwrap();
        assert_eq!(res.qtype, RrType::A);
        // Status is one of the four defined outcomes; just ensure it is
        // reported.
        let _ = res.status;
    }

    #[test]
    fn remedy_builder_controls_leakage() {
        let mut client = Client::builder().population_size(1_000).remedy(RemedyMode::ZBit).build();
        for rank in 1..=20 {
            let name = client.domain(rank).to_string();
            let _ = client.lookup_ip(&name).unwrap();
        }
        assert_eq!(client.leakage().case2, 0, "Z-bit remedy suppresses leaks");
    }
}
