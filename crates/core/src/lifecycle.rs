//! The simulated-time key-lifecycle sweep: rollovers, RRSIG-expiry
//! storms, and RFC 5011 trust-anchor survival.
//!
//! Every other sweep in this crate runs against a root frozen at one
//! signing epoch. This module replays the ranked population across a
//! scripted *timeline* instead: the root is served by an
//! [`lookaside_server::EpochAuthority`] replaying a
//! [`lookaside_zone::KeyTimeline`], and the resolver walks a fixed event
//! schedule, re-validating as RRSIG windows lapse, ZSKs and KSKs roll, and
//! trust anchors are (or are not) tracked via RFC 5011.
//!
//! The privacy angle is the paper's §5.2 misconfiguration arrived at
//! *dynamically*: a resolver that misses a root KSK rollover ends up with
//! no usable trust anchor, every validation goes Indeterminate, and a
//! DLV-configured resolver starts leaking *every* name it resolves to the
//! look-aside registry — the case-2 spike the sweep reports per event.
//!
//! Scenarios:
//!
//! * **steady** — correct periodic re-signing; the all-Secure control,
//! * **expiry-storm** — one re-sign arrives a full interval late; every
//!   cached RRSIG lapses and validation fails closed until the fresh
//!   window lands,
//! * **storm-corrupt-registry** — the same late re-sign, but the DLV
//!   registry itself serves corrupted signatures
//!   ([`DecommissionStage::BogusSignatures`]) through the storm window:
//!   the two fault planes cross. Corruption severs the registry's own
//!   chain of trust, so look-aside walks abort before a single DLV-type
//!   query leaves the resolver — privacy-wise a corrupt registry is an
//!   unplugged one, the leak channel goes dark until the registry heals
//!   and the resolver's bad-key judgement ages out,
//! * **zsk-abrupt** — a rushed ZSK rollover (pre-publish lead shorter
//!   than the DNSKEY TTL, predecessor deleted at activation): resolvers
//!   holding cached parent-side records signed by the vanished key go
//!   Bogus until those caches drain,
//! * **ksk-roll-tracked** — a 2018-style root KSK rollover followed by a
//!   resolver with a working RFC 5011 hold-down timer: Secure throughout,
//! * **ksk-roll-missed** — the same rollover against a resolver whose
//!   hold-down never elapses: Bogus through the revocation window,
//!   Indeterminate (and leaking to DLV) once the old key is pulled,
//!   recovering only by an out-of-band anchor install.
//!
//! Everything is a pure function of the configured seed; scenarios shard
//! across the engine executor and the report is byte-identical for every
//! `--jobs` value.

use lookaside_netsim::CaptureFilter;
use lookaside_resolver::{BindConfig, FeatureModel, ResolverConfig, RetryPolicy, SecurityStatus};
use lookaside_server::DecommissionStage;
use lookaside_wire::ext::RemedyMode;
use lookaside_wire::RrType;
use lookaside_workload::PopulationParams;
use lookaside_zone::{KeyTimeline, LifecycleFault, LifecycleTarget, RolloverPolicy};
use serde::Serialize;

use crate::internet::{Internet, InternetParams, ROOT_KEY_SEED};
use crate::leakage;

const NS_PER_SEC: u64 = 1_000_000_000;

/// The fixed measurement schedule (seconds of simulated time). Spacing is
/// deliberately *incommensurate* with the 3600 s DNSKEY/DS TTL and offset
/// from the re-sign grid, so cache expiries interleave with key events the
/// way unsynchronised real-world caches do, and no lookup races a TTL
/// boundary exactly.
pub const EVENT_TIMES: [u64; 8] = [123, 2_123, 4_123, 6_123, 8_123, 10_123, 12_123, 14_123];

/// Epoch horizon the root timelines are published out to.
pub const HORIZON_SECS: u32 = 16_000;

/// One scripted key-lifecycle scenario applied to the root zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum LifecycleScenario {
    /// Correct periodic re-signing, no rollover — the control.
    Steady,
    /// Re-sign #1 lands a full interval late: the RRSIG-expiry storm.
    ExpiryStorm,
    /// The expiry storm with the registry *also* failing: the DLV zone
    /// serves corrupted signatures through the storm window and heals
    /// after the late re-sign lands.
    StormCorruptRegistry,
    /// Rushed ZSK rollover: 900 s pre-publish lead against a 3600 s TTL,
    /// predecessor removed at activation.
    ZskAbrupt,
    /// KSK double-signature rollover, resolver tracks it via RFC 5011.
    KskRollTracked,
    /// The same rollover, but the resolver's hold-down never elapses —
    /// the missed-window failure mode, healed by a manual anchor install.
    KskRollMissed,
}

impl LifecycleScenario {
    /// Every scenario, control first.
    pub const ALL: [LifecycleScenario; 6] = [
        LifecycleScenario::Steady,
        LifecycleScenario::ExpiryStorm,
        LifecycleScenario::StormCorruptRegistry,
        LifecycleScenario::ZskAbrupt,
        LifecycleScenario::KskRollTracked,
        LifecycleScenario::KskRollMissed,
    ];

    /// Human-readable label (stable: the `--jobs` diff gate compares it).
    pub fn label(self) -> &'static str {
        match self {
            LifecycleScenario::Steady => "steady",
            LifecycleScenario::ExpiryStorm => "expiry-storm",
            LifecycleScenario::StormCorruptRegistry => "storm-corrupt-registry",
            LifecycleScenario::ZskAbrupt => "zsk-abrupt",
            LifecycleScenario::KskRollTracked => "ksk-roll-tracked",
            LifecycleScenario::KskRollMissed => "ksk-roll-missed",
        }
    }

    /// The root-zone timeline this scenario replays.
    pub fn timeline(self) -> KeyTimeline {
        match self {
            LifecycleScenario::Steady => {
                KeyTimeline::correct(ROOT_KEY_SEED, RolloverPolicy::steady(3_600, 5_000))
            }
            LifecycleScenario::ExpiryStorm | LifecycleScenario::StormCorruptRegistry => {
                KeyTimeline {
                    base_seed: ROOT_KEY_SEED,
                    policy: RolloverPolicy::steady(3_600, 5_000),
                    fault: LifecycleFault::LateResign { resign_index: 1, delay_secs: 3_600 },
                }
            }
            LifecycleScenario::ZskAbrupt => KeyTimeline {
                base_seed: ROOT_KEY_SEED,
                policy: RolloverPolicy {
                    resign_every_secs: 1_800,
                    validity_secs: 7_200,
                    zsk_rollover_at: Some(7_200),
                    ksk_rollover_at: None,
                    rollover_lead_secs: 900,
                    revoke_old_ksk: false,
                },
                fault: LifecycleFault::PrematureZskRemoval,
            },
            LifecycleScenario::KskRollTracked | LifecycleScenario::KskRollMissed => {
                KeyTimeline::correct(
                    ROOT_KEY_SEED,
                    RolloverPolicy {
                        resign_every_secs: 1_800,
                        validity_secs: 7_200,
                        zsk_rollover_at: None,
                        ksk_rollover_at: Some(7_200),
                        rollover_lead_secs: 3_600,
                        revoke_old_ksk: true,
                    },
                )
            }
        }
    }

    /// RFC 5011 hold-down for this scenario's resolver, if the scenario
    /// manages anchors at all (`None` keeps the static configured anchor).
    fn hold_down_secs(self) -> Option<u64> {
        match self {
            LifecycleScenario::KskRollTracked => Some(1_800),
            // Longer than the whole horizon: the successor never graduates.
            LifecycleScenario::KskRollMissed => Some(1_000_000),
            _ => None,
        }
    }

    /// Simulated time at which the operator installs the successor anchor
    /// out of band (the RFC 5011 §5 last resort), if scripted.
    fn anchor_install_at_secs(self) -> Option<u64> {
        match self {
            LifecycleScenario::KskRollMissed => Some(13_000),
            _ => None,
        }
    }

    /// Scheduled DLV-registry stage transitions for this scenario, in
    /// simulated nanoseconds. The storm-crossing scenario corrupts the
    /// registry over the stale-RRSIG gap (cached signatures lapse at
    /// t=5000; the late re-sign lands at t=7200) and heals it at t=9000,
    /// after the root has recovered — so the t=8123 event sees a healthy
    /// root against a still-corrupt registry, and the resolver's cached
    /// bad-key judgement keeps the walk dark past the heal itself.
    fn registry_schedule(self) -> Vec<(u64, DecommissionStage)> {
        match self {
            LifecycleScenario::StormCorruptRegistry => vec![
                (5_000 * NS_PER_SEC, DecommissionStage::BogusSignatures),
                (9_000 * NS_PER_SEC, DecommissionStage::Populated),
            ],
            _ => Vec::new(),
        }
    }
}

/// Configuration of one lifecycle sweep.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Fresh (previously-unseen) names resolved at each event.
    pub queries_per_event: usize,
    /// Warm-up queries at t=0 so delegations and zone keys are cached
    /// before the timeline starts moving.
    pub warmup: usize,
    /// Master seed: population, latency, and workload all derive from it.
    pub seed: u64,
    /// Scenarios to replay.
    pub scenarios: Vec<LifecycleScenario>,
    /// The zone the timeline takes over. [`LifecycleTarget::Root`] is the
    /// original (PR 6) root-wide sweep; a [`LifecycleTarget::Tld`] scopes
    /// the fault's blast radius to one TLD's children. The KSK scenarios
    /// manage the *root* trust anchor, so they are only meaningful with
    /// the root target (a TLD KSK roll against the static root DS behaves
    /// as parent-DS-never-updated).
    pub target: LifecycleTarget,
}

impl LifecycleConfig {
    /// The canonical five-scenario schedule against the root.
    pub fn quick(queries_per_event: usize) -> Self {
        LifecycleConfig {
            queries_per_event,
            warmup: 6,
            seed: 0x11f_3cc,
            scenarios: LifecycleScenario::ALL.to_vec(),
            target: LifecycleTarget::Root,
        }
    }
}

/// Validation-outcome and leakage deltas for one measurement event.
#[derive(Debug, Clone, Serialize)]
pub struct LifecycleEventPoint {
    /// Simulated time of the event (seconds).
    pub at_secs: u64,
    /// Fresh names resolved at this event.
    pub client_queries: usize,
    /// Resolutions concluding `Secure`.
    pub secure: usize,
    /// Resolutions concluding `Insecure` (includes the DLV-walk fallout
    /// of an anchorless root).
    pub insecure: usize,
    /// Resolutions concluding `Bogus`.
    pub bogus: usize,
    /// Resolutions concluding `Indeterminate`.
    pub indeterminate: usize,
    /// Resolutions that failed outright (no usable answer).
    pub errors: usize,
    /// Validations that failed *specifically* on a lapsed RRSIG window
    /// (delta for this event).
    pub expired_rrsig_bogus: u64,
    /// Root validations that found no usable trust anchor (delta).
    pub missing_anchor: u64,
    /// DLV query packets on the wire during this event (delta).
    pub dlv_queries: usize,
    /// Case-2 look-aside leaks during this event (delta) — the §5.2
    /// privacy cost of the lifecycle failure.
    pub case2_leaks: usize,
}

/// One scenario's full event series.
#[derive(Debug, Clone, Serialize)]
pub struct LifecyclePoint {
    /// Scenario replayed.
    pub scenario: LifecycleScenario,
    /// One point per entry of [`EVENT_TIMES`], in order.
    pub events: Vec<LifecycleEventPoint>,
}

/// Runs the sweep on the session executor (`--jobs` / `LOOKASIDE_JOBS`).
pub fn lifecycle_sweep(config: &LifecycleConfig) -> Vec<LifecyclePoint> {
    lifecycle_sweep_with(&crate::parallel::executor(), config)
}

/// [`lifecycle_sweep`] on an explicit executor. Each scenario builds a
/// fresh Internet replica, so scenarios are natural shards; results come
/// back in serial order, identical for every worker count.
pub fn lifecycle_sweep_with(
    exec: &lookaside_engine::Executor,
    config: &LifecycleConfig,
) -> Vec<LifecyclePoint> {
    let shards = lookaside_engine::ShardPlan::new(config.seed).over(config.scenarios.clone());
    lookaside_engine::expect_all(exec.run(&shards, |shard| run_cell(config, shard.input)))
}

/// The measured workload: the first `needed` *anchored* ranks — signed
/// SLDs with a DS in a signed TLD, i.e. names that conclude `Secure` under
/// a healthy root. Only those names carry the lifecycle signal: unsigned
/// and island names walk into look-aside no matter what the root's keys
/// are doing, while an anchored name leaks to the registry *only* when a
/// lifecycle failure severs its chain of trust (the §5.2 case-2 spike).
fn anchored_ranks(internet: &Internet, needed: usize) -> Vec<usize> {
    let ranks: Vec<usize> = (1..=internet.params.population.size)
        .filter(|&rank| {
            let attrs = internet.population.attributes(rank);
            attrs.signed && attrs.ds_in_parent
        })
        .take(needed)
        .collect();
    assert_eq!(ranks.len(), needed, "population too small for the anchored workload");
    ranks
}

fn run_cell(config: &LifecycleConfig, scenario: LifecycleScenario) -> LifecyclePoint {
    let needed = config.warmup + EVENT_TIMES.len() * config.queries_per_event;
    // ~1.8 % of ranks are anchored (3 % signed × 60 % with DS), so leave
    // two orders of magnitude of headroom.
    let size = (needed * 100).max(1000);
    let population = PopulationParams { size, ..PopulationParams::default() };
    let mut params = InternetParams::for_top(size, population, RemedyMode::None);
    params.seed = config.seed;
    params.capture = CaptureFilter::DlvOnly;
    params.dlv_schedule = scenario.registry_schedule();
    let mut internet = Internet::build(params);
    let ranks = anchored_ranks(&internet, needed);
    let mut timeline = scenario.timeline();
    timeline.base_seed = Internet::timeline_base_seed(&config.target);
    internet.install_timeline(&config.target, &timeline, HORIZON_SECS);

    // As in the chaos and Byzantine harnesses: aggressive NSEC caching
    // would suppress the look-aside lookups whose volume we measure.
    let features = FeatureModel { aggressive_nsec: false, ..FeatureModel::default() };
    let mut resolver = internet.resolver_with_features(
        ResolverConfig::Bind(BindConfig::correct()),
        features,
        config.seed ^ 0x5eed,
    );
    resolver.set_retry_policy(RetryPolicy::default().with_servfail_cache(900));
    if let Some(hold_down) = scenario.hold_down_secs() {
        resolver.enable_rfc5011(hold_down * NS_PER_SEC);
    }

    // Warm-up at t=0: epoch 0 serves exactly what the static root would.
    for &rank in &ranks[..config.warmup] {
        let qname = internet.population.domain(rank);
        let _ = resolver.resolve(&mut internet.net, &qname, RrType::A);
    }

    let mut installed = false;
    let mut prev_leaks = leakage::classify(internet.net.capture(), &internet.dlv_apex);
    let mut events = Vec::with_capacity(EVENT_TIMES.len());
    for (event_idx, &at_secs) in EVENT_TIMES.iter().enumerate() {
        let target_ns = at_secs * NS_PER_SEC;
        let now_ns = internet.net.now_ns();
        internet.net.advance(target_ns.saturating_sub(now_ns));
        if !installed
            && config.target == LifecycleTarget::Root
            && scenario.anchor_install_at_secs().is_some_and(|t| at_secs >= t)
        {
            resolver.install_root_anchor(timeline.ksk_generation(1).public());
            installed = true;
        }
        // Model DNSKEY-TTL-driven revalidation: cached *records* survive
        // (that staleness is the experiment), cached security *judgements*
        // do not.
        resolver.flush_security_state();

        let counters_before = resolver.counters;
        let mut point = LifecycleEventPoint {
            at_secs,
            client_queries: config.queries_per_event,
            secure: 0,
            insecure: 0,
            bogus: 0,
            indeterminate: 0,
            errors: 0,
            expired_rrsig_bogus: 0,
            missing_anchor: 0,
            dlv_queries: 0,
            case2_leaks: 0,
        };
        for slot in 0..config.queries_per_event {
            let rank = ranks[config.warmup + event_idx * config.queries_per_event + slot];
            let qname = internet.population.domain(rank);
            match resolver.resolve(&mut internet.net, &qname, RrType::A) {
                Ok(res) => match res.status {
                    SecurityStatus::Secure => point.secure += 1,
                    SecurityStatus::Insecure => point.insecure += 1,
                    SecurityStatus::Bogus => point.bogus += 1,
                    SecurityStatus::Indeterminate => point.indeterminate += 1,
                },
                Err(_) => point.errors += 1,
            }
        }

        let c = &resolver.counters;
        point.expired_rrsig_bogus = c.expired_rrsig_bogus - counters_before.expired_rrsig_bogus;
        point.missing_anchor =
            c.missing_anchor_indeterminate - counters_before.missing_anchor_indeterminate;
        let leaks = leakage::classify(internet.net.capture(), &internet.dlv_apex);
        point.dlv_queries = leaks.dlv_queries - prev_leaks.dlv_queries;
        point.case2_leaks = leaks.case2 - prev_leaks.case2;
        prev_leaks = leaks;
        events.push(point);
    }
    LifecyclePoint { scenario, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(scenarios: Vec<LifecycleScenario>) -> Vec<LifecyclePoint> {
        lifecycle_sweep(&LifecycleConfig { scenarios, ..LifecycleConfig::quick(4) })
    }

    fn point(points: &[LifecyclePoint], scenario: LifecycleScenario) -> &LifecyclePoint {
        points.iter().find(|p| p.scenario == scenario).expect("scenario present")
    }

    #[test]
    fn steady_control_stays_secure() {
        let points = sweep(vec![LifecycleScenario::Steady]);
        for event in &point(&points, LifecycleScenario::Steady).events {
            assert_eq!(
                event.secure, event.client_queries,
                "correct re-signing must stay Secure: {event:?}"
            );
            assert_eq!(event.expired_rrsig_bogus, 0, "{event:?}");
        }
    }

    #[test]
    fn late_resign_causes_a_bounded_expiry_storm() {
        let points = sweep(vec![LifecycleScenario::ExpiryStorm]);
        let events = &point(&points, LifecycleScenario::ExpiryStorm).events;
        // The stale window: cached RRSIGs from the missed re-sign lapse at
        // t=5000 and the late re-sign only lands at t=7200.
        let storm = &events[3];
        assert_eq!(storm.at_secs, 6_123);
        assert_eq!(storm.bogus, storm.client_queries, "expiry storm fails closed: {storm:?}");
        assert!(storm.expired_rrsig_bogus > 0, "counted as *expired*, not generic Bogus");
        // Before the window everything is Secure; after the late re-sign
        // lands, validation recovers without intervention.
        for event in events.iter().filter(|e| e.at_secs != 6_123) {
            assert_eq!(event.secure, event.client_queries, "bounded storm: {event:?}");
        }
    }

    #[test]
    fn missed_ksk_rollover_fails_then_leaks_then_recovers() {
        let points =
            sweep(vec![LifecycleScenario::KskRollTracked, LifecycleScenario::KskRollMissed]);
        // A resolver with a working hold-down timer rides the whole roll.
        for event in &point(&points, LifecycleScenario::KskRollTracked).events {
            assert_eq!(event.secure, event.client_queries, "RFC 5011 tracks the roll: {event:?}");
        }
        let missed = &point(&points, LifecycleScenario::KskRollMissed).events;
        // Revocation window (old key published+revoked, new key signing):
        // the chain *ought* to verify and does not -> Bogus.
        assert_eq!(missed[4].at_secs, 8_123);
        assert_eq!(missed[4].bogus, missed[4].client_queries, "{:?}", missed[4]);
        // Old key pulled: no anchor at all -> Indeterminate at the root,
        // and the §5.2 leak: every name walks into the DLV registry.
        let anchorless = &missed[6];
        assert_eq!(anchorless.at_secs, 12_123);
        assert!(anchorless.missing_anchor > 0, "{anchorless:?}");
        assert_eq!(anchorless.secure, 0, "{anchorless:?}");
        // The §5.2 case-2 spike: with no anchor, the *measured* anchored
        // names themselves walk into the DLV registry, on top of the
        // infrastructure-zone (hosting NS) leaks that a Secure resolver
        // also incurs. Contrast against the tracked resolver at the same
        // event — identical workload, working anchor.
        let tracked_same = &point(&points, LifecycleScenario::KskRollTracked).events[6];
        assert!(
            anchorless.case2_leaks > tracked_same.case2_leaks,
            "anchorless leak spike: missed {anchorless:?} vs tracked {tracked_same:?}"
        );
        // Out-of-band anchor install at t=13000 heals validation.
        let healed = missed.last().unwrap();
        assert_eq!(healed.at_secs, 14_123);
        assert_eq!(healed.secure, healed.client_queries, "manual install recovers: {healed:?}");
    }

    #[test]
    fn corrupt_registry_during_storm_silences_the_leak_channel() {
        let points =
            sweep(vec![LifecycleScenario::ExpiryStorm, LifecycleScenario::StormCorruptRegistry]);
        let storm = &point(&points, LifecycleScenario::ExpiryStorm).events;
        let crossed = &point(&points, LifecycleScenario::StormCorruptRegistry).events;
        // Inside the stale gap the two scenarios are indistinguishable:
        // anchored chains fail closed at the *root*, before the walk ever
        // considers look-aside — the corrupt registry cannot worsen (or
        // rescue) them.
        assert_eq!(crossed[3].at_secs, 6_123);
        assert_eq!(crossed[3].bogus, crossed[3].client_queries, "{:?}", crossed[3]);
        assert!(crossed[3].expired_rrsig_bogus > 0, "{:?}", crossed[3]);
        assert_eq!(crossed[3].dlv_queries, storm[3].dlv_queries, "{:?}", crossed[3]);
        // Once the late re-sign lands (t=7200) anchored validation heals
        // in both scenarios — but with the registry still corrupt, its
        // own chain of trust is severed and the look-aside walk aborts
        // before a single DLV-type query reaches the wire: the leak
        // channel goes dark while the healthy-registry storm keeps
        // leaking infrastructure names.
        for idx in [4, 5] {
            assert_eq!(crossed[idx].secure, crossed[idx].client_queries, "{:?}", crossed[idx]);
            assert_eq!(crossed[idx].dlv_queries, 0, "corrupt = unplugged: {:?}", crossed[idx]);
            assert_eq!(crossed[idx].case2_leaks, 0, "{:?}", crossed[idx]);
            assert!(storm[idx].dlv_queries > 0, "healthy registry keeps leaking: {:?}", storm[idx]);
        }
        // The registry heals at t=9000 but the resolver's bad-key
        // judgement must age out first; by t=12123 the walk — and the
        // leak — is back.
        assert!(crossed[6].dlv_queries > 0, "leak channel resumes: {:?}", crossed[6]);
    }

    #[test]
    fn tld_scoped_expiry_storm_strands_only_that_tld() {
        let config = LifecycleConfig {
            scenarios: vec![LifecycleScenario::ExpiryStorm],
            target: LifecycleTarget::Tld("com".to_string()),
            ..LifecycleConfig::quick(6)
        };
        let points = lifecycle_sweep(&config);
        let events = &point(&points, LifecycleScenario::ExpiryStorm).events;
        // In the stale gap only the .com share of the anchored workload
        // fails closed — the fault's blast radius is one TLD, not the
        // whole namespace as in the root-scoped storm.
        let storm = &events[3];
        assert_eq!(storm.at_secs, 6_123);
        assert!(storm.bogus > 0, "the faulted TLD's children fail: {storm:?}");
        assert!(
            storm.secure > 0 && storm.bogus < storm.client_queries,
            "other TLDs ride through the .com storm: {storm:?}"
        );
        // Outside the gap everything validates, exactly as with the root
        // target: the catch-up re-sign heals the TLD without intervention.
        for event in events.iter().filter(|e| e.at_secs != 6_123) {
            assert_eq!(event.secure, event.client_queries, "bounded storm: {event:?}");
        }
    }

    #[test]
    fn abrupt_zsk_removal_breaks_only_stale_caches() {
        let points = sweep(vec![LifecycleScenario::ZskAbrupt]);
        let events = &point(&points, LifecycleScenario::ZskAbrupt).events;
        // Some event strands *part* of its queries: only chains whose
        // parent-side records were cached under the vanished key break;
        // names whose caches happen to refresh after the removal are fine.
        assert!(
            events.iter().any(|e| e.bogus > 0 && e.bogus < e.client_queries),
            "a rushed roll must strand some (not all) cached chains: {events:?}"
        );
        // The damage is transient: once every cache outlives the vanished
        // key, validation is whole again.
        let healed = events.last().unwrap();
        assert_eq!(healed.secure, healed.client_queries, "caches drain and heal: {healed:?}");
    }
}
