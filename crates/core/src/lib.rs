//! Reproduction of *"Look-Aside at Your Own Risk: Privacy Implications of
//! DNSSEC Look-Aside Validation"* (ICDCS'17 / TDSC'18).
//!
//! This facade crate assembles the whole study:
//!
//! * [`internet`] — builds the simulated Internet: a signed root, the 15
//!   synthetic TLDs, the `isc.org` → `dlv.isc.org` registry chain, the DLV
//!   repository (calibrated contents), and a default-route synthetic
//!   authority serving the million-domain tail,
//! * [`leakage`] — the Case-1/Case-2 classifier over packet captures (§3),
//! * [`experiments`] — one runner per table/figure of the paper's
//!   evaluation (Tables 2–5, Figs. 8–12, plus the §5.1/§5.2/§5.3
//!   headline numbers),
//! * [`chaos`] — the §7.3.2 registry-outage harness: seeded loss/blackhole
//!   sweeps of the DLV link reporting leakage amplification under
//!   retransmission, with and without SERVFAIL caching,
//! * [`attacks`] — §6.2.3 signaling attacks and the §6.2.4 dictionary
//!   attack on hashed DLV,
//! * [`parallel`] — the deterministic sharded execution glue: per-shard
//!   [`parallel::Worker`]s owning private Internet replicas, driven by the
//!   `lookaside-engine` thread pool (`--jobs` / `LOOKASIDE_JOBS`), with
//!   reduction in shard-id order so any worker count is byte-identical,
//! * [`farm`] — the million-stub client plane in front of a resolver
//!   farm: topology-aware (per-resolver / shared-cache / ODoH /
//!   Resolver-Less), cache-hit-aware, per-client case-2 leak accounting
//!   over `lookaside-population`'s synthetic stubs,
//! * [`stream`] — the streaming execution mode (`LOOKASIDE_STREAM` /
//!   `repro --stream`): capture-less runs folding each packet into the
//!   leakage accumulators as it happens, byte-identical to batch,
//! * [`report`] — plain-text table rendering for the `repro` binary.
//!
//! # Quickstart
//!
//! ```
//! use lookaside::experiments::{run, QuerySet, RunConfig};
//!
//! let config = RunConfig::quick(50);
//! let outcome = run(&config);
//! assert!(outcome.leakage.case2 > 0, "most popular domains leak to DLV");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod byzantine;
pub mod chaos;
pub mod client;
pub mod experiments;
pub mod farm;
pub mod internet;
pub mod leakage;
pub mod lifecycle;
pub mod parallel;
pub mod report;
pub mod stream;

pub use client::Client;
pub use farm::{Farm, FarmConfig, FarmTopology, TopologyReport};
pub use internet::{Internet, InternetParams, VantagePoint};
pub use leakage::{classify, LeakageReport};
pub use parallel::{accept, executor, fold_cohorts, map_cohorts, run_sharded, supervisor, Worker};
pub use stream::{
    fig12_stream, fig12_stream_checkpointed, fig8_9_stream, run_stream, ExecMode, LeakSink,
};

pub use lookaside_population as population;

pub use lookaside_engine as engine;
pub use lookaside_netsim as netsim;
pub use lookaside_resolver as resolver;
pub use lookaside_server as server;
pub use lookaside_wire as wire;
pub use lookaside_workload as workload;
pub use lookaside_zone as zone;
