//! Integration tests for supervised sweeps: checkpoint/resume through the
//! public `fig12_stream_checkpointed` path, journal corruption fixtures,
//! and property tests that retry/fault supervision never changes results.
//!
//! Everything here drives the explicit-path APIs (no `LOOKASIDE_*`
//! environment mutation), so the tests are safe under the parallel test
//! runner.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use lookaside::engine::{
    run_fingerprint, Checkpoint, EngineFaultPlan, Executor, RetryPolicy, Shard, ShardPlan,
    Supervisor,
};
use lookaside::experiments::Fig12Data;
use lookaside::stream::{fig12_stream, fig12_stream_checkpointed};
use proptest::prelude::*;

/// Fig. 12 at 1/500000 sampling: seconds-fast, several window shards.
const SCALE: u64 = 500_000;

fn temp_journal(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lookaside-supervised-{}-{tag}.ckpt", std::process::id()));
    let _ = fs::remove_file(&p);
    p
}

/// Byte-identity for Fig. 12 data (floats compared by bit pattern).
fn assert_fig12_identical(a: &Fig12Data, b: &Fig12Data) {
    assert_eq!(a.per_minute, b.per_minute);
    assert_eq!(a.cumulative_queries, b.cumulative_queries);
    assert_eq!(a.cumulative_baseline_bytes, b.cumulative_baseline_bytes);
    assert_eq!(a.cumulative_overhead_bytes, b.cumulative_overhead_bytes);
    assert_eq!(a.overhead_mbps.to_bits(), b.overhead_mbps.to_bits());
}

#[test]
fn checkpointed_fig12_matches_plain_and_resumes_byte_identical() {
    let exec = Executor::new(2);
    let plain = fig12_stream(&exec, 7, SCALE);
    let path = temp_journal("full");
    let first = fig12_stream_checkpointed(&exec, 7, SCALE, &path);
    assert_fig12_identical(&first, &plain);
    // Resuming a completed journal satisfies every shard from disk and
    // must still reproduce the figure byte for byte.
    let resumed = fig12_stream_checkpointed(&exec, 7, SCALE, &path);
    assert_fig12_identical(&resumed, &plain);
    let _ = fs::remove_file(&path);
}

#[test]
fn torn_journal_tail_resumes_byte_identical() {
    let exec = Executor::serial();
    let plain = fig12_stream(&exec, 11, SCALE);
    let path = temp_journal("torn");
    let _ = fig12_stream_checkpointed(&exec, 11, SCALE, &path);
    let bytes = fs::read(&path).unwrap();
    assert!(bytes.len() > 32, "journal too small to tear meaningfully");
    // A SIGKILL mid-append leaves a partial trailing record; the resume
    // must drop it silently and re-run only the missing shards.
    fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    let resumed = fig12_stream_checkpointed(&exec, 11, SCALE, &path);
    assert_fig12_identical(&resumed, &plain);
    let _ = fs::remove_file(&path);
}

#[test]
fn corrupt_mid_journal_record_resumes_byte_identical() {
    let exec = Executor::serial();
    let plain = fig12_stream(&exec, 13, SCALE);
    let path = temp_journal("corrupt");
    let _ = fig12_stream_checkpointed(&exec, 13, SCALE, &path);
    let mut bytes = fs::read(&path).unwrap();
    // Flip one byte halfway through: that record's CRC fails, the journal
    // is truncated to the last valid record before it, and the suffix is
    // recomputed — never folded from corrupt bytes.
    let at = bytes.len() / 2;
    bytes[at] ^= 0xff;
    fs::write(&path, &bytes).unwrap();
    let resumed = fig12_stream_checkpointed(&exec, 13, SCALE, &path);
    assert_fig12_identical(&resumed, &plain);
    let _ = fs::remove_file(&path);
}

fn shard_value(s: &Shard<u64>) -> u64 {
    // A seed- and input-dependent value: any scheduling or resume bug that
    // swaps, drops, or duplicates a shard changes the fold.
    s.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ s.input.wrapping_mul(0x100_0000_01b3)
}

fn fold_pairs(mut acc: Vec<(usize, u64)>, id: usize, v: u64) -> Vec<(usize, u64)> {
    acc.push((id, v));
    acc
}

proptest! {
    /// A fault-injected, retried, parallel sweep folds exactly the bytes
    /// of a clean serial one, and its failure accounting is identical at
    /// every job count.
    #[test]
    fn faulted_retried_sweeps_match_clean_at_any_job_count(
        seed in 0u64..1_000,
        panic_per_mille in 0u16..400,
        jobs in 1usize..5,
    ) {
        let shards = ShardPlan::new(seed).over(0..24u64);
        let clean = Executor::serial().run_fold_supervised(
            &shards, shard_value, Vec::new(), fold_pairs, &Supervisor::new());
        // Attempts 0..3 may panic; attempt 3 always runs clean, so a
        // 4-attempt budget is guaranteed to complete every shard.
        let sup = Supervisor {
            retry: RetryPolicy::new(4),
            watchdog: None,
            faults: EngineFaultPlan {
                seed,
                panic_per_mille,
                stall_per_mille: 0,
                stall: Duration::from_millis(0),
                faulty_attempts: 3,
            },
        };
        let faulted = Executor::new(jobs)
            .run_fold_supervised(&shards, shard_value, Vec::new(), fold_pairs, &sup);
        prop_assert!(faulted.coverage.is_complete());
        prop_assert_eq!(&faulted.value, &clean.value);
        // The retry accounting is a pure function of the fault plan, so a
        // serial run under the same supervisor reports the same coverage
        // (speculation aside — there is no watchdog here).
        let serial = Executor::serial()
            .run_fold_supervised(&shards, shard_value, Vec::new(), fold_pairs, &sup);
        prop_assert_eq!(serial.coverage.retried, faulted.coverage.retried);
        prop_assert_eq!(serial.coverage.failed, faulted.coverage.failed);
        prop_assert_eq!(&serial.value, &clean.value);
    }

    /// Cutting the journal at an arbitrary byte past the header and
    /// resuming reproduces the complete fold: the valid prefix is folded
    /// from disk, the rest is recomputed.
    #[test]
    fn journal_cut_anywhere_resumes_to_identical_fold(
        seed in 0u64..200,
        cut_percent in 0u64..100,
    ) {
        let shards = ShardPlan::new(seed).over(0..8u64);
        let run_id = run_fingerprint(&[0x7e57, seed, shards.len() as u64]);
        let path = temp_journal(&format!("cut-{seed}-{cut_percent}"));
        let mut ckpt = Checkpoint::fresh(&path, run_id, 1).unwrap();
        let full = Executor::serial()
            .run_fold_checkpointed(
                &shards, shard_value, Vec::new(), fold_pairs, &Supervisor::new(), &mut ckpt)
            .unwrap();
        drop(ckpt);
        let bytes = fs::read(&path).unwrap();
        // Keep the 18-byte header plus an arbitrary fraction of records.
        let keep = 18 + (bytes.len() - 18) * cut_percent as usize / 100;
        fs::write(&path, &bytes[..keep]).unwrap();
        let mut ckpt: Checkpoint<u64> = Checkpoint::resume(&path, run_id, 1).unwrap();
        let resumed_shards = ckpt.take_resumed();
        prop_assert!(resumed_shards.len() <= shards.len());
        // take_resumed consumed the journal's prefix; rebuild the handle
        // so the checkpointed run folds it.
        drop(ckpt);
        let mut ckpt = Checkpoint::resume(&path, run_id, 1).unwrap();
        let again = Executor::serial()
            .run_fold_checkpointed(
                &shards, shard_value, Vec::new(), fold_pairs, &Supervisor::new(), &mut ckpt)
            .unwrap();
        prop_assert_eq!(&again.value, &full.value);
        prop_assert_eq!(again.coverage.resumed, resumed_shards.len());
        prop_assert!(again.coverage.is_complete());
        drop(ckpt);
        let _ = fs::remove_file(&path);
    }
}
