//! Deterministic network simulator for the DLV privacy study.
//!
//! The paper's measurements are *packet captures*: the authors ran
//! resolvers, sniffed the wire, and counted which queries reached which
//! party. This crate provides the equivalent instruments:
//!
//! * [`Network`] — routes DNS messages between registered [`DnsHandler`]
//!   nodes (authoritative servers, DLV servers), charging each exchange
//!   simulated latency and exact wire-format byte counts,
//! * [`LatencyModel`] — deterministic per-link RTTs (seeded, no ambient
//!   randomness),
//! * [`Capture`] — the "tcpdump" of the study: an optional packet log the
//!   leakage classifier runs over (the paper's Case-1/Case-2 analysis is
//!   done on observed traffic, not resolver internals),
//! * [`TrafficStats`] — aggregate counters per query type, byte totals, and
//!   accumulated response time, feeding Tables 4–5 and Figs. 10–12.
//!
//! # Example
//!
//! ```
//! use lookaside_netsim::{DnsHandler, Network};
//! use lookaside_wire::{Message, MessageBuilder, Name, Rcode, RrType};
//! use std::net::Ipv4Addr;
//!
//! struct Refuser;
//! impl DnsHandler for Refuser {
//!     fn handle(&mut self, query: &Message, _now_ns: u64) -> Message {
//!         MessageBuilder::respond_to(query).rcode(Rcode::Refused).build()
//!     }
//! }
//!
//! let mut net = Network::new(7);
//! let addr = Ipv4Addr::new(198, 51, 100, 1);
//! net.register(addr, "refuser", Box::new(Refuser));
//! let q = Message::query(1, Name::parse("example.com.")?, RrType::A);
//! let exchange = net.exchange(addr, &q)?;
//! assert_eq!(exchange.response.rcode(), Rcode::Refused);
//! assert!(exchange.rtt_ns > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod fault;
mod latency;
mod network;
mod observe;
mod stats;

pub use capture::{
    capture_interning, set_capture_interning, Capture, CaptureFilter, Direction, Packet,
};
pub use fault::{FaultPlan, FaultPlane, LinkFaults};
pub use latency::LatencyModel;
pub use network::{
    DnsHandler, Exchange, NetError, Network, ServerAction, SpoofedResponse, Transport,
    DEFAULT_TIMEOUT_NS, TCP_OVERHEAD_BYTES, UDP_LIMIT_NO_EDNS,
};
pub use observe::{DlvQueryCounter, PacketSink};
pub use stats::TrafficStats;
