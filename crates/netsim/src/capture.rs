//! Packet capture — the simulator's "tcpdump".
//!
//! The paper's analysis pipeline is: run the resolver, capture packets,
//! filter DLV traffic by query type (32769), classify each DLV query as
//! Case 1 (record deposited) or Case 2 (leak). To mirror that, leakage
//! classification in `lookaside` runs over this capture, never over
//! resolver-internal bookkeeping.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};

use lookaside_wire::{Name, NameTable, Rcode, RrType};
use serde::{Deserialize, Serialize};

/// Process-wide switch for qname interning in captures (on by default).
///
/// Interning is purely a storage optimisation — it can never change a
/// packet's qname value, only which allocation backs it — so flipping this
/// must not change any observable output. The property tests assert exactly
/// that by running the same experiment with interning on and off.
static CAPTURE_INTERNING: AtomicBool = AtomicBool::new(true);

/// Enables or disables qname interning for subsequently recorded packets.
pub fn set_capture_interning(enabled: bool) {
    CAPTURE_INTERNING.store(enabled, Ordering::Relaxed);
}

/// Whether capture qname interning is currently enabled.
pub fn capture_interning() -> bool {
    CAPTURE_INTERNING.load(Ordering::Relaxed)
}

/// Direction of a captured packet relative to the resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Resolver → server.
    Query,
    /// Server → resolver.
    Response,
}

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Simulated capture time, nanoseconds.
    pub time_ns: u64,
    /// Destination server address.
    pub dst: Ipv4Addr,
    /// Direction.
    pub direction: Direction,
    /// Question name.
    pub qname: Name,
    /// Question type.
    pub qtype: RrType,
    /// Response code (queries carry `NoError`).
    pub rcode: Rcode,
    /// Number of answer records (0 for queries and negative responses).
    pub answers: u16,
    /// Wire size in octets.
    pub size: usize,
}

/// What the capture retains. Full captures of million-domain runs would
/// dominate memory, so experiments that only analyse DLV traffic restrict
/// the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CaptureFilter {
    /// Keep every packet.
    All,
    /// Keep only DLV-type packets (query type 32769) — enough for the
    /// Case-1/Case-2 leakage analysis.
    #[default]
    DlvOnly,
    /// Keep nothing (aggregate stats still accumulate).
    None,
}

impl CaptureFilter {
    /// Whether a packet of this query type would be retained.
    ///
    /// Public so streaming accumulators (which replace the capture
    /// entirely) can apply exactly the retention rule the batch path would
    /// have applied — the byte-identity contract between the two modes
    /// hinges on this predicate being shared, not re-derived.
    pub fn keeps(self, qtype: RrType) -> bool {
        match self {
            CaptureFilter::All => true,
            CaptureFilter::DlvOnly => qtype == RrType::Dlv,
            CaptureFilter::None => false,
        }
    }
}

/// An in-memory packet log with a retention filter.
///
/// Each capture owns a private [`NameTable`]: retained packets of the same
/// qname share one name allocation instead of one per packet. The table is
/// per-capture (= per shard in parallel runs), never global, so shards
/// share no state and merge order alone decides the combined log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Capture {
    filter: CaptureFilter,
    packets: Vec<Packet>,
    names: NameTable,
}

impl Capture {
    /// Creates a capture with the given filter.
    pub fn new(filter: CaptureFilter) -> Self {
        Capture { filter, packets: Vec::new(), names: NameTable::new() }
    }

    /// Records a packet if the filter keeps it.
    pub fn record(&mut self, mut packet: Packet) {
        if self.filter.keeps(packet.qtype) {
            if capture_interning() {
                packet.qname = self.names.intern(&packet.qname);
            }
            self.packets.push(packet);
        }
    }

    /// All retained packets, in capture order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Retained packets matching a query type.
    pub fn of_type(&self, qtype: RrType) -> impl Iterator<Item = &Packet> {
        self.packets.iter().filter(move |p| p.qtype == qtype)
    }

    /// DLV queries (not responses) in the capture — the quantity Figs. 8–9
    /// count.
    pub fn dlv_queries(&self) -> impl Iterator<Item = &Packet> {
        self.packets.iter().filter(|p| p.qtype == RrType::Dlv && p.direction == Direction::Query)
    }

    /// DLV responses, used to measure validation utility (§5.3): `NoError`
    /// means the DLV server had a record, `NxDomain` means the query was a
    /// pure leak.
    pub fn dlv_responses(&self) -> impl Iterator<Item = &Packet> {
        self.packets.iter().filter(|p| p.qtype == RrType::Dlv && p.direction == Direction::Response)
    }

    /// Appends another capture's packets to this one, preserving each
    /// capture's internal order — the simulator's "mergecap".
    ///
    /// Ordering contract: shard reductions call this in ascending shard
    /// id, so the merged log is totally ordered by `(shard_id, seq)` —
    /// packets from shard *k* all precede packets from shard *k+1*, and
    /// within a shard capture order (the shard's virtual-time order) is
    /// kept. Each shard runs its own virtual clock from zero, so
    /// timestamps are **not** globally monotone after a merge; analyses
    /// that classify per-name (leakage Case 1/Case 2) are insensitive to
    /// this, exactly as the paper's offline pcap analysis is insensitive
    /// to which measurement box captured a packet first.
    ///
    /// `other`'s packets were already filtered by its own filter at
    /// record time; they are appended verbatim, not re-filtered.
    // lint:sink(determinism)
    pub fn merge(&mut self, other: &Capture) {
        let intern = capture_interning();
        for p in &other.packets {
            let mut p = p.clone();
            if intern {
                p.qname = self.names.intern(&p.qname);
            }
            self.packets.push(p);
        }
    }

    /// Clears retained packets and the intern table (filter unchanged).
    pub fn clear(&mut self) {
        self.packets.clear();
        self.names.clear();
    }

    /// Number of retained packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Serialises the capture to a line-oriented text form (one packet per
    /// tab-separated line) — the study's equivalent of writing out a pcap.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for p in &self.packets {
            let dir = match p.direction {
                Direction::Query => "Q",
                Direction::Response => "R",
            };
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                p.time_ns,
                p.dst,
                dir,
                p.qname,
                p.qtype.code(),
                p.rcode.code(),
                p.answers,
                p.size
            ));
        }
        out
    }

    /// Like [`Capture::to_text`], with trailing `#`-prefixed comment lines
    /// summarising the run's loss-and-timeout counters — what a capture
    /// tool prints after the packet log ("N packets dropped by kernel").
    pub fn to_text_with_stats(&self, stats: &crate::TrafficStats) -> String {
        let mut out = self.to_text();
        out.push_str(&format!(
            "# timeouts={} retransmissions={} duplicates={}\n",
            stats.timeouts, stats.retransmissions, stats.duplicates
        ));
        out
    }

    /// Parses a capture previously written by [`Capture::to_text`] or
    /// [`Capture::to_text_with_stats`] (comment lines starting with `#` are
    /// skipped). The resulting capture keeps everything (filter `All`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_text(text: &str) -> Result<Self, String> {
        let mut capture = Capture::new(CaptureFilter::All);
        for (idx, line) in text.lines().enumerate() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 8 {
                return Err(format!("line {}: expected 8 fields, got {}", idx + 1, fields.len()));
            }
            let err = |what: &str| format!("line {}: bad {what}", idx + 1);
            let packet = Packet {
                time_ns: fields[0].parse().map_err(|_| err("time"))?,
                dst: fields[1].parse().map_err(|_| err("address"))?,
                direction: match fields[2] {
                    "Q" => Direction::Query,
                    "R" => Direction::Response,
                    _ => return Err(err("direction")),
                },
                qname: Name::parse(fields[3]).map_err(|_| err("name"))?,
                qtype: RrType::from_code(fields[4].parse().map_err(|_| err("type"))?),
                rcode: Rcode::from_code(fields[5].parse().map_err(|_| err("rcode"))?),
                answers: fields[6].parse().map_err(|_| err("answer count"))?,
                size: fields[7].parse().map_err(|_| err("size"))?,
            };
            capture.record(packet);
        }
        Ok(capture)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(qtype: RrType, direction: Direction, rcode: Rcode) -> Packet {
        Packet {
            time_ns: 0,
            dst: Ipv4Addr::new(192, 0, 2, 1),
            direction,
            qname: Name::parse("example.com.").unwrap(),
            qtype,
            rcode,
            answers: 0,
            size: 64,
        }
    }

    #[test]
    fn dlv_only_filter_drops_other_types() {
        let mut cap = Capture::new(CaptureFilter::DlvOnly);
        cap.record(packet(RrType::A, Direction::Query, Rcode::NoError));
        cap.record(packet(RrType::Dlv, Direction::Query, Rcode::NoError));
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.dlv_queries().count(), 1);
    }

    #[test]
    fn all_filter_keeps_everything() {
        let mut cap = Capture::new(CaptureFilter::All);
        cap.record(packet(RrType::A, Direction::Query, Rcode::NoError));
        cap.record(packet(RrType::Ds, Direction::Response, Rcode::NoError));
        assert_eq!(cap.len(), 2);
        assert_eq!(cap.of_type(RrType::Ds).count(), 1);
    }

    #[test]
    fn none_filter_keeps_nothing() {
        let mut cap = Capture::new(CaptureFilter::None);
        cap.record(packet(RrType::Dlv, Direction::Query, Rcode::NoError));
        assert!(cap.is_empty());
    }

    #[test]
    fn dlv_queries_and_responses_separated() {
        let mut cap = Capture::new(CaptureFilter::DlvOnly);
        cap.record(packet(RrType::Dlv, Direction::Query, Rcode::NoError));
        cap.record(packet(RrType::Dlv, Direction::Response, Rcode::NxDomain));
        assert_eq!(cap.dlv_queries().count(), 1);
        assert_eq!(cap.dlv_responses().count(), 1);
        assert_eq!(cap.dlv_responses().next().unwrap().rcode, Rcode::NxDomain);
    }

    #[test]
    fn text_round_trip() {
        let mut cap = Capture::new(CaptureFilter::All);
        cap.record(packet(RrType::A, Direction::Query, Rcode::NoError));
        cap.record(packet(RrType::Dlv, Direction::Response, Rcode::NxDomain));
        let text = cap.to_text();
        let back = Capture::parse_text(&text).unwrap();
        assert_eq!(back.packets(), cap.packets());
    }

    #[test]
    fn parse_text_rejects_malformed_lines() {
        assert!(Capture::parse_text("not a capture").is_err());
        assert!(Capture::parse_text("1\t192.0.2.1\tX\ta.\t1\t0\t0\t10\n").is_err());
        let err = Capture::parse_text("1\t192.0.2.1\tQ\ta.\t1\t0\t0\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(Capture::parse_text("").unwrap().is_empty());
    }

    #[test]
    fn text_with_stats_round_trips_and_reports_counters() {
        let mut cap = Capture::new(CaptureFilter::All);
        cap.record(packet(RrType::Dlv, Direction::Query, Rcode::NoError));
        let mut stats = crate::TrafficStats::new();
        stats.record_timeout(RrType::Dlv, 40, 5_000_000_000);
        stats.retransmissions = 2;
        let text = cap.to_text_with_stats(&stats);
        assert!(text.contains("# timeouts=1 retransmissions=2 duplicates=0"));
        let back = Capture::parse_text(&text).unwrap();
        assert_eq!(back.packets(), cap.packets());
    }

    #[test]
    fn merge_appends_in_shard_order() {
        let mut shard0 = Capture::new(CaptureFilter::All);
        shard0.record(packet(RrType::Dlv, Direction::Query, Rcode::NoError));
        shard0.record(packet(RrType::Dlv, Direction::Response, Rcode::NoError));
        let mut shard1 = Capture::new(CaptureFilter::DlvOnly);
        shard1.record(packet(RrType::A, Direction::Query, Rcode::NoError)); // dropped at record
        shard1.record(packet(RrType::Dlv, Direction::Query, Rcode::NxDomain));
        let mut merged = Capture::new(CaptureFilter::All);
        merged.merge(&shard0);
        merged.merge(&shard1);
        assert_eq!(merged.len(), 3);
        // Shard 0's packets precede shard 1's; order within a shard kept.
        assert_eq!(merged.packets()[0], shard0.packets()[0]);
        assert_eq!(merged.packets()[1], shard0.packets()[1]);
        assert_eq!(merged.packets()[2], shard1.packets()[0]);
    }

    #[test]
    fn clear_resets() {
        let mut cap = Capture::new(CaptureFilter::All);
        cap.record(packet(RrType::A, Direction::Query, Rcode::NoError));
        cap.clear();
        assert!(cap.is_empty());
    }
}
