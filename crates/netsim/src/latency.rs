//! Deterministic per-link latency.
//!
//! Every (destination, sequence-number) pair maps to an RTT via a splitmix64
//! hash of the model seed — reproducible across runs, no shared RNG state,
//! and insensitive to the order in which other links are exercised.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Nanoseconds per millisecond.
pub const MILLIS: u64 = 1_000_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic latency model: each destination gets a stable base RTT
/// drawn from a configurable range, plus small per-exchange jitter.
///
/// The defaults (base 10–60 ms, jitter 0–8 ms) approximate the paper's
/// mixture of on-campus and VPS vantage points; absolute values are not
/// meant to match the paper's testbed, only to give Table 5's latency
/// *ratios* a realistic footing.
///
/// # Example
///
/// ```
/// use lookaside_netsim::LatencyModel;
/// use std::net::Ipv4Addr;
///
/// let mut model = LatencyModel::new(7).with_base_range(10, 20).with_jitter(0);
/// model.pin(Ipv4Addr::new(10, 2, 0, 2), 100, 120); // a far-away registry
/// let near = model.rtt_ns(Ipv4Addr::new(10, 0, 0, 1), 0);
/// let far = model.rtt_ns(Ipv4Addr::new(10, 2, 0, 2), 0);
/// assert!(far > near);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    seed: u64,
    base_min_ms: u64,
    base_max_ms: u64,
    jitter_max_ms: u64,
    overrides: BTreeMap<Ipv4Addr, (u64, u64)>,
}

impl LatencyModel {
    /// Creates a model with the default ranges.
    pub fn new(seed: u64) -> Self {
        LatencyModel {
            seed,
            base_min_ms: 10,
            base_max_ms: 60,
            jitter_max_ms: 8,
            overrides: BTreeMap::new(),
        }
    }

    /// Sets the base RTT range (milliseconds) for all unlisted destinations.
    ///
    /// # Panics
    ///
    /// Panics if `min_ms > max_ms`.
    pub fn with_base_range(mut self, min_ms: u64, max_ms: u64) -> Self {
        assert!(min_ms <= max_ms, "latency range inverted");
        self.base_min_ms = min_ms;
        self.base_max_ms = max_ms;
        self
    }

    /// Sets the per-exchange jitter ceiling (milliseconds).
    pub fn with_jitter(mut self, max_ms: u64) -> Self {
        self.jitter_max_ms = max_ms;
        self
    }

    /// Pins a destination to a specific RTT range — e.g. a far-away DLV
    /// server.
    pub fn pin(&mut self, dst: Ipv4Addr, min_ms: u64, max_ms: u64) {
        assert!(min_ms <= max_ms, "latency range inverted");
        self.overrides.insert(dst, (min_ms, max_ms));
    }

    /// The stable base RTT for a destination, nanoseconds.
    pub fn base_rtt_ns(&self, dst: Ipv4Addr) -> u64 {
        let (min, max) =
            self.overrides.get(&dst).copied().unwrap_or((self.base_min_ms, self.base_max_ms));
        let span = (max - min).max(1);
        let h = splitmix64(self.seed ^ u64::from(u32::from(dst)));
        (min + h % span) * MILLIS
    }

    /// The RTT of the `seq`-th exchange with `dst`, nanoseconds.
    pub fn rtt_ns(&self, dst: Ipv4Addr, seq: u64) -> u64 {
        let jitter = if self.jitter_max_ms == 0 {
            0
        } else {
            let h = splitmix64(self.seed ^ (u64::from(u32::from(dst)) << 20) ^ seq);
            h % (self.jitter_max_ms * MILLIS)
        };
        self.base_rtt_ns(dst) + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    #[test]
    fn base_rtt_is_stable_per_destination() {
        let m = LatencyModel::new(1);
        assert_eq!(m.base_rtt_ns(addr(1)), m.base_rtt_ns(addr(1)));
    }

    #[test]
    fn base_rtt_within_range() {
        let m = LatencyModel::new(2).with_base_range(20, 30);
        for last in 0..50 {
            let rtt = m.base_rtt_ns(addr(last));
            assert!((20 * MILLIS..30 * MILLIS).contains(&rtt), "rtt {rtt}");
        }
    }

    #[test]
    fn jitter_bounded_and_varies() {
        let m = LatencyModel::new(3).with_base_range(20, 21).with_jitter(5);
        let base = m.base_rtt_ns(addr(9));
        let rtts: Vec<u64> = (0..20).map(|s| m.rtt_ns(addr(9), s)).collect();
        assert!(rtts.iter().all(|&r| r >= base && r < base + 5 * MILLIS));
        assert!(rtts.windows(2).any(|w| w[0] != w[1]), "jitter should vary");
    }

    #[test]
    fn pinned_destination_uses_override() {
        let mut m = LatencyModel::new(4).with_base_range(10, 20).with_jitter(0);
        m.pin(addr(5), 100, 101);
        assert!(m.rtt_ns(addr(5), 0) >= 100 * MILLIS);
        assert!(m.rtt_ns(addr(6), 0) < 100 * MILLIS);
    }

    #[test]
    fn different_seeds_differ() {
        let a = LatencyModel::new(5);
        let b = LatencyModel::new(6);
        let differs = (0..20).any(|l| a.base_rtt_ns(addr(l)) != b.base_rtt_ns(addr(l)));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = LatencyModel::new(7).with_base_range(30, 20);
    }

    #[test]
    fn zero_jitter_is_deterministic_per_seq() {
        let m = LatencyModel::new(8).with_jitter(0);
        assert_eq!(m.rtt_ns(addr(1), 0), m.rtt_ns(addr(1), 99));
    }
}
