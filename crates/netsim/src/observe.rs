// lint:stream-hot-path
//! Streaming packet observers — the fold-style alternative to [`Capture`].
//!
//! Batch experiments record packets into a capture and analyse the vector
//! afterwards; that is faithful to the paper's pcap pipeline but costs
//! O(queries) memory. A [`PacketSink`] instead sees each packet at the
//! moment [`crate::Network`] would have recorded it and folds it into an
//! accumulator immediately, so the network retains nothing.
//!
//! Equivalence contract: the network shows a sink **every** packet it
//! builds, unfiltered, in capture order — the same packets, in the same
//! order, that a [`CaptureFilter::All`] capture would retain. A sink that
//! wants batch-identical results applies the run's [`CaptureFilter`] via
//! [`CaptureFilter::keeps`] itself, mirroring what `Capture::record` does.
//!
//! This module is tagged as streaming steady-state: `observe` runs once
//! per packet for tens of millions of packets, so it must not allocate.

use std::cell::RefCell;
use std::rc::Rc;

use lookaside_wire::RrType;

#[cfg(doc)]
use crate::capture::{Capture, CaptureFilter};
use crate::capture::{Direction, Packet};

/// A streaming observer of simulated packets.
///
/// Implementations fold packets into aggregate state; they must be pure
/// functions of the packet stream so that streaming and batch execution
/// stay byte-identical.
pub trait PacketSink {
    /// Called once per packet, in capture order, before loss is applied to
    /// queries (a lost query is still a sent query, exactly as captures
    /// record it).
    fn observe(&mut self, packet: &Packet);

    /// Clears accumulated state; called by `Network::reset_measurement` so
    /// warm-up traffic can be discarded the same way captures are.
    fn reset(&mut self) {}
}

/// Shared-handle sink: the network owns one handle, the experiment keeps
/// the other to read the accumulator back after the run.
impl<S: PacketSink + ?Sized> PacketSink for Rc<RefCell<S>> {
    fn observe(&mut self, packet: &Packet) {
        self.borrow_mut().observe(packet);
    }

    fn reset(&mut self) {
        self.borrow_mut().reset();
    }
}

/// Counts DLV-type query packets — the streaming replacement for
/// `capture().dlv_queries().count()` in the chaos harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DlvQueryCounter {
    /// Number of DLV queries (not responses) observed since the last reset.
    pub queries: u64,
}

impl DlvQueryCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        DlvQueryCounter::default()
    }
}

impl PacketSink for DlvQueryCounter {
    fn observe(&mut self, packet: &Packet) {
        if packet.qtype == RrType::Dlv && packet.direction == Direction::Query {
            self.queries += 1;
        }
    }

    fn reset(&mut self) {
        self.queries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lookaside_wire::{Name, Rcode};
    use std::net::Ipv4Addr;

    fn packet(qtype: RrType, direction: Direction) -> Packet {
        Packet {
            time_ns: 0,
            dst: Ipv4Addr::new(192, 0, 2, 1),
            direction,
            qname: Name::parse("example.com.").unwrap(),
            qtype,
            rcode: Rcode::NoError,
            answers: 0,
            size: 64,
        }
    }

    #[test]
    fn counter_counts_only_dlv_queries() {
        let mut sink = DlvQueryCounter::new();
        sink.observe(&packet(RrType::A, Direction::Query));
        sink.observe(&packet(RrType::Dlv, Direction::Query));
        sink.observe(&packet(RrType::Dlv, Direction::Response));
        sink.observe(&packet(RrType::Dlv, Direction::Query));
        assert_eq!(sink.queries, 2);
        sink.reset();
        assert_eq!(sink.queries, 0);
    }

    #[test]
    fn shared_handle_folds_into_the_same_accumulator() {
        let shared = Rc::new(RefCell::new(DlvQueryCounter::new()));
        let mut handle: Rc<RefCell<DlvQueryCounter>> = Rc::clone(&shared);
        handle.observe(&packet(RrType::Dlv, Direction::Query));
        handle.reset();
        handle.observe(&packet(RrType::Dlv, Direction::Query));
        assert_eq!(shared.borrow().queries, 1);
    }
}
