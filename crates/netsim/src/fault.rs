//! The fault plane: seeded, deterministic packet-level failure injection.
//!
//! The paper's §7.3.2 reliability story — a degrading `dlv.isc.org` making
//! resolvers retry and re-leak — needs more than clean rcode failures. This
//! module lets a [`crate::Network`] lose, blackhole, duplicate, or delay
//! packets per destination link, so `exchange` can time out the way a real
//! UDP query does.
//!
//! Every decision is a pure function of `(seed, link, sequence number)`
//! via splitmix64 — no ambient randomness, no RNG state. Two runs with the
//! same seed and the same exchange order take exactly the same faults,
//! which keeps captures byte-identical and failures replayable. A plane
//! whose links are all quiet (the default) makes no decisions at all, so
//! fault-free runs are bit-for-bit unchanged.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Fault configuration for one link (resolver ↔ one destination address).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability, in thousandths, that the query leg is lost.
    /// The response leg is drawn independently at the same rate.
    pub loss_milli: u16,
    /// Drop everything: the destination is unreachable.
    pub blackhole: bool,
    /// Probability, in thousandths, that the query is duplicated in
    /// flight (the server handles it twice; the spare response is
    /// discarded by the resolver's transaction matching).
    pub duplicate_milli: u16,
    /// Fixed extra one-way delay added to the link, nanoseconds.
    pub extra_delay_ns: u64,
    /// Upper bound of additional uniformly-drawn delay, nanoseconds.
    pub jitter_ns: u64,
    /// Probability, in thousandths, that the response payload is
    /// bit-flipped in flight (Byzantine corruption). A corrupted response
    /// either decodes to a semantically wrong message or fails to decode
    /// at all; either way the resolver must cope.
    pub corrupt_milli: u16,
    /// Probability, in thousandths, that the response is forcibly
    /// truncated: answer/authority/additional sections clipped and the TC
    /// bit raised, forcing a TCP retry from well-behaved resolvers.
    pub truncate_milli: u16,
    /// Probability, in thousandths, that an off-path attacker races the
    /// genuine response with a spoofed one (wrong query id and/or wrong
    /// source address) that arrives first.
    pub spoof_milli: u16,
}

impl LinkFaults {
    /// A link with no faults configured.
    pub fn quiet() -> Self {
        LinkFaults::default()
    }

    /// Whether this link never perturbs traffic.
    pub fn is_quiet(&self) -> bool {
        *self == LinkFaults::default()
    }

    /// Sets the per-leg loss probability in thousandths (1000 = every leg).
    #[must_use]
    pub fn with_loss_milli(mut self, milli: u16) -> Self {
        self.loss_milli = milli.min(1000);
        self
    }

    /// Makes the link drop everything.
    #[must_use]
    pub fn with_blackhole(mut self) -> Self {
        self.blackhole = true;
        self
    }

    /// Sets the duplicate-delivery probability in thousandths.
    #[must_use]
    pub fn with_duplicate_milli(mut self, milli: u16) -> Self {
        self.duplicate_milli = milli.min(1000);
        self
    }

    /// Adds a fixed delay in milliseconds.
    #[must_use]
    pub fn with_extra_delay_ms(mut self, ms: u64) -> Self {
        self.extra_delay_ns = ms * 1_000_000;
        self
    }

    /// Adds up to `ms` milliseconds of seeded jitter.
    #[must_use]
    pub fn with_jitter_ms(mut self, ms: u64) -> Self {
        self.jitter_ns = ms * 1_000_000;
        self
    }

    /// Sets the response bit-flip corruption probability in thousandths.
    #[must_use]
    pub fn with_corrupt_milli(mut self, milli: u16) -> Self {
        self.corrupt_milli = milli.min(1000);
        self
    }

    /// Sets the forced-truncation probability in thousandths.
    #[must_use]
    pub fn with_truncate_milli(mut self, milli: u16) -> Self {
        self.truncate_milli = milli.min(1000);
        self
    }

    /// Sets the off-path spoof-injection probability in thousandths.
    #[must_use]
    pub fn with_spoof_milli(mut self, milli: u16) -> Self {
        self.spoof_milli = milli.min(1000);
        self
    }
}

/// The fault decision for one exchange, fully determined by
/// `(seed, destination, sequence number)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The query leg never reaches the server.
    pub query_lost: bool,
    /// The response leg never reaches the resolver.
    pub response_lost: bool,
    /// The server receives the query twice.
    pub duplicate: bool,
    /// Extra one-way delay charged to the exchange, nanoseconds.
    pub extra_delay_ns: u64,
    /// `Some(salt)` when the response payload is bit-flipped in flight;
    /// the salt seeds which bits flip, so corruption is replayable.
    pub corrupt_salt: Option<u64>,
    /// The response is forcibly truncated (sections clipped, TC raised).
    pub truncate: bool,
    /// `Some(salt)` when an off-path spoofed response races the genuine
    /// one; the salt decides the forged qid/source and payload.
    pub spoof_salt: Option<u64>,
}

/// Per-link fault injection for a [`crate::Network`].
///
/// Links not explicitly configured use the default faults (quiet unless
/// changed), so a single call can degrade a whole topology or just one
/// registry address.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlane {
    seed: u64,
    default_faults: LinkFaults,
    links: BTreeMap<Ipv4Addr, LinkFaults>,
    /// TCP-specific overrides: when a link has an entry here, TCP
    /// exchanges to it use these faults instead of the UDP ones. Links
    /// without an entry share the UDP faults (a blackholed host is
    /// unreachable on both transports).
    #[serde(default)]
    tcp_links: BTreeMap<Ipv4Addr, LinkFaults>,
}

impl FaultPlane {
    /// A quiet plane keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlane { seed, ..FaultPlane::default() }
    }

    /// Sets the faults applied to links without an explicit entry.
    pub fn set_default_faults(&mut self, faults: LinkFaults) {
        self.default_faults = faults;
    }

    /// Configures one link's faults, replacing any previous entry.
    pub fn set_link(&mut self, addr: Ipv4Addr, faults: LinkFaults) {
        self.links.insert(addr, faults);
    }

    /// Removes a link's explicit entry (it reverts to the default faults).
    pub fn clear_link(&mut self, addr: Ipv4Addr) {
        self.links.remove(&addr);
        self.tcp_links.remove(&addr);
    }

    /// Configures TCP-specific faults for one link. TCP exchanges to the
    /// address use these instead of the UDP faults, so a sweep can model
    /// an operator who rate-limits UDP but leaves TCP clean (or the
    /// reverse: a middlebox that breaks TCP fallback).
    pub fn set_tcp_link(&mut self, addr: Ipv4Addr, faults: LinkFaults) {
        self.tcp_links.insert(addr, faults);
    }

    /// Heals every link: default and per-link faults all become quiet.
    pub fn heal_all(&mut self) {
        self.default_faults = LinkFaults::quiet();
        self.links.clear();
        self.tcp_links.clear();
    }

    /// The faults in effect for a destination.
    pub fn faults_for(&self, addr: Ipv4Addr) -> LinkFaults {
        self.links.get(&addr).copied().unwrap_or(self.default_faults)
    }

    /// The faults in effect for a destination over TCP: the explicit TCP
    /// override if one is set, otherwise the same faults as UDP.
    pub fn tcp_faults_for(&self, addr: Ipv4Addr) -> LinkFaults {
        self.tcp_links.get(&addr).copied().unwrap_or_else(|| self.faults_for(addr))
    }

    /// Whether no link can ever perturb traffic.
    pub fn is_quiet(&self) -> bool {
        self.default_faults.is_quiet()
            && self.links.values().all(LinkFaults::is_quiet)
            && self.tcp_links.values().all(LinkFaults::is_quiet)
    }

    /// The deterministic fault decision for exchange number `seq` to `dst`.
    pub fn plan(&self, dst: Ipv4Addr, seq: u64) -> FaultPlan {
        self.plan_with(self.faults_for(dst), dst, seq)
    }

    /// The deterministic fault decision for a TCP exchange (uses the TCP
    /// override faults when one is configured for the link).
    pub fn tcp_plan(&self, dst: Ipv4Addr, seq: u64) -> FaultPlan {
        self.plan_with(self.tcp_faults_for(dst), dst, seq)
    }

    fn plan_with(&self, faults: LinkFaults, dst: Ipv4Addr, seq: u64) -> FaultPlan {
        if faults.is_quiet() {
            return FaultPlan::default();
        }
        if faults.blackhole {
            return FaultPlan { query_lost: true, ..FaultPlan::default() };
        }
        let key = self.seed ^ (u64::from(u32::from(dst)) << 20) ^ seq;
        let roll = |channel: u64| splitmix64(key.wrapping_add(channel.wrapping_mul(GOLDEN)));
        let loss = u64::from(faults.loss_milli);
        let jitter = if faults.jitter_ns > 0 { roll(4) % faults.jitter_ns } else { 0 };
        // Channels 1–4 predate the payload faults; the Byzantine channels
        // start at 5 so legacy loss/duplicate/jitter schedules stay
        // byte-identical for any given seed.
        let corrupt = faults.corrupt_milli > 0 && roll(5) % 1000 < u64::from(faults.corrupt_milli);
        let truncate =
            faults.truncate_milli > 0 && roll(7) % 1000 < u64::from(faults.truncate_milli);
        let spoof = faults.spoof_milli > 0 && roll(8) % 1000 < u64::from(faults.spoof_milli);
        FaultPlan {
            query_lost: loss > 0 && roll(1) % 1000 < loss,
            response_lost: loss > 0 && roll(2) % 1000 < loss,
            duplicate: faults.duplicate_milli > 0
                && roll(3) % 1000 < u64::from(faults.duplicate_milli),
            extra_delay_ns: faults.extra_delay_ns + jitter,
            corrupt_salt: corrupt.then(|| roll(6)),
            truncate,
            spoof_salt: spoof.then(|| roll(9)),
        }
    }
}

pub(crate) const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, last)
    }

    #[test]
    fn quiet_plane_never_faults() {
        let plane = FaultPlane::new(99);
        assert!(plane.is_quiet());
        for seq in 0..1000 {
            assert_eq!(plane.plan(addr(1), seq), FaultPlan::default());
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let mut a = FaultPlane::new(7);
        a.set_link(addr(1), LinkFaults::quiet().with_loss_milli(300).with_jitter_ms(5));
        let b = a.clone();
        for seq in 0..500 {
            assert_eq!(a.plan(addr(1), seq), b.plan(addr(1), seq));
        }
        let mut c = FaultPlane::new(8);
        c.set_link(addr(1), LinkFaults::quiet().with_loss_milli(300).with_jitter_ms(5));
        let differs = (0..500).any(|seq| a.plan(addr(1), seq) != c.plan(addr(1), seq));
        assert!(differs, "different seeds must give different schedules");
    }

    #[test]
    fn loss_rate_is_roughly_respected() {
        let mut plane = FaultPlane::new(13);
        plane.set_link(addr(2), LinkFaults::quiet().with_loss_milli(250));
        let lost = (0..4000).filter(|&seq| plane.plan(addr(2), seq).query_lost).count();
        assert!((700..1300).contains(&lost), "expected ~1000 lost of 4000, got {lost}");
    }

    #[test]
    fn blackhole_loses_every_query() {
        let mut plane = FaultPlane::new(13);
        plane.set_link(addr(3), LinkFaults::quiet().with_blackhole());
        assert!((0..100).all(|seq| plane.plan(addr(3), seq).query_lost));
        // Other links stay quiet.
        assert_eq!(plane.plan(addr(4), 0), FaultPlan::default());
    }

    #[test]
    fn default_faults_apply_to_unlisted_links() {
        let mut plane = FaultPlane::new(13);
        plane.set_default_faults(LinkFaults::quiet().with_extra_delay_ms(10));
        assert_eq!(plane.plan(addr(9), 0).extra_delay_ns, 10_000_000);
        plane.set_link(addr(9), LinkFaults::quiet());
        assert_eq!(plane.plan(addr(9), 0), FaultPlan::default());
    }

    #[test]
    fn heal_all_quiets_everything() {
        let mut plane = FaultPlane::new(13);
        plane.set_default_faults(LinkFaults::quiet().with_loss_milli(1000));
        plane.set_link(addr(1), LinkFaults::quiet().with_blackhole());
        plane.heal_all();
        assert!(plane.is_quiet());
    }

    #[test]
    fn payload_faults_do_not_perturb_legacy_channels() {
        // Adding Byzantine knobs to a link must not change which packets
        // the pre-existing loss/duplicate/jitter channels hit.
        let mut legacy = FaultPlane::new(42);
        legacy.set_link(addr(6), LinkFaults::quiet().with_loss_milli(200).with_duplicate_milli(50));
        let mut byzantine = FaultPlane::new(42);
        byzantine.set_link(
            addr(6),
            LinkFaults::quiet()
                .with_loss_milli(200)
                .with_duplicate_milli(50)
                .with_corrupt_milli(300)
                .with_truncate_milli(300)
                .with_spoof_milli(300),
        );
        for seq in 0..500 {
            let a = legacy.plan(addr(6), seq);
            let b = byzantine.plan(addr(6), seq);
            assert_eq!(a.query_lost, b.query_lost);
            assert_eq!(a.response_lost, b.response_lost);
            assert_eq!(a.duplicate, b.duplicate);
            assert_eq!(a.extra_delay_ns, b.extra_delay_ns);
        }
    }

    #[test]
    fn corruption_rate_is_roughly_respected_and_salted() {
        let mut plane = FaultPlane::new(17);
        plane.set_link(addr(7), LinkFaults::quiet().with_corrupt_milli(250));
        let salts: Vec<u64> =
            (0..4000).filter_map(|seq| plane.plan(addr(7), seq).corrupt_salt).collect();
        assert!((700..1300).contains(&salts.len()), "expected ~1000 of 4000, got {}", salts.len());
        // Salts are drawn independently of the decision channel.
        assert!(salts.windows(2).any(|w| w[0] != w[1]), "salts must vary");
    }

    #[test]
    fn spoof_and_truncate_decisions_are_independent() {
        let mut plane = FaultPlane::new(23);
        plane.set_link(addr(8), LinkFaults::quiet().with_truncate_milli(500).with_spoof_milli(500));
        let both = (0..2000)
            .map(|seq| plane.plan(addr(8), seq))
            .filter(|p| p.truncate && p.spoof_salt.is_some())
            .count();
        // Independent coins at 1/2 each: ~500 of 2000 hit both.
        assert!((300..700).contains(&both), "expected ~500 joint hits, got {both}");
    }

    #[test]
    fn tcp_overrides_replace_udp_faults() {
        let mut plane = FaultPlane::new(29);
        plane.set_link(addr(9), LinkFaults::quiet().with_loss_milli(1000));
        // No override: TCP shares the UDP faults.
        assert!(plane.tcp_plan(addr(9), 0).query_lost);
        // A quiet TCP override lets stream traffic through a lossy link.
        plane.set_tcp_link(addr(9), LinkFaults::quiet());
        assert!(!plane.is_quiet());
        assert_eq!(plane.tcp_plan(addr(9), 0), FaultPlan::default());
        assert!(plane.plan(addr(9), 0).query_lost, "UDP keeps its own faults");
        plane.clear_link(addr(9));
        assert!(plane.is_quiet());
    }

    #[test]
    fn jitter_stays_bounded() {
        let mut plane = FaultPlane::new(21);
        plane.set_link(addr(5), LinkFaults::quiet().with_extra_delay_ms(2).with_jitter_ms(3));
        for seq in 0..200 {
            let d = plane.plan(addr(5), seq).extra_delay_ns;
            assert!((2_000_000..5_000_000).contains(&d), "delay {d} out of range");
        }
    }
}
